//! Ablation study of the optimizer's design choices (DESIGN.md §6):
//!
//! * `max_iter` — the paper picked 3 coordinate-descent sweeps (§4.3);
//! * convex ternary search vs full scan inside `find_minimum`;
//! * the non-dominated filter on thread-group assignments;
//! * the two-level SPM prototype of Chapter 7.
//!
//! Usage: `cargo run -p prem-bench --release --bin ablation`

use prem_core::{
    build_schedule, evaluate_two_level, nondominated_thread_groups, optimize_component, Component,
    CostProvider, LoopTree, OptimizerOptions, Platform, TwoLevelConfig,
};
use prem_sim::SimCost;

fn chain<'a>(tree: &'a LoopTree) -> Vec<&'a prem_core::LoopTreeNode> {
    let mut chain = Vec::new();
    let mut node = &tree.roots[0];
    loop {
        chain.push(node);
        match node.children.first() {
            Some(c) if node.children.len() == 1 && c.tilable => node = c,
            _ => break,
        }
    }
    chain
}

fn main() {
    let cfg = prem_kernels::CnnConfig::googlenet_study();
    let program = cfg.build();
    let tree = LoopTree::build(&program).expect("lowers");
    let comp = Component::extract(&tree, &program, &chain(&tree));
    let cost = SimCost::new(&program);
    let model = cost.exec_model(&comp);
    let platform = Platform::default().with_bus_gbytes(1.0 / 32.0);

    println!("Ablations on the CNN study component @ 1/32 GB/s\n");

    println!("1) coordinate-descent sweeps (paper: max_iter = 3)");
    println!("{:>9} {:>14} {:>8} {:>9}", "max_iter", "makespan ns", "evals", "time s");
    for max_iter in [1usize, 2, 3, 5] {
        let t0 = std::time::Instant::now();
        let opts = OptimizerOptions {
            max_iter,
            ..OptimizerOptions::default()
        };
        let r = optimize_component(&comp, &platform, &model, &opts).expect("feasible");
        println!(
            "{max_iter:>9} {:>14.5e} {:>8} {:>9.2}",
            r.result.makespan_ns,
            r.evals,
            t0.elapsed().as_secs_f64()
        );
    }

    println!("\n2) find_minimum: ternary (convex assumption, §4.3) vs full scan");
    println!("{:>9} {:>14} {:>8} {:>9}", "mode", "makespan ns", "evals", "time s");
    for convex in [true, false] {
        let t0 = std::time::Instant::now();
        let opts = OptimizerOptions {
            convex_search: convex,
            ..OptimizerOptions::default()
        };
        let r = optimize_component(&comp, &platform, &model, &opts).expect("feasible");
        println!(
            "{:>9} {:>14.5e} {:>8} {:>9.2}",
            if convex { "ternary" } else { "scan" },
            r.result.makespan_ns,
            r.evals,
            t0.elapsed().as_secs_f64()
        );
    }

    println!("\n3) thread-group assignment space (non-dominated filter, §4.3)");
    let nd = nondominated_thread_groups(&comp, platform.cores);
    let all: i64 = {
        // Count all valid assignments for comparison.
        fn rec(comp: &Component, p: i64, j: usize, used: i64) -> i64 {
            if j == comp.depth() {
                return 1;
            }
            let max_r = if comp.levels[j].parallel {
                (p / used).min(comp.levels[j].count).max(1)
            } else {
                1
            };
            (1..=max_r).map(|r| rec(comp, p, j + 1, used * r)).sum()
        }
        rec(&comp, platform.cores as i64, 0, 1)
    };
    println!("   all valid assignments: {all}");
    println!("   non-dominated        : {}", nd.len());

    println!("\n4) two-level SPM prototype (Ch. 7): heuristic best solution re-timed");
    let best = optimize_component(&comp, &platform, &model, &OptimizerOptions::default())
        .expect("feasible");
    let sched = build_schedule(&comp, &best.solution, &platform, &model).expect("feasible");
    let single = prem_core::evaluate(&sched).makespan_ns;
    for l2_mb in [1i64, 2, 8] {
        let cfg2 = TwoLevelConfig {
            l2_bytes: l2_mb << 20,
            ..TwoLevelConfig::default()
        };
        match evaluate_two_level(&sched, &platform, &cfg2) {
            Some(two) => println!(
                "   L2 = {l2_mb} MiB: {:.5e} ns ({:.2}x vs single-level {:.5e})",
                two.makespan_ns,
                single / two.makespan_ns,
                single
            ),
            None => println!("   L2 = {l2_mb} MiB: segment working set exceeds a partition"),
        }
    }
}
