//! Ablation study of the optimizer's design choices (DESIGN.md §6):
//!
//! * `max_iter` — the paper picked 3 coordinate-descent sweeps (§4.3);
//! * convex ternary search vs full scan inside `find_minimum`;
//! * the non-dominated filter on thread-group assignments;
//! * the two-level SPM prototype of Chapter 7.
//!
//! Usage: `cargo run -p prem-bench --release --bin ablation [--quick|--smoke]`

use prem_bench::{new_report, write_report, RunMode};
use prem_core::{
    build_schedule, evaluate_two_level_scan, nondominated_thread_groups, optimize_component,
    AnalysisCache, Component, CostProvider, LoopTree, OptimizerOptions, Platform, TwoLevelConfig,
};
use prem_obs::Json;
use prem_sim::SimCost;

fn chain(tree: &LoopTree) -> Vec<&prem_core::LoopTreeNode> {
    let mut chain = Vec::new();
    let mut node = &tree.roots[0];
    loop {
        chain.push(node);
        match node.children.first() {
            Some(c) if node.children.len() == 1 && c.tilable => node = c,
            _ => break,
        }
    }
    chain
}

fn main() {
    let mode = RunMode::from_args();
    let cfg = if mode == RunMode::Smoke {
        prem_kernels::CnnConfig::small()
    } else {
        prem_kernels::CnnConfig::googlenet_study()
    };
    let program = cfg.build();
    let tree = LoopTree::build(&program).expect("lowers");
    let comp = Component::extract(&tree, &program, &chain(&tree));
    let cost = SimCost::new(&program);
    let model = cost.exec_model(&comp);
    let platform = Platform::default().with_bus_gbytes(1.0 / 32.0);
    // One memo for the whole study: every ablation re-searches the same
    // component, so segment structure carries across sections 1, 2 and 4.
    let cache = std::sync::Arc::new(AnalysisCache::new());

    println!("Ablations on the CNN study component @ 1/32 GB/s\n");

    println!("1) coordinate-descent sweeps (paper: max_iter = 3)");
    println!(
        "{:>9} {:>14} {:>8} {:>9}",
        "max_iter", "makespan ns", "evals", "time s"
    );
    let sweeps: &[usize] = if mode.reduced() {
        &[1, 3]
    } else {
        &[1, 2, 3, 5]
    };
    let mut sweep_points = Vec::new();
    for &max_iter in sweeps {
        let t0 = std::time::Instant::now();
        let opts = OptimizerOptions {
            max_iter,
            analysis_cache: Some(cache.clone()),
            ..OptimizerOptions::default()
        };
        let r = optimize_component(&comp, &platform, &model, &opts).expect("feasible");
        let wall_s = t0.elapsed().as_secs_f64();
        println!(
            "{max_iter:>9} {:>14.5e} {:>8} {:>9.2}",
            r.result.makespan_ns,
            r.evals(),
            wall_s
        );
        sweep_points.push(Json::obj([
            ("max_iter".to_string(), Json::from(max_iter)),
            ("makespan_ns".to_string(), Json::from(r.result.makespan_ns)),
            ("evals".to_string(), Json::from(r.evals())),
            ("cache_hits".to_string(), Json::from(r.telemetry.cache_hits)),
            ("wall_s".to_string(), Json::from(wall_s)),
        ]));
    }

    println!("\n2) find_minimum: ternary (convex assumption, §4.3) vs full scan");
    println!(
        "{:>9} {:>14} {:>8} {:>9}",
        "mode", "makespan ns", "evals", "time s"
    );
    let mut search_points = Vec::new();
    for convex in [true, false] {
        let t0 = std::time::Instant::now();
        let opts = OptimizerOptions {
            convex_search: convex,
            analysis_cache: Some(cache.clone()),
            ..OptimizerOptions::default()
        };
        let r = optimize_component(&comp, &platform, &model, &opts).expect("feasible");
        let wall_s = t0.elapsed().as_secs_f64();
        println!(
            "{:>9} {:>14.5e} {:>8} {:>9.2}",
            if convex { "ternary" } else { "scan" },
            r.result.makespan_ns,
            r.evals(),
            wall_s
        );
        search_points.push(Json::obj([
            (
                "mode".to_string(),
                Json::from(if convex { "ternary" } else { "scan" }),
            ),
            ("makespan_ns".to_string(), Json::from(r.result.makespan_ns)),
            ("evals".to_string(), Json::from(r.evals())),
            ("wall_s".to_string(), Json::from(wall_s)),
        ]));
    }

    println!("\n3) thread-group assignment space (non-dominated filter, §4.3)");
    let nd = nondominated_thread_groups(&comp, platform.cores);
    let all: i64 = {
        // Count all valid assignments for comparison.
        fn rec(comp: &Component, p: i64, j: usize, used: i64) -> i64 {
            if j == comp.depth() {
                return 1;
            }
            let max_r = if comp.levels[j].parallel {
                (p / used).min(comp.levels[j].count).max(1)
            } else {
                1
            };
            (1..=max_r).map(|r| rec(comp, p, j + 1, used * r)).sum()
        }
        rec(&comp, platform.cores as i64, 0, 1)
    };
    println!("   all valid assignments: {all}");
    println!("   non-dominated        : {}", nd.len());

    println!("\n4) two-level SPM prototype (Ch. 7): heuristic best solution re-timed");
    let opts = OptimizerOptions {
        analysis_cache: Some(cache.clone()),
        ..OptimizerOptions::default()
    };
    let best = optimize_component(&comp, &platform, &model, &opts).expect("feasible");
    let sched = build_schedule(&comp, &best.solution, &platform, &model).expect("feasible");
    let single = prem_core::evaluate(&sched).makespan_ns;
    let l2_sizes: &[i64] = if mode.reduced() { &[1] } else { &[1, 2, 8] };
    let cfgs: Vec<TwoLevelConfig> = l2_sizes
        .iter()
        .map(|&l2_mb| TwoLevelConfig {
            l2_bytes: l2_mb << 20,
            ..TwoLevelConfig::default()
        })
        .collect();
    // One batched sweep: the L1 re-timing is capacity-invariant, so the
    // scan hoists it across the whole size range.
    let swept = evaluate_two_level_scan(&sched, &platform, &cfgs);
    let mut two_level_points = Vec::new();
    for (&l2_mb, result) in l2_sizes.iter().zip(swept) {
        let makespan = match result {
            Some(two) => {
                println!(
                    "   L2 = {l2_mb} MiB: {:.5e} ns ({:.2}x vs single-level {:.5e})",
                    two.makespan_ns,
                    single / two.makespan_ns,
                    single
                );
                Json::from(two.makespan_ns)
            }
            None => {
                println!("   L2 = {l2_mb} MiB: segment working set exceeds a partition");
                Json::Null
            }
        };
        two_level_points.push(Json::obj([
            ("l2_mib".to_string(), Json::from(l2_mb)),
            ("makespan_ns".to_string(), makespan),
        ]));
    }

    let mut report = new_report("ablation", mode);
    report
        .set(
            "config",
            Json::obj([
                ("kernel".to_string(), Json::from("cnn")),
                ("bus_gbytes".to_string(), Json::from(1.0 / 32.0)),
            ]),
        )
        .set("max_iter_sweep", Json::Arr(sweep_points))
        .set("find_minimum", Json::Arr(search_points))
        .set("assignments_all", all)
        .set("assignments_nondominated", nd.len())
        .set("two_level", Json::Arr(two_level_points))
        .set("makespan_ns", best.result.makespan_ns)
        .set("evals", best.evals())
        .set("cache_hits", best.telemetry.cache_hits);
    write_report(&report);
}
