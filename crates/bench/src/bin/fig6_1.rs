//! Figure 6.1 — Makespan of the PolyBench-NN forward passes, normalized by
//! the ideal single-core case, as a function of memory bandwidth
//! (1/16 … 16 GB/s), for: the heuristic on 1 core, the heuristic on 8 cores
//! and the greedy baseline on 8 cores.
//!
//! Also reports the maximum API-call overhead share (§6.2 states 4.37 %).
//!
//! Usage: `cargo run -p prem-bench --release --bin fig6_1 [--quick|--smoke]`

use prem_bench::{
    fig61_bus_speeds, ideal, new_report, parallel_map, run_pairs, run_point, suite, write_csv,
    write_report, RunMode, Strategy,
};
use prem_core::Platform;
use prem_obs::Json;

fn main() {
    let mode = RunMode::from_args();
    let suite = suite(mode);
    let speeds = if mode.reduced() {
        vec![1.0 / 16.0, 1.0, 16.0]
    } else {
        fig61_bus_speeds()
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    println!("Figure 6.1 — normalized makespan (log10 scale like the paper's y-axis)");
    println!(
        "{:<8} {:>9} | {:>12} {:>12} {:>12} | {:>7}",
        "kernel", "GB/s", "ours-1core", "ours-8core", "greedy-8c", "api%"
    );
    let mut rows = Vec::new();
    let mut points = Vec::new();
    let mut max_api_share = 0.0f64;

    for bench in &suite {
        let base = ideal(bench);
        let results = parallel_map(speeds.clone(), threads, |&gb| {
            let p1 = Platform::default().with_cores(1).with_bus_gbytes(gb);
            let p8 = Platform::default().with_bus_gbytes(gb);
            let ours1 = run_point(bench, &p1, Strategy::Heuristic);
            let ours8 = run_point(bench, &p8, Strategy::Heuristic);
            let greedy = run_point(bench, &p8, Strategy::Greedy);
            (gb, ours1, ours8, greedy)
        });
        for (gb, ours1, ours8, greedy) in results {
            let n1 = ours1.outcome.makespan_ns / base;
            let n8 = ours8.outcome.makespan_ns / base;
            let ng = greedy.outcome.makespan_ns / base;
            // Share of per-core busy time spent in API calls (§6.2's
            // "maximum API overhead").
            let busy: f64 = ours8
                .outcome
                .components
                .iter()
                .map(|c| (c.result.exec_ns + c.result.api_ns) * c.exec_count as f64)
                .sum();
            let api_share = ours8.outcome.total_api_ns() / busy.max(1.0);
            max_api_share = max_api_share.max(api_share);
            println!(
                "{:<8} {:>9.4} | {:>12.4} {:>12.4} {:>12.4} | {:>6.2}%",
                bench.name,
                gb,
                n1,
                n8,
                ng,
                api_share * 100.0
            );
            rows.push(format!(
                "{},{gb},{n1},{n8},{ng},{},{},{}",
                bench.name, ours1.seconds, ours8.seconds, greedy.seconds
            ));
            let mut pairs = vec![
                ("kernel".to_string(), Json::from(bench.name)),
                ("bus_gbytes".to_string(), Json::from(gb)),
                ("norm_ours1".to_string(), Json::from(n1)),
                ("norm_ours8".to_string(), Json::from(n8)),
                ("norm_greedy8".to_string(), Json::from(ng)),
                ("api_share".to_string(), Json::from(api_share)),
            ];
            pairs.extend(run_pairs(&ours8));
            points.push(Json::obj(pairs));
        }
        println!();
    }

    println!(
        "max API overhead share: {:.2}% (paper: ≤ 4.37%)",
        max_api_share * 100.0
    );
    let path = write_csv(
        "fig6_1.csv",
        "kernel,bus_gbytes,ours1,ours8,greedy8,t_ours1_s,t_ours8_s,t_greedy_s",
        &rows,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
    let mut report = new_report("fig6_1", mode);
    report
        .set(
            "config",
            Json::obj([("speeds_gbytes".to_string(), Json::from(speeds.clone()))]),
        )
        .set("max_api_share", max_api_share)
        .set("points", Json::Arr(points));
    write_report(&report);
}
