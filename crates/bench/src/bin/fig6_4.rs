//! Figure 6.4 — Makespan vs SPM size for the PolyBench-NN kernels, with the
//! infinite-SPM makespan as the reference line.
//!
//! Usage: `cargo run -p prem-bench --release --bin fig6_4 [--quick]`

use prem_bench::{large_suite, parallel_map, run_point, write_csv, Strategy};
use prem_core::Platform;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // log2(SPM bytes) sweep: 16 KiB … 4 MiB (plus "infinite" = 1 GiB).
    let sizes: Vec<i64> = if quick {
        vec![1 << 15, 1 << 17, 1 << 20]
    } else {
        (14..=22).map(|e| 1i64 << e).collect()
    };
    let suite = large_suite();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    println!("Figure 6.4 — makespan (ns) vs per-core SPM size, 8 cores, default 16 GB/s bus");
    let mut rows = Vec::new();
    for bench in &suite {
        let infinite = run_point(
            bench,
            &Platform::default().with_spm_bytes(1 << 30),
            Strategy::Heuristic,
        );
        println!(
            "{:<9} infinite-SPM makespan: {:.4e} ns",
            bench.name, infinite.outcome.makespan_ns
        );
        let results = parallel_map(sizes.clone(), threads, |&spm| {
            let p = Platform::default().with_spm_bytes(spm);
            let r = run_point(bench, &p, Strategy::Heuristic);
            (spm, r.outcome.makespan_ns)
        });
        for (spm, makespan) in results {
            let status = if makespan.is_finite() {
                format!("{makespan:.4e}")
            } else {
                "infeasible".to_string()
            };
            println!("  log2(SPM)={:<3} ({:>8} B): {status}", (spm as f64).log2() as i64, spm);
            rows.push(format!("{},{spm},{makespan}", bench.name));
        }
        rows.push(format!(
            "{},inf,{}",
            bench.name, infinite.outcome.makespan_ns
        ));
        println!();
    }
    let path = write_csv("fig6_4.csv", "kernel,spm_bytes,makespan_ns", &rows).expect("write csv");
    println!("wrote {}", path.display());
}
