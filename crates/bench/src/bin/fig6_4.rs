//! Figure 6.4 — Makespan vs SPM size for the PolyBench-NN kernels, with the
//! infinite-SPM makespan as the reference line.
//!
//! Usage: `cargo run -p prem-bench --release --bin fig6_4 [--quick|--smoke]`

use prem_bench::{
    new_report, parallel_map, run_pairs, run_point, suite, write_csv, write_report, RunMode,
    Strategy,
};
use prem_core::Platform;
use prem_obs::Json;

fn main() {
    let mode = RunMode::from_args();
    // log2(SPM bytes) sweep: 16 KiB … 4 MiB (plus "infinite" = 1 GiB).
    let sizes: Vec<i64> = if mode.reduced() {
        vec![1 << 15, 1 << 17, 1 << 20]
    } else {
        (14..=22).map(|e| 1i64 << e).collect()
    };
    let suite = suite(mode);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    println!("Figure 6.4 — makespan (ns) vs per-core SPM size, 8 cores, default 16 GB/s bus");
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for bench in &suite {
        let infinite = run_point(
            bench,
            &Platform::default().with_spm_bytes(1 << 30),
            Strategy::Heuristic,
        );
        println!(
            "{:<9} infinite-SPM makespan: {:.4e} ns",
            bench.name, infinite.outcome.makespan_ns
        );
        let results = parallel_map(sizes.clone(), threads, |&spm| {
            let p = Platform::default().with_spm_bytes(spm);
            (spm, run_point(bench, &p, Strategy::Heuristic))
        });
        for (spm, run) in &results {
            let makespan = run.outcome.makespan_ns;
            let status = if makespan.is_finite() {
                format!("{makespan:.4e}")
            } else {
                "infeasible".to_string()
            };
            println!(
                "  log2(SPM)={:<3} ({:>8} B): {status}",
                (*spm as f64).log2() as i64,
                spm
            );
            rows.push(format!("{},{spm},{makespan}", bench.name));
            let mut pairs = vec![
                ("kernel".to_string(), Json::from(bench.name)),
                ("spm_bytes".to_string(), Json::from(*spm)),
            ];
            pairs.extend(run_pairs(run));
            points.push(Json::obj(pairs));
        }
        rows.push(format!(
            "{},inf,{}",
            bench.name, infinite.outcome.makespan_ns
        ));
        let mut pairs = vec![
            ("kernel".to_string(), Json::from(bench.name)),
            ("spm_bytes".to_string(), Json::from("inf")),
        ];
        pairs.extend(run_pairs(&infinite));
        points.push(Json::obj(pairs));
        println!();
    }
    let path = write_csv("fig6_4.csv", "kernel,spm_bytes,makespan_ns", &rows).expect("write csv");
    println!("wrote {}", path.display());
    let mut report = new_report("fig6_4", mode);
    report
        .set(
            "config",
            Json::obj([(
                "spm_bytes".to_string(),
                Json::Arr(sizes.iter().map(|&s| Json::from(s)).collect()),
            )]),
        )
        .set("points", Json::Arr(points));
    write_report(&report);
}
