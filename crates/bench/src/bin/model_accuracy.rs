//! §6.1 validation — the analytic timing model's makespan must stay within
//! 5 % of the discrete-event machine simulation for every kernel and several
//! bus speeds (the paper verified the same bound against gem5).
//!
//! Usage: `cargo run -p prem-bench --release --bin model_accuracy [--quick|--smoke]`

use prem_bench::{new_report, run_point, suite, write_report, RunMode, Strategy};
use prem_core::{build_schedule, evaluate, Platform};
use prem_obs::Json;
use prem_sim::simulate;

fn main() {
    let mode = RunMode::from_args();
    let suite = suite(mode);
    let speeds: &[f64] = if mode.reduced() {
        &[16.0, 1.0 / 16.0]
    } else {
        &[16.0, 1.0, 1.0 / 16.0]
    };
    let mut worst: f64 = 0.0;
    let mut points = Vec::new();
    println!("§6.1 — analytic model vs discrete-event simulation");
    println!(
        "{:<9} {:>9} {:<14} {:>14} {:>14} {:>8}",
        "kernel", "GB/s", "component", "predicted ns", "simulated ns", "err"
    );
    for bench in &suite {
        for &gb in speeds {
            let p = Platform::default().with_bus_gbytes(gb);
            let run = run_point(bench, &p, Strategy::Heuristic);
            for c in &run.outcome.components {
                let model = bench.cost.cpu.fit(&c.component);
                let sched = build_schedule(&c.component, &c.solution, &p, &model)
                    .expect("chosen solution is feasible");
                let predicted = evaluate(&sched).makespan_ns;
                let sim = simulate(&sched);
                let err = (predicted - sim.makespan_ns).abs() / sim.makespan_ns;
                worst = worst.max(err);
                println!(
                    "{:<9} {:>9.4} {:<14} {:>14.4e} {:>14.4e} {:>7.2}%",
                    bench.name,
                    gb,
                    c.level_names.join(","),
                    predicted,
                    sim.makespan_ns,
                    err * 100.0
                );
                points.push(Json::obj([
                    ("kernel".to_string(), Json::from(bench.name)),
                    ("bus_gbytes".to_string(), Json::from(gb)),
                    ("component".to_string(), Json::from(c.level_names.join(","))),
                    ("predicted_ns".to_string(), Json::from(predicted)),
                    ("simulated_ns".to_string(), Json::from(sim.makespan_ns)),
                    ("rel_err".to_string(), Json::from(err)),
                ]));
            }
        }
    }
    println!(
        "\nworst relative error: {:.2}% (paper bound: 5%)",
        worst * 100.0
    );
    let mut report = new_report("model_accuracy", mode);
    report
        .set(
            "config",
            Json::obj([("speeds_gbytes".to_string(), Json::from(speeds.to_vec()))]),
        )
        .set("worst_rel_err", worst)
        .set("bound", 0.05)
        .set("points", Json::Arr(points));
    write_report(&report);
    assert!(worst < 0.05, "model accuracy bound violated");
}
