//! §6.3.1 — Detailed comparison of the heuristic's best selection against
//! the greedy selection for the GoogLeNet study CNN at 1/32 GB/s: makespans,
//! total transferred bytes, segment counts and innermost iterations per
//! segment. The paper reports ≈10× makespan and ≈10× transferred-bytes gaps.
//!
//! Usage: `cargo run -p prem-bench --release --bin sec6_3_1 [--smoke]`

use prem_bench::{fmt_selection, new_report, write_report, RunMode};
use prem_core::{optimize_app_greedy, optimize_app_timed, LoopTree, OptimizerOptions, Platform};
use prem_obs::Json;
use prem_sim::SimCost;

fn main() {
    let mode = RunMode::from_args();
    let cfg = if mode == RunMode::Smoke {
        prem_kernels::CnnConfig::small()
    } else {
        prem_kernels::CnnConfig::googlenet_study()
    };
    let program = cfg.build();
    let tree = LoopTree::build(&program).expect("lowers");
    let cost = SimCost::new(&program);
    let platform = Platform::default().with_bus_gbytes(1.0 / 32.0);

    let t0 = std::time::Instant::now();
    let (ours, _phases) = optimize_app_timed(
        &tree,
        &program,
        &platform,
        &cost,
        &OptimizerOptions::default(),
    );
    let ours_s = t0.elapsed().as_secs_f64();
    let greedy = optimize_app_greedy(&tree, &program, &platform, &cost);

    let inner_iters = |c: &prem_core::ComponentReport| {
        // Innermost iterations per full segment: product of K extents times
        // the folded r, s loops (3 × 3).
        c.solution.k.iter().product::<i64>() * (cfg.nr * cfg.ns)
    };
    let segments =
        |c: &prem_core::ComponentReport| c.solution.m(&c.component).iter().product::<i64>();

    println!("§6.3.1 — heuristic vs greedy, CNN k128/p28/q28/c96 @ 1/32 GB/s\n");
    let mut selections = Vec::new();
    for (label, out) in [("selection_best", &ours), ("selection_greedy", &greedy)] {
        let c = &out.components[0];
        println!("{label}:");
        println!("  {}", fmt_selection(c));
        println!("  makespan        : {:.6e} ns", out.makespan_ns);
        println!("  bytes transferred: {}", out.total_bytes());
        println!("  segments         : {}", segments(c));
        println!("  innermost iters / full segment: {}", inner_iters(c));
        println!("  SPM occupation   : {} B", c.result.spm_bytes);
        println!();
        selections.push(Json::obj([
            ("label".to_string(), Json::from(label)),
            ("selection".to_string(), Json::from(fmt_selection(c))),
            ("makespan_ns".to_string(), Json::from(out.makespan_ns)),
            ("bytes".to_string(), Json::from(out.total_bytes())),
            ("segments".to_string(), Json::from(segments(c))),
            ("inner_iters".to_string(), Json::from(inner_iters(c))),
            ("spm_bytes".to_string(), Json::from(c.result.spm_bytes)),
        ]));
    }
    let ratio_makespan = greedy.makespan_ns / ours.makespan_ns;
    let ratio_bytes = greedy.total_bytes() as f64 / ours.total_bytes() as f64;
    println!("greedy/best makespan ratio : {ratio_makespan:.2}x  (paper: ≈10x)");
    println!("greedy/best bytes ratio    : {ratio_bytes:.2}x  (paper: ≈10x)");

    let totals = ours.search_totals();
    let mut report = new_report("sec6_3_1", mode);
    report
        .set(
            "config",
            Json::obj([
                ("kernel".to_string(), Json::from("cnn")),
                ("nk".to_string(), Json::from(cfg.nk)),
                ("np".to_string(), Json::from(cfg.np)),
                ("nq".to_string(), Json::from(cfg.nq)),
                ("nc".to_string(), Json::from(cfg.nc)),
                ("bus_gbytes".to_string(), Json::from(1.0 / 32.0)),
            ]),
        )
        .set("selections", Json::Arr(selections))
        .set("ratio_makespan", ratio_makespan)
        .set("ratio_bytes", ratio_bytes)
        .set("makespan_ns", ours.makespan_ns)
        .set("evals", totals.evals)
        .set("cache_hits", totals.cache_hits)
        .set("cache_hit_rate", totals.cache_hit_rate())
        .set("wall_s", ours_s);
    write_report(&report);
}
