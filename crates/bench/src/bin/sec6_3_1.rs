//! §6.3.1 — Detailed comparison of the heuristic's best selection against
//! the greedy selection for the GoogLeNet study CNN at 1/32 GB/s: makespans,
//! total transferred bytes, segment counts and innermost iterations per
//! segment. The paper reports ≈10× makespan and ≈10× transferred-bytes gaps.
//!
//! Usage: `cargo run -p prem-bench --release --bin sec6_3_1`

use prem_bench::fmt_selection;
use prem_core::{optimize_app, optimize_app_greedy, LoopTree, OptimizerOptions, Platform};
use prem_sim::SimCost;

fn main() {
    let cfg = prem_kernels::CnnConfig::googlenet_study();
    let program = cfg.build();
    let tree = LoopTree::build(&program).expect("lowers");
    let cost = SimCost::new(&program);
    let platform = Platform::default().with_bus_gbytes(1.0 / 32.0);

    let ours = optimize_app(&tree, &program, &platform, &cost, &OptimizerOptions::default());
    let greedy = optimize_app_greedy(&tree, &program, &platform, &cost);

    let inner_iters = |c: &prem_core::ComponentReport| {
        // Innermost iterations per full segment: product of K extents times
        // the folded r, s loops (3 × 3).
        c.solution.k.iter().product::<i64>() * (cfg.nr * cfg.ns)
    };
    let segments = |c: &prem_core::ComponentReport| {
        c.solution
            .m(&c.component)
            .iter()
            .product::<i64>()
    };

    println!("§6.3.1 — heuristic vs greedy, CNN k128/p28/q28/c96 @ 1/32 GB/s\n");
    for (label, out) in [("selection_best", &ours), ("selection_greedy", &greedy)] {
        let c = &out.components[0];
        println!("{label}:");
        println!("  {}", fmt_selection(c));
        println!("  makespan        : {:.6e} ns", out.makespan_ns);
        println!("  bytes transferred: {}", out.total_bytes());
        println!("  segments         : {}", segments(c));
        println!("  innermost iters / full segment: {}", inner_iters(c));
        println!("  SPM occupation   : {} B", c.result.spm_bytes);
        println!();
    }
    let ratio_makespan = greedy.makespan_ns / ours.makespan_ns;
    let ratio_bytes = greedy.total_bytes() as f64 / ours.total_bytes() as f64;
    println!("greedy/best makespan ratio : {ratio_makespan:.2}x  (paper: ≈10x)");
    println!("greedy/best bytes ratio    : {ratio_bytes:.2}x  (paper: ≈10x)");
}
