//! Replay load driver for `prem-serve`.
//!
//! Starts an in-process server on an ephemeral port and fires a mixed-kernel
//! request stream at it from many concurrent client threads: the five
//! bundled kernels across several platform points, plus a matvec kernel
//! submitted as frontend source. The first wave is `concurrency` identical
//! requests released through a barrier, so request coalescing is exercised
//! (and asserted) rather than hoped for.
//!
//! Checks (the bench fails loudly rather than record garbage):
//!
//! - every response is a 200 — zero errors, timeouts or caught panics;
//! - the coalesced first wave returns byte-identical bodies, whose
//!   deterministic `result` object matches an uncoalesced baseline computed
//!   by a separate server instance;
//! - the server's `coalesced` counter is positive and `computed` stays at
//!   the number of distinct request bodies.
//!
//! Writes `serve_bench.json` (throughput, p50/p95/p99 latency, coalescing
//! and cache counters) into the results directory; `scripts/check.sh
//! --bench-snapshot` condenses it into `BENCH_serve.json`.
//!
//! Modes: full (2000 requests, 64 clients), `--quick` (1200 / 32),
//! `--smoke` (160 / 16).

use prem_bench::{new_report, write_report, RunMode};
use prem_obs::Json;
use prem_serve::{client, Server, ServerConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

/// The distinct request bodies of the mixed workload.
fn request_bodies() -> Vec<String> {
    let mut bodies = Vec::new();
    let platforms = [
        String::new(),
        ",\"platform\":{\"spm_kib\":64}".to_string(),
        ",\"platform\":{\"bus_gbytes\":8}".to_string(),
        ",\"platform\":{\"cores\":4,\"bus_gbytes\":4}".to_string(),
    ];
    for name in prem_serve::api::builtin_names() {
        for p in &platforms {
            bodies.push(format!("{{\"kernel\":{{\"builtin\":\"{name}\"}}{p}}}"));
        }
    }
    let matvec = "double a[N][N]; double b[N]; double c[N]; \
                  for (int i = 0; i < N; i++) { c[i] = 0.0; \
                  for (int j = 0; j < N; j++) { c[i] = c[i] + a[i][j] * b[j]; } }";
    for n in [64, 96] {
        bodies.push(format!(
            "{{\"kernel\":{{\"source\":\"{matvec}\",\"name\":\"matvec\",\"params\":{{\"N\":{n}}}}}}}"
        ));
    }
    bodies
}

/// Extracts the deterministic `result` object out of a response body.
fn result_part(body: &str) -> &str {
    let start = body.find("\"result\":").map(|i| i + "\"result\":".len());
    let end = body.find(",\"telemetry\":");
    match (start, end) {
        (Some(s), Some(e)) if s < e => &body[s..e],
        _ => body,
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

fn stat(stats: &Json, key: &str) -> f64 {
    stats.get(key).and_then(Json::as_f64).unwrap_or(-1.0)
}

fn main() {
    let mode = RunMode::from_args();
    let (total, concurrency) = match mode {
        RunMode::Full => (2000usize, 64usize),
        RunMode::Quick => (1200, 32),
        RunMode::Smoke => (160, 16),
    };
    let bodies = request_bodies();
    println!(
        "serve_bench [{}]: {total} requests, {concurrency} clients, {} distinct bodies",
        mode.as_str(),
        bodies.len()
    );

    // Uncoalesced baseline from a throwaway server: the deterministic
    // `result` object the coalesced wave must reproduce bit-for-bit.
    let baseline = {
        let server = Server::start(ServerConfig::default()).expect("bind baseline server");
        let resp = client::post(server.addr(), "/optimize", &bodies[0]).expect("baseline request");
        assert_eq!(resp.status, 200, "baseline failed: {}", resp.body);
        server.shutdown();
        resp.body
    };

    let cfg = ServerConfig {
        workers: concurrency,
        ..ServerConfig::default()
    };
    let server = Server::start(cfg).expect("bind load server");
    let addr = server.addr();

    // Requests 0..concurrency are identical (body 0) and barrier-released;
    // the tail round-robins over the whole mix.
    let next = AtomicUsize::new(0);
    let barrier = Barrier::new(concurrency);
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(total));
    let first_wave: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..concurrency {
            s.spawn(|| {
                let mut my_lat = Vec::new();
                barrier.wait();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let body = &bodies[if i < concurrency { 0 } else { i % bodies.len() }];
                    let t = Instant::now();
                    match client::post(addr, "/optimize", body) {
                        Ok(resp) => {
                            my_lat.push(t.elapsed().as_secs_f64() * 1e3);
                            if resp.status != 200 {
                                failures
                                    .lock()
                                    .unwrap()
                                    .push(format!("request {i}: status {}", resp.status));
                            } else if i < concurrency {
                                first_wave.lock().unwrap().push(resp.body);
                            }
                        }
                        Err(e) => failures.lock().unwrap().push(format!("request {i}: {e}")),
                    }
                }
                latencies.lock().unwrap().extend(my_lat);
            });
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();

    let failures = failures.into_inner().unwrap();
    assert!(failures.is_empty(), "non-200 responses: {failures:?}");
    let first_wave = first_wave.into_inner().unwrap();
    assert_eq!(first_wave.len(), concurrency, "first wave lost responses");
    for body in &first_wave {
        assert_eq!(
            body, &first_wave[0],
            "coalesced wave returned diverging bodies"
        );
    }
    assert_eq!(
        result_part(&first_wave[0]),
        result_part(&baseline),
        "coalesced result differs from the uncoalesced baseline"
    );

    let stats_resp = client::get(addr, "/stats").expect("stats");
    let stats = Json::parse(&stats_resp.body).expect("stats parse");
    server.shutdown();

    let computed = stat(&stats, "computed");
    let coalesced = stat(&stats, "coalesced");
    let cache_hits = stat(&stats, "response_cache_hits");
    assert_eq!(stat(&stats, "panics"), 0.0, "server caught panics");
    assert_eq!(stat(&stats, "timeouts"), 0.0, "requests timed out");
    assert_eq!(stat(&stats, "errors"), 0.0, "server counted errors");
    assert!(coalesced > 0.0, "no coalescing despite the identical wave");
    assert!(
        computed <= bodies.len() as f64,
        "recomputed a cached request: computed={computed}, distinct={}",
        bodies.len()
    );

    let mut sorted = latencies.into_inner().unwrap();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = percentile(&sorted, 50.0);
    let p95 = percentile(&sorted, 95.0);
    let p99 = percentile(&sorted, 99.0);
    let throughput = total as f64 / wall_s;
    println!(
        "  {total} requests in {wall_s:.2}s = {throughput:.0} req/s; \
         p50 {p50:.2}ms p95 {p95:.2}ms p99 {p99:.2}ms"
    );
    println!(
        "  computed {computed:.0}, coalesced {coalesced:.0}, response-cache hits {cache_hits:.0}"
    );

    let mut report = new_report("serve_bench", mode);
    report.set("total_requests", total);
    report.set("concurrency", concurrency);
    report.set("distinct_bodies", bodies.len());
    report.set("wall_s", wall_s);
    report.set("throughput_rps", throughput);
    report.set("p50_ms", p50);
    report.set("p95_ms", p95);
    report.set("p99_ms", p99);
    report.set("computed", computed);
    report.set("coalesced", coalesced);
    report.set("response_cache_hits", cache_hits);
    report.set("errors", stat(&stats, "errors"));
    report.set("timeouts", stat(&stats, "timeouts"));
    report.set("panics", stat(&stats, "panics"));
    if let Some(cache) = stats.get("analysis_cache") {
        report.set("analysis_cache", cache.clone());
    }
    write_report(&report);
}
