//! Replay load driver for `prem-serve`.
//!
//! Two scenarios, both against in-process servers on ephemeral ports:
//!
//! **Load** — a mixed-kernel request stream from many concurrent keep-alive
//! clients: the five bundled kernels across several platform points, plus a
//! matvec kernel submitted as frontend source. The first wave is
//! `concurrency` identical requests released through a barrier, so request
//! coalescing is exercised (and asserted) rather than hoped for. Clients
//! hold one connection each and reconnect only when the server closes it.
//!
//! **Saturation** — a flood of *distinct* kernels (≥ 4× the compute-pool
//! size) against a deliberately tiny pool. Overloaded requests must come
//! back as structured 503 + `Retry-After` (never a hang, never a panic),
//! the process thread count must stay bounded by pool + workers + clients
//! (no per-request compute threads), and every rejected body must succeed
//! when retried after the suggested backoff.
//!
//! Checks (the bench fails loudly rather than record garbage):
//!
//! - every load-phase response is a 200 — zero errors, timeouts, rejections
//!   or caught panics;
//! - the coalesced first wave returns byte-identical bodies, whose
//!   deterministic `result` object matches an uncoalesced baseline computed
//!   by a separate server instance;
//! - the server's `coalesced` counter is positive, `computed` stays at the
//!   number of distinct request bodies, and the `/stats` conservation
//!   invariant holds in both phases;
//! - the saturation phase sees at least one 503 and a bounded thread count.
//!
//! Writes `serve_bench.json` (throughput, p50/p95/p99 latency, coalescing,
//! backpressure and orphan counters) into the results directory;
//! `scripts/check.sh --bench-snapshot` condenses it into `BENCH_serve.json`.
//!
//! Modes: full (2000 requests, 64 clients), `--quick` (1200 / 32),
//! `--smoke` (160 / 16).

use prem_bench::{new_report, write_report, RunMode};
use prem_obs::{Json, RunReport};
use prem_serve::{client, Server, ServerConfig};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

/// The distinct request bodies of the mixed workload.
fn request_bodies() -> Vec<String> {
    let mut bodies = Vec::new();
    let platforms = [
        String::new(),
        ",\"platform\":{\"spm_kib\":64}".to_string(),
        ",\"platform\":{\"bus_gbytes\":8}".to_string(),
        ",\"platform\":{\"cores\":4,\"bus_gbytes\":4}".to_string(),
    ];
    for name in prem_serve::api::builtin_names() {
        for p in &platforms {
            bodies.push(format!("{{\"kernel\":{{\"builtin\":\"{name}\"}}{p}}}"));
        }
    }
    let matvec = "double a[N][N]; double b[N]; double c[N]; \
                  for (int i = 0; i < N; i++) { c[i] = 0.0; \
                  for (int j = 0; j < N; j++) { c[i] = c[i] + a[i][j] * b[j]; } }";
    for n in [64, 96] {
        bodies.push(format!(
            "{{\"kernel\":{{\"source\":\"{matvec}\",\"name\":\"matvec\",\"params\":{{\"N\":{n}}}}}}}"
        ));
    }
    bodies
}

/// Extracts the deterministic `result` object out of a response body.
fn result_part(body: &str) -> &str {
    let start = body.find("\"result\":").map(|i| i + "\"result\":".len());
    let end = body.find(",\"telemetry\":");
    match (start, end) {
        (Some(s), Some(e)) if s < e => &body[s..e],
        _ => body,
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

fn stat(stats: &Json, key: &str) -> f64 {
    stats.get(key).and_then(Json::as_f64).unwrap_or(-1.0)
}

/// The `/stats` conservation law: every `/optimize` request is counted once
/// on admission and once on completion.
fn assert_stats_invariant(stats: &Json, ctx: &str) {
    let c = |k: &str| stat(stats, k);
    assert_eq!(c("inflight"), 0.0, "{ctx}: requests still in flight");
    assert_eq!(c("queue_depth"), 0.0, "{ctx}: computations still queued");
    assert_eq!(
        c("computed") + c("coalesced") + c("response_cache_hits") + c("rejected") + c("invalid"),
        c("ok") + c("timeouts") + c("errors"),
        "{ctx}: stats invariant violated: {stats:?}"
    );
}

/// Current thread count of this process (`/proc/self/status`), or -1 when
/// unavailable (non-Linux).
fn thread_count() -> i64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(-1)
}

/// A keep-alive client that transparently reconnects when the server closes
/// the connection (request-per-connection bound, shutdown) — but never
/// retries a request, so statuses stay attributable.
struct PooledClient {
    addr: std::net::SocketAddr,
    conn: Option<client::Conn>,
}

impl PooledClient {
    fn new(addr: std::net::SocketAddr) -> PooledClient {
        PooledClient { addr, conn: None }
    }

    fn post(&mut self, path: &str, body: &str) -> std::io::Result<client::Response> {
        for attempt in 0..2 {
            if self.conn.as_ref().is_none_or(|c| !c.is_open()) {
                self.conn = Some(client::Conn::connect(self.addr)?);
            }
            let conn = self.conn.as_mut().expect("connection just ensured");
            match conn.request("POST", path, body) {
                Ok(resp) => return Ok(resp),
                // A stale keep-alive connection (closed between requests)
                // surfaces as an error on the *next* use: one reconnect.
                Err(_) if attempt == 0 => self.conn = None,
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop returns on success or second error")
    }
}

/// Load phase: mixed keep-alive traffic, coalescing, latency percentiles.
#[allow(clippy::too_many_lines)]
fn run_load(mode: RunMode, report: &mut RunReport) {
    let (total, concurrency) = match mode {
        RunMode::Full => (2000usize, 64usize),
        RunMode::Quick => (1200, 32),
        RunMode::Smoke => (160, 16),
    };
    let bodies = request_bodies();
    println!(
        "serve_bench [{}]: {total} requests, {concurrency} keep-alive clients, {} distinct bodies",
        mode.as_str(),
        bodies.len()
    );

    // Uncoalesced baseline from a throwaway server: the deterministic
    // `result` object the coalesced wave must reproduce bit-for-bit.
    let baseline = {
        let server = Server::start(ServerConfig::default()).expect("bind baseline server");
        let resp = client::post(server.addr(), "/optimize", &bodies[0]).expect("baseline request");
        assert_eq!(resp.status, 200, "baseline failed: {}", resp.body);
        server.shutdown();
        resp.body
    };

    let cfg = ServerConfig {
        workers: concurrency,
        pool_size: 4,
        // Roomy enough that the distinct-body mix never trips backpressure:
        // the load phase asserts rejected == 0.
        queue_cap: 64,
        ..ServerConfig::default()
    };
    let server = Server::start(cfg).expect("bind load server");
    let addr = server.addr();

    // Requests 0..concurrency are identical (body 0) and barrier-released;
    // the tail round-robins over the whole mix.
    let next = AtomicUsize::new(0);
    let barrier = Barrier::new(concurrency);
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(total));
    let first_wave: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let reconnects = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..concurrency {
            s.spawn(|| {
                let mut pooled = PooledClient::new(addr);
                let mut my_lat = Vec::new();
                barrier.wait();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let body = &bodies[if i < concurrency { 0 } else { i % bodies.len() }];
                    let had_conn = pooled.conn.as_ref().is_some_and(client::Conn::is_open);
                    let t = Instant::now();
                    match pooled.post("/optimize", body) {
                        Ok(resp) => {
                            my_lat.push(t.elapsed().as_secs_f64() * 1e3);
                            if !had_conn {
                                reconnects.fetch_add(1, Ordering::Relaxed);
                            }
                            if resp.status != 200 {
                                failures
                                    .lock()
                                    .unwrap()
                                    .push(format!("request {i}: status {}", resp.status));
                            } else if i < concurrency {
                                first_wave.lock().unwrap().push(resp.body);
                            }
                        }
                        Err(e) => failures.lock().unwrap().push(format!("request {i}: {e}")),
                    }
                }
                latencies.lock().unwrap().extend(my_lat);
            });
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();

    let failures = failures.into_inner().unwrap();
    assert!(failures.is_empty(), "non-200 responses: {failures:?}");
    let first_wave = first_wave.into_inner().unwrap();
    assert_eq!(first_wave.len(), concurrency, "first wave lost responses");
    for body in &first_wave {
        assert_eq!(
            body, &first_wave[0],
            "coalesced wave returned diverging bodies"
        );
    }
    assert_eq!(
        result_part(&first_wave[0]),
        result_part(&baseline),
        "coalesced result differs from the uncoalesced baseline"
    );

    let stats_resp = client::get(addr, "/stats").expect("stats");
    let stats = Json::parse(&stats_resp.body).expect("stats parse");
    server.shutdown();

    let computed = stat(&stats, "computed");
    let coalesced = stat(&stats, "coalesced");
    let cache_hits = stat(&stats, "response_cache_hits");
    assert_eq!(stat(&stats, "panics"), 0.0, "server caught panics");
    assert_eq!(stat(&stats, "timeouts"), 0.0, "requests timed out");
    assert_eq!(stat(&stats, "errors"), 0.0, "server counted errors");
    assert_eq!(stat(&stats, "rejected"), 0.0, "load phase hit backpressure");
    assert_eq!(stat(&stats, "orphaned"), 0.0, "computations were orphaned");
    assert!(coalesced > 0.0, "no coalescing despite the identical wave");
    assert!(
        computed <= bodies.len() as f64,
        "recomputed a cached request: computed={computed}, distinct={}",
        bodies.len()
    );
    assert_stats_invariant(&stats, "load phase");

    let mut sorted = latencies.into_inner().unwrap();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = percentile(&sorted, 50.0);
    let p95 = percentile(&sorted, 95.0);
    let p99 = percentile(&sorted, 99.0);
    let throughput = total as f64 / wall_s;
    let reconnects = reconnects.into_inner();
    println!(
        "  {total} requests in {wall_s:.2}s = {throughput:.0} req/s; \
         p50 {p50:.2}ms p95 {p95:.2}ms p99 {p99:.2}ms ({reconnects} connections)"
    );
    println!(
        "  computed {computed:.0}, coalesced {coalesced:.0}, response-cache hits {cache_hits:.0}"
    );

    report.set("total_requests", total);
    report.set("concurrency", concurrency);
    report.set("distinct_bodies", bodies.len());
    report.set("connections_opened", reconnects);
    report.set("wall_s", wall_s);
    report.set("throughput_rps", throughput);
    report.set("p50_ms", p50);
    report.set("p95_ms", p95);
    report.set("p99_ms", p99);
    report.set("computed", computed);
    report.set("coalesced", coalesced);
    report.set("response_cache_hits", cache_hits);
    report.set("errors", stat(&stats, "errors"));
    report.set("timeouts", stat(&stats, "timeouts"));
    report.set("panics", stat(&stats, "panics"));
    report.set("rejected", stat(&stats, "rejected"));
    report.set("orphaned", stat(&stats, "orphaned"));
    if let Some(cache) = stats.get("analysis_cache") {
        report.set("analysis_cache", cache.clone());
    }
}

/// Saturation phase: distinct-kernel flood against a tiny pool.
fn run_saturation(mode: RunMode, report: &mut RunReport) {
    let pool_size = 2usize;
    let queue_cap = 2usize;
    let clients = 8usize;
    let distinct = match mode {
        RunMode::Full => 32usize, // 16× pool
        RunMode::Quick => 24,
        RunMode::Smoke => 12,
    };
    println!(
        "  saturation: {distinct} distinct kernels ({}x pool) over {clients} clients, \
         pool {pool_size}, queue {queue_cap}",
        distinct / pool_size
    );
    // Each body is a distinct kernel (distinct canonical key): same matvec
    // shape, different problem size.
    let matvec = "double a[N][N]; double b[N]; double c[N]; \
                  for (int i = 0; i < N; i++) { c[i] = 0.0; \
                  for (int j = 0; j < N; j++) { c[i] = c[i] + a[i][j] * b[j]; } }";
    let bodies: Vec<String> = (0..distinct)
        .map(|i| {
            format!(
                "{{\"kernel\":{{\"source\":\"{matvec}\",\"name\":\"matvec\",\"params\":{{\"N\":{}}}}}}}",
                16 + i
            )
        })
        .collect();

    let cfg = ServerConfig {
        workers: clients,
        pool_size,
        queue_cap,
        // Hold each compute slot busy long enough that the flood observably
        // overlaps the full queue.
        compute_holdup: Duration::from_millis(120),
        ..ServerConfig::default()
    };
    let server = Server::start(cfg).expect("bind saturation server");
    let addr = server.addr();

    // Thread accounting: everything up to here (harness + accept + workers
    // + pool) is the baseline; the flood may add the client threads and the
    // sampler but must NOT add a thread per distinct kernel.
    let threads_base = thread_count();
    let sampler_stop = std::sync::Arc::new(AtomicBool::new(false));
    let sampler = {
        let stop = sampler_stop.clone();
        std::thread::spawn(move || {
            let mut peak = thread_count();
            while !stop.load(Ordering::Relaxed) {
                peak = peak.max(thread_count());
                std::thread::sleep(Duration::from_millis(10));
            }
            peak
        })
    };

    let next = AtomicUsize::new(0);
    let barrier = Barrier::new(clients);
    let outcomes: Mutex<Vec<(usize, u16, bool)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..clients {
            s.spawn(|| {
                let mut pooled = PooledClient::new(addr);
                barrier.wait();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= bodies.len() {
                        break;
                    }
                    let resp = pooled
                        .post("/optimize", &bodies[i])
                        .expect("saturation request");
                    let has_retry_after = resp.header("Retry-After").is_some();
                    outcomes
                        .lock()
                        .unwrap()
                        .push((i, resp.status, has_retry_after));
                }
            });
        }
    });
    sampler_stop.store(true, Ordering::Relaxed);
    let threads_peak = sampler.join().expect("sampler thread");
    let outcomes = outcomes.into_inner().unwrap();

    let mut first_pass_ok = 0usize;
    let mut rejected: Vec<usize> = Vec::new();
    for (i, status, has_retry_after) in &outcomes {
        match status {
            200 => first_pass_ok += 1,
            503 => {
                assert!(has_retry_after, "503 without Retry-After (body {i})");
                rejected.push(*i);
            }
            other => panic!("saturation request {i}: unexpected status {other}"),
        }
    }
    assert!(
        !rejected.is_empty(),
        "distinct-kernel flood saturated nothing (pool {pool_size}, queue {queue_cap})"
    );

    // Bounded threads: pool + connection workers + the flood's own client
    // threads + sampler + slack. A thread-per-request server would exceed
    // this by ~(distinct - queue_cap - pool) threads.
    let threads_bound = threads_base + clients as i64 + 1 + 4;
    if threads_base > 0 {
        assert!(
            threads_peak <= threads_bound,
            "thread count unbounded under flood: peak {threads_peak} > bound {threads_bound}"
        );
    }

    // Every rejected body must succeed when retried after the backoff.
    let mut retries = 0usize;
    for i in &rejected {
        let mut ok = false;
        for _ in 0..100 {
            std::thread::sleep(Duration::from_millis(50));
            retries += 1;
            let resp = client::post(addr, "/optimize", &bodies[*i]).expect("retry request");
            match resp.status {
                200 => {
                    ok = true;
                    break;
                }
                503 => continue,
                other => panic!("retry of body {i}: unexpected status {other}"),
            }
        }
        assert!(ok, "rejected body {i} never succeeded on retry");
    }

    // Settle, then check the books.
    let stats = loop {
        let stats =
            Json::parse(&client::get(addr, "/stats").expect("stats").body).expect("stats parse");
        if stat(&stats, "inflight") == 0.0 && stat(&stats, "queue_depth") == 0.0 {
            break stats;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    server.shutdown();
    assert_eq!(stat(&stats, "panics"), 0.0, "saturation caught panics");
    assert!(
        stat(&stats, "rejected") >= rejected.len() as f64,
        "server undercounted rejections"
    );
    assert_stats_invariant(&stats, "saturation phase");

    println!(
        "  saturation: {first_pass_ok}/{} first-pass 200s, {} rejected (503+Retry-After), \
         {retries} retries to drain; threads base {threads_base} peak {threads_peak} \
         (bound {threads_bound})",
        outcomes.len(),
        rejected.len(),
    );

    report.set("sat_pool_size", pool_size);
    report.set("sat_queue_cap", queue_cap);
    report.set("sat_clients", clients);
    report.set("sat_distinct_kernels", distinct);
    report.set("sat_first_pass_ok", first_pass_ok);
    report.set("sat_rejected", rejected.len());
    report.set("sat_retries", retries);
    report.set("sat_threads_base", threads_base);
    report.set("sat_threads_peak", threads_peak);
    report.set("sat_threads_bound", threads_bound);
    report.set("sat_server_rejected", stat(&stats, "rejected"));
    report.set("sat_server_ok", stat(&stats, "ok"));
    report.set("sat_server_orphaned", stat(&stats, "orphaned"));
}

fn main() {
    let mode = RunMode::from_args();
    let mut report = new_report("serve_bench", mode);
    run_load(mode, &mut report);
    run_saturation(mode, &mut report);
    write_report(&report);
}
