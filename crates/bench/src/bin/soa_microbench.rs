//! Hermetic microbenchmark: scalar `rebuild_scan` replay vs the SoA lane
//! walk + lane-parallel `makespan_only_batch` fold, on a synthetic 4-level
//! nest. The scan tier runs at a mid-descent base (4 tiles per frozen
//! level) where the frozen columns dominate; the fold tier runs at a
//! late-search base (fully descended) where per-lane segment counts are
//! small enough for the interleaved recurrence to engage — each tier is
//! timed on the search shape its path exists for.
//!
//! Reports per-candidate nanoseconds for both paths and their ratio; the
//! EXPERIMENTS.md "SoA landscape evaluation" section records a reference
//! run. Results are cross-checked bitwise every iteration, so a divergence
//! aborts the benchmark instead of timing garbage.
//!
//! Usage: `cargo run -p prem-bench --release --bin soa_microbench [--quick|--smoke]`

use prem_bench::{new_report, write_report, RunMode};
use prem_core::{
    makespan_only_batch, select_tile_sizes, AnalyticCost, BatchScratch, Component,
    ComponentAnalysis, CoordinateDelta, CostProvider, MakespanScratch, Platform, Solution,
    SOA_LANES,
};
use prem_ir::{AssignKind, ElemType, Expr, IdxExpr, ProgramBuilder};
use prem_obs::Json;
use std::time::Instant;

/// Synthetic 4-level nest: a batched 3-D stencil-ish update with two live
/// arrays, deep enough that every frozen level contributes columns.
fn nest4(n: [i64; 4]) -> (prem_ir::Program, Component) {
    let mut b = ProgramBuilder::new("nest4");
    let x = b.array("x", vec![n[0], n[1], n[2], n[3]], ElemType::F32);
    let y = b.array("y", vec![n[0], n[1], n[2], n[3]], ElemType::F32);
    let i0 = b.begin_loop("b", 0, 1, n[0]);
    let i1 = b.begin_loop("i", 0, 1, n[1]);
    let i2 = b.begin_loop("j", 0, 1, n[2]);
    let i3 = b.begin_loop("k", 0, 1, n[3]);
    let idx = |v| IdxExpr::var(v);
    b.stmt(
        y,
        vec![idx(i0), idx(i1), idx(i2), idx(i3)],
        AssignKind::AddAssign,
        Expr::mul(
            Expr::load(x, vec![idx(i0), idx(i1), idx(i2), idx(i3)]),
            Expr::Const(0.5),
        ),
    );
    b.end_loop();
    b.end_loop();
    b.end_loop();
    b.end_loop();
    let program = b.finish();
    let tree = prem_core::LoopTree::build(&program).unwrap();
    let chain: Vec<_> = {
        let mut chain = Vec::new();
        let mut node = &tree.roots[0];
        loop {
            chain.push(node);
            match node.children.first() {
                Some(c) if node.children.len() == 1 => node = c,
                _ => break,
            }
        }
        chain
    };
    let comp = Component::extract(&tree, &program, &chain);
    (program, comp)
}

fn main() {
    let mode = RunMode::from_args();
    let (reps, n) = match mode {
        RunMode::Full => (200usize, [8i64, 32, 32, 64]),
        RunMode::Quick => (50, [8, 32, 32, 64]),
        RunMode::Smoke => (5, [4, 16, 16, 32]),
    };
    let (program, comp) = nest4(n);
    let cost = AnalyticCost::new(&program);
    let model = cost.exec_model(&comp);
    let platform = Platform::default();
    let cores = platform.cores;

    // Scan the innermost coordinate — the largest candidate list and the
    // deepest frozen prefix. The base keeps 4 tiles per frozen level
    // (mid-descent shape): the frozen product space is what the arena
    // sweep amortizes over, so a trivial `M_i = 1` base would measure
    // only lane setup.
    let j = comp.depth() - 1;
    let base = Solution {
        k: comp.levels.iter().map(|l| (l.count / 4).max(1)).collect(),
        r: vec![1, cores as i64, 1, 1],
    };
    let cands = select_tile_sizes(&comp, j, base.r[j]);
    let mut delta = CoordinateDelta::new(&comp, &base, j, cores).expect("context fits");

    println!(
        "SoA microbench — 4-level nest {n:?}, {} candidates, {reps} reps",
        cands.len()
    );

    // One warm-up + cross-check pass per path, outside the timed region.
    let (scalar_ref, _) = delta.rebuild_scan(&comp, &cands, &model, false);
    let (soa_ref, stats) = delta.rebuild_scan(&comp, &cands, &model, true);
    assert!(stats.soa && !stats.fallback, "lane walk did not engage");
    for (a, b) in scalar_ref.iter().zip(&soa_ref) {
        match (a, b) {
            (Ok(a), Ok(b)) => assert!(a.bitwise_eq(b), "scan divergence"),
            (Err(a), Err(b)) => assert_eq!(a, b),
            _ => panic!("feasibility divergence"),
        }
    }

    let time_scan = |delta: &mut CoordinateDelta, soa: bool| -> f64 {
        let t0 = Instant::now();
        for _ in 0..reps {
            let (built, _) = delta.rebuild_scan(&comp, &cands, &model, soa);
            std::hint::black_box(&built);
        }
        t0.elapsed().as_secs_f64() / (reps * cands.len()) as f64 * 1e9
    };
    let scalar_scan_ns = time_scan(&mut delta, false);
    let soa_scan_ns = time_scan(&mut delta, true);

    // Fold tier: scalar recurrence vs the lane-interleaved batch
    // recurrence, SOA_LANES at a time. This tier uses a late-search base
    // (fully descended: one tile per frozen level), because that is the
    // shape whose small per-lane segment counts the interleaved fold
    // accepts; mid-descent lanes have thousands of segments and route
    // through the scalar fold by design (`BATCH_NSEG_CAP`), so timing
    // them through the batch entry point would measure the dispatch, not
    // the interleave. Note the fold is O(100 ns)/candidate either way —
    // two orders of magnitude below the scan tier — so this tier guards
    // against regressions rather than demonstrating a speedup.
    let base_fold = Solution {
        k: comp.levels.iter().map(|l| l.count).collect(),
        r: base.r.clone(),
    };
    let mut delta_fold = CoordinateDelta::new(&comp, &base_fold, j, cores).expect("context fits");
    let (fold_ref, _) = delta_fold.rebuild_scan(&comp, &cands, &model, false);
    let analyses: Vec<&ComponentAnalysis> =
        fold_ref.iter().filter_map(|r| r.as_ref().ok()).collect();
    // Late-search folds cost O(100 ns) each — repeat enough for the timed
    // region to dwarf timer noise.
    let fold_reps = reps.max(20) * 1000;
    let mut scratch = MakespanScratch::default();
    let t0 = Instant::now();
    for _ in 0..fold_reps {
        for a in &analyses {
            std::hint::black_box(&a.makespan_only(&platform, &mut scratch).ok());
        }
    }
    let scalar_fold_ns = t0.elapsed().as_secs_f64() / (fold_reps * analyses.len()) as f64 * 1e9;
    let mut batch = BatchScratch::default();
    let t0 = Instant::now();
    for _ in 0..fold_reps {
        for chunk in analyses.chunks(SOA_LANES) {
            std::hint::black_box(&makespan_only_batch(chunk, &platform, &mut batch));
        }
    }
    let soa_fold_ns = t0.elapsed().as_secs_f64() / (fold_reps * analyses.len()) as f64 * 1e9;

    println!("  scan  (rebuild): scalar {scalar_scan_ns:9.1} ns/cand   soa {soa_scan_ns:9.1} ns/cand   x{:.2}", scalar_scan_ns / soa_scan_ns);
    println!("  fold  (makespan): scalar {scalar_fold_ns:9.1} ns/cand   soa {soa_fold_ns:9.1} ns/cand   x{:.2}", scalar_fold_ns / soa_fold_ns);

    let mut report = new_report("soa_microbench", mode);
    report
        .set(
            "config",
            Json::obj([
                ("n".to_string(), Json::from(n.to_vec())),
                ("candidates".to_string(), Json::from(cands.len())),
                ("reps".to_string(), Json::from(reps)),
            ]),
        )
        .set("scalar_scan_ns_per_cand", scalar_scan_ns)
        .set("soa_scan_ns_per_cand", soa_scan_ns)
        .set("scan_speedup", scalar_scan_ns / soa_scan_ns)
        .set("scalar_fold_ns_per_cand", scalar_fold_ns)
        .set("soa_fold_ns_per_cand", soa_fold_ns)
        .set("fold_speedup", scalar_fold_ns / soa_fold_ns);
    write_report(&report);
}
