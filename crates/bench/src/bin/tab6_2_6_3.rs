//! Figures 6.2 / 6.3 (tables) — min/max/average running time of generating
//! the Figure 6.1 sweep with the optimization heuristic (6.2) and with the
//! greedy approach (6.3).
//!
//! Usage: `cargo run -p prem-bench --release --bin tab6_2_6_3 [--quick|--smoke]`

use prem_bench::{
    fig61_bus_speeds, new_report, parallel_map, run_pairs, run_point, suite, write_csv,
    write_report, RunMode, Strategy,
};
use prem_core::Platform;
use prem_obs::Json;

fn main() {
    let mode = RunMode::from_args();
    let suite = suite(mode);
    let speeds = if mode.reduced() {
        vec![1.0 / 16.0, 1.0, 16.0]
    } else {
        fig61_bus_speeds()
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    let mut rows = Vec::new();
    let mut summary = Vec::new();
    let mut points = Vec::new();
    for strategy in [Strategy::Heuristic, Strategy::Greedy] {
        let label = match strategy {
            Strategy::Heuristic => "Figure 6.2 — Optimization Heuristic runtime",
            Strategy::Greedy => "Figure 6.3 — Greedy Approach runtime",
        };
        println!("{label}");
        println!(
            "{:<10} {:>12} {:>12} {:>12}",
            "kernel", "min (s)", "max (s)", "avg (s)"
        );
        for bench in &suite {
            let runs = parallel_map(speeds.clone(), threads, |&gb| {
                let p8 = Platform::default().with_bus_gbytes(gb);
                run_point(bench, &p8, strategy)
            });
            let times: Vec<f64> = runs.iter().map(|r| r.seconds).collect();
            let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = times.iter().cloned().fold(0.0, f64::max);
            let avg = times.iter().sum::<f64>() / times.len() as f64;
            println!(
                "{:<10} {:>12.3} {:>12.3} {:>12.3}",
                bench.name, min, max, avg
            );
            rows.push(format!("{:?},{},{min},{max},{avg}", strategy, bench.name));
            summary.push(Json::obj([
                ("strategy".to_string(), Json::from(format!("{strategy:?}"))),
                ("kernel".to_string(), Json::from(bench.name)),
                ("min_s".to_string(), Json::from(min)),
                ("max_s".to_string(), Json::from(max)),
                ("avg_s".to_string(), Json::from(avg)),
            ]));
            for (gb, run) in speeds.iter().zip(&runs) {
                let mut pairs = vec![
                    ("strategy".to_string(), Json::from(format!("{strategy:?}"))),
                    ("kernel".to_string(), Json::from(bench.name)),
                    ("bus_gbytes".to_string(), Json::from(*gb)),
                ];
                pairs.extend(run_pairs(run));
                points.push(Json::obj(pairs));
            }
        }
        println!();
    }
    let path =
        write_csv("tab6_2_6_3.csv", "strategy,kernel,min_s,max_s,avg_s", &rows).expect("write csv");
    println!("wrote {}", path.display());
    let mut report = new_report("tab6_2_6_3", mode);
    report
        .set(
            "config",
            Json::obj([("speeds_gbytes".to_string(), Json::from(speeds.clone()))]),
        )
        .set("rows", Json::Arr(summary))
        .set("points", Json::Arr(points));
    write_report(&report);
    println!("(paper, Xeon 3.5 GHz + single-process Python: heuristic minutes, greedy ≤ 0.6 s)");
}
