//! Figure 6.6 (table) — Best tiling and parallelization selections for the
//! GoogLeNet 3×3-filter CNN shapes at the very slow bus speed of
//! 1/512 GB/s (batch 1, stride 1).
//!
//! Usage: `cargo run -p prem-bench --release --bin tab6_6 [--quick|--smoke]`

use prem_bench::{fmt_selection, new_report, parallel_map, write_csv, write_report, RunMode};
use prem_core::{optimize_app_timed, LoopTree, OptimizerOptions, Platform};
use prem_obs::Json;
use prem_sim::SimCost;

fn main() {
    let mode = RunMode::from_args();
    let shapes = match mode {
        RunMode::Smoke => vec![prem_kernels::CnnConfig::small()],
        RunMode::Quick => prem_kernels::googlenet::study_shapes()
            .into_iter()
            .take(2)
            .collect(),
        RunMode::Full => prem_kernels::googlenet::study_shapes(),
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let platform = Platform::default().with_bus_gbytes(1.0 / 512.0);

    println!("Figure 6.6 — best selections for GoogLeNet CNN shapes @ 1/512 GB/s");
    println!(
        "{:<24} | {:<60} | {:>13}",
        "NK/NP/NQ/NC", "selection", "makespan (ns)"
    );
    let results = parallel_map(shapes, threads, |cfg| {
        let program = cfg.build();
        let tree = LoopTree::build(&program).expect("lowers");
        let cost = SimCost::new(&program);
        let t0 = std::time::Instant::now();
        let (out, _phases) = optimize_app_timed(
            &tree,
            &program,
            &platform,
            &cost,
            &OptimizerOptions::default(),
        );
        (*cfg, out, t0.elapsed().as_secs_f64())
    });
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for (cfg, out, wall_s) in &results {
        let shape = format!("{} / {} / {} / {}", cfg.nk, cfg.np, cfg.nq, cfg.nc);
        let sel = out
            .components
            .first()
            .map(fmt_selection)
            .unwrap_or_else(|| "<none>".into());
        println!("{:<24} | {:<60} | {:>13.4e}", shape, sel, out.makespan_ns);
        rows.push(format!("{shape},{sel},{}", out.makespan_ns));
        let totals = out.search_totals();
        points.push(Json::obj([
            ("shape".to_string(), Json::from(shape)),
            ("selection".to_string(), Json::from(sel)),
            ("makespan_ns".to_string(), Json::from(out.makespan_ns)),
            ("evals".to_string(), Json::from(totals.evals)),
            ("cache_hits".to_string(), Json::from(totals.cache_hits)),
            ("wall_s".to_string(), Json::from(*wall_s)),
        ]));
    }
    let path = write_csv("tab6_6.csv", "shape,selection,makespan_ns", &rows).expect("write csv");
    println!("wrote {}", path.display());
    let mut report = new_report("tab6_6", mode);
    report
        .set(
            "config",
            Json::obj([("bus_gbytes".to_string(), Json::from(1.0 / 512.0))]),
        )
        .set("points", Json::Arr(points));
    write_report(&report);
    println!("(paper: selections differ per shape — e.g. 128/28/28/96 → R 4/2/1, K 32/14/28/5)");
}
