//! Figure 6.6 (table) — Best tiling and parallelization selections for the
//! GoogLeNet 3×3-filter CNN shapes at the very slow bus speed of
//! 1/512 GB/s (batch 1, stride 1).
//!
//! Usage: `cargo run -p prem-bench --release --bin tab6_6`

use prem_bench::{fmt_selection, parallel_map, write_csv};
use prem_core::{optimize_app, LoopTree, OptimizerOptions, Platform};
use prem_sim::SimCost;

fn main() {
    let shapes = prem_kernels::googlenet::study_shapes();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let platform = Platform::default().with_bus_gbytes(1.0 / 512.0);

    println!("Figure 6.6 — best selections for GoogLeNet CNN shapes @ 1/512 GB/s");
    println!(
        "{:<24} | {:<60} | {:>13}",
        "NK/NP/NQ/NC", "selection", "makespan (ns)"
    );
    let results = parallel_map(shapes, threads, |cfg| {
        let program = cfg.build();
        let tree = LoopTree::build(&program).expect("lowers");
        let cost = SimCost::new(&program);
        let out = optimize_app(&tree, &program, &platform, &cost, &OptimizerOptions::default());
        (*cfg, out)
    });
    let mut rows = Vec::new();
    for (cfg, out) in &results {
        let shape = format!("{} / {} / {} / {}", cfg.nk, cfg.np, cfg.nq, cfg.nc);
        let sel = out
            .components
            .first()
            .map(fmt_selection)
            .unwrap_or_else(|| "<none>".into());
        println!("{:<24} | {:<60} | {:>13.4e}", shape, sel, out.makespan_ns);
        rows.push(format!("{shape},{sel},{}", out.makespan_ns));
    }
    let path = write_csv("tab6_6.csv", "shape,selection,makespan_ns", &rows).expect("write csv");
    println!("wrote {}", path.display());
    println!("(paper: selections differ per shape — e.g. 128/28/28/96 → R 4/2/1, K 32/14/28/5)");
}
