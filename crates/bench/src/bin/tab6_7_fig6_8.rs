//! Figure 6.7 (table) and Figure 6.8 — the boundary region between
//! memory-bound and compute-bound execution for the GoogLeNet study CNN
//! (`k128/p28/q28/c96/r3/s3`): best selections, makespan, total transferred
//! data and SPM utilization while the bus speed sweeps
//! `1/64 + 0.01·i` GB/s for `i = 0 … 10`.
//!
//! Usage: `cargo run -p prem-bench --release --bin tab6_7_fig6_8`

use prem_bench::{fmt_selection, parallel_map, write_csv};
use prem_core::{optimize_app, LoopTree, OptimizerOptions, Platform};
use prem_sim::SimCost;

fn main() {
    let cfg = prem_kernels::CnnConfig::googlenet_study();
    let program = cfg.build();
    let tree = LoopTree::build(&program).expect("lowers");
    let cost = SimCost::new(&program);
    let speeds: Vec<f64> = (0..=10).map(|i| 1.0 / 64.0 + 0.01 * i as f64).collect();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    println!("Figures 6.7 / 6.8 — CNN boundary region (k128/p28/q28/c96)");
    println!(
        "{:>12} | {:<64} | {:>12} | {:>12} | {:>8}",
        "bus (GB/s)", "selection", "makespan ns", "bytes", "SPM util"
    );
    let results = parallel_map(speeds, threads, |&gb| {
        let p = Platform::default().with_bus_gbytes(gb);
        let out = optimize_app(&tree, &program, &p, &cost, &OptimizerOptions::default());
        (gb, out)
    });
    let mut rows = Vec::new();
    for (gb, out) in &results {
        let sel = out
            .components
            .first()
            .map(fmt_selection)
            .unwrap_or_else(|| "<none>".into());
        let util = out.max_spm_bytes() as f64 / Platform::default().spm_bytes as f64;
        println!(
            "{:>12.5} | {:<64} | {:>12.4e} | {:>12} | {:>7.1}%",
            gb,
            sel,
            out.makespan_ns,
            out.total_bytes(),
            util * 100.0
        );
        rows.push(format!(
            "{gb},{sel},{},{},{util}",
            out.makespan_ns,
            out.total_bytes()
        ));
    }
    let path = write_csv(
        "tab6_7_fig6_8.csv",
        "bus_gbytes,selection,makespan_ns,bytes,spm_util",
        &rows,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
    println!("(expected shape, §6.3.2: as the bus speeds up, selections shrink the SPM");
    println!(" working set and total transferred bytes increase — the first/last-segment");
    println!(" load/unload time matters more once execution is compute-bound)");
}
