//! Figure 6.7 (table) and Figure 6.8 — the boundary region between
//! memory-bound and compute-bound execution for the GoogLeNet study CNN
//! (`k128/p28/q28/c96/r3/s3`): best selections, makespan, total transferred
//! data and SPM utilization while the bus speed sweeps
//! `1/64 + 0.01·i` GB/s for `i = 0 … 10`.
//!
//! Usage: `cargo run -p prem-bench --release --bin tab6_7_fig6_8 [--quick|--smoke]`

use prem_bench::{fmt_selection, new_report, parallel_map, write_csv, write_report, RunMode};
use prem_core::{optimize_app_timed, LoopTree, OptimizerOptions, Platform};
use prem_obs::Json;
use prem_sim::SimCost;

fn main() {
    let mode = RunMode::from_args();
    let cfg = if mode == RunMode::Smoke {
        prem_kernels::CnnConfig::small()
    } else {
        prem_kernels::CnnConfig::googlenet_study()
    };
    let program = cfg.build();
    let tree = LoopTree::build(&program).expect("lowers");
    let cost = SimCost::new(&program);
    let steps: Vec<i32> = if mode.reduced() {
        vec![0, 5, 10]
    } else {
        (0..=10).collect()
    };
    let speeds: Vec<f64> = steps
        .iter()
        .map(|&i| 1.0 / 64.0 + 0.01 * i as f64)
        .collect();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    println!("Figures 6.7 / 6.8 — CNN boundary region (k128/p28/q28/c96)");
    println!(
        "{:>12} | {:<64} | {:>12} | {:>12} | {:>8}",
        "bus (GB/s)", "selection", "makespan ns", "bytes", "SPM util"
    );
    let results = parallel_map(speeds.clone(), threads, |&gb| {
        let p = Platform::default().with_bus_gbytes(gb);
        let t0 = std::time::Instant::now();
        let (out, _phases) =
            optimize_app_timed(&tree, &program, &p, &cost, &OptimizerOptions::default());
        (gb, out, t0.elapsed().as_secs_f64())
    });
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for (gb, out, wall_s) in &results {
        let sel = out
            .components
            .first()
            .map(fmt_selection)
            .unwrap_or_else(|| "<none>".into());
        let util = out.max_spm_bytes() as f64 / Platform::default().spm_bytes as f64;
        println!(
            "{:>12.5} | {:<64} | {:>12.4e} | {:>12} | {:>7.1}%",
            gb,
            sel,
            out.makespan_ns,
            out.total_bytes(),
            util * 100.0
        );
        rows.push(format!(
            "{gb},{sel},{},{},{util}",
            out.makespan_ns,
            out.total_bytes()
        ));
        let totals = out.search_totals();
        points.push(Json::obj([
            ("bus_gbytes".to_string(), Json::from(*gb)),
            ("selection".to_string(), Json::from(sel)),
            ("makespan_ns".to_string(), Json::from(out.makespan_ns)),
            ("bytes".to_string(), Json::from(out.total_bytes())),
            ("spm_util".to_string(), Json::from(util)),
            ("evals".to_string(), Json::from(totals.evals)),
            ("cache_hits".to_string(), Json::from(totals.cache_hits)),
            ("wall_s".to_string(), Json::from(*wall_s)),
        ]));
    }
    let path = write_csv(
        "tab6_7_fig6_8.csv",
        "bus_gbytes,selection,makespan_ns,bytes,spm_util",
        &rows,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
    let mut report = new_report("tab6_7_fig6_8", mode);
    report
        .set(
            "config",
            Json::obj([
                ("kernel".to_string(), Json::from("cnn")),
                ("speeds_gbytes".to_string(), Json::from(speeds.clone())),
            ]),
        )
        .set("points", Json::Arr(points));
    write_report(&report);
    println!("(expected shape, §6.3.2: as the bus speeds up, selections shrink the SPM");
    println!(" working set and total transferred bytes increase — the first/last-segment");
    println!(" load/unload time matters more once execution is compute-bound)");
}
