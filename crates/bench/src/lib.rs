//! Shared harness for the evaluation binaries that regenerate every table
//! and figure of the paper (Chapter 6). See EXPERIMENTS.md for the index.

#![warn(missing_docs)]

use prem_core::{
    ideal_makespan, optimize_app, optimize_app_greedy, AppOutcome, LoopTree, OptimizerOptions,
    Platform,
};
use prem_ir::Program;
use prem_sim::SimCost;
use std::time::Instant;

/// The five PolyBench-NN kernels with their analysis artifacts.
pub struct Bench {
    /// Kernel name.
    pub name: &'static str,
    /// The kernel program.
    pub program: Program,
    /// Its loop tree.
    pub tree: LoopTree,
    /// The profiled-and-fitted cost provider (gem5-substitute workflow).
    pub cost: SimCost,
}

/// Builds the LARGE-size suite of Figure 6.1.
pub fn large_suite() -> Vec<Bench> {
    prem_kernels::all_large()
        .into_iter()
        .map(|(name, program)| {
            let tree = LoopTree::build(&program).expect("kernels lower");
            let cost = SimCost::new(&program);
            Bench {
                name,
                program,
                tree,
                cost,
            }
        })
        .collect()
}

/// One optimization run with its wall-clock time.
pub struct TimedRun {
    /// The outcome.
    pub outcome: AppOutcome,
    /// Wall-clock seconds the optimizer took.
    pub seconds: f64,
}

/// Scheduling strategy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The paper's heuristic (Algorithms 1 + 2).
    Heuristic,
    /// The greedy baseline of §6.2.
    Greedy,
}

/// Runs one (kernel, platform, strategy) point.
pub fn run_point(bench: &Bench, platform: &Platform, strategy: Strategy) -> TimedRun {
    let t0 = Instant::now();
    let outcome = match strategy {
        Strategy::Heuristic => optimize_app(
            &bench.tree,
            &bench.program,
            platform,
            &bench.cost,
            &OptimizerOptions::default(),
        ),
        Strategy::Greedy => optimize_app_greedy(&bench.tree, &bench.program, platform, &bench.cost),
    };
    TimedRun {
        outcome,
        seconds: t0.elapsed().as_secs_f64(),
    }
}

/// Ideal single-core makespan (unlimited SPM, zero-cost transfers).
pub fn ideal(bench: &Bench) -> f64 {
    ideal_makespan(&bench.tree, &bench.cost)
}

/// The bus-speed sweep of Figure 6.1: 1/16 … 16 GB/s in ×2 steps.
pub fn fig61_bus_speeds() -> Vec<f64> {
    (-4..=4).map(|e| 2f64.powi(e)).collect()
}

/// Runs a closure over items on `threads` OS threads, preserving order.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<&mut Option<R>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.max(1) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                **slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    results.into_iter().map(|r| r.expect("computed")).collect()
}

/// Writes a CSV file under `results/`, creating the directory.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let mut text = String::from(header);
    text.push('\n');
    for r in rows {
        text.push_str(r);
        text.push('\n');
    }
    std::fs::write(&path, text)?;
    Ok(path)
}

/// Formats a solution's `K`/`R` vectors with level names.
pub fn fmt_selection(report: &prem_core::ComponentReport) -> String {
    let ks: Vec<String> = report
        .level_names
        .iter()
        .zip(&report.solution.k)
        .map(|(n, k)| format!("{n}:{k}"))
        .collect();
    let rs: Vec<String> = report
        .level_names
        .iter()
        .zip(&report.solution.r)
        .map(|(n, r)| format!("{n}:{r}"))
        .collect();
    format!("R{{{}}} K{{{}}}", rs.join(", "), ks.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<i32> = (0..37).collect();
        let out = parallel_map(items, 4, |&x| x * 2);
        assert_eq!(out, (0..37).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn bus_sweep_matches_paper_range() {
        let s = fig61_bus_speeds();
        assert_eq!(s.len(), 9);
        assert_eq!(s[0], 1.0 / 16.0);
        assert_eq!(s[8], 16.0);
    }
}
