//! Shared harness for the evaluation binaries that regenerate every table
//! and figure of the paper (Chapter 6). See EXPERIMENTS.md for the index.

#![warn(missing_docs)]

use prem_core::{
    ideal_makespan, optimize_app_greedy, optimize_app_timed, AnalysisCache, AppOutcome, LoopTree,
    OptimizerOptions, Platform,
};
use prem_ir::Program;
use prem_obs::{Json, PhaseTimings, RunReport, Stopwatch};
use prem_sim::SimCost;
use std::sync::Arc;
use std::time::Instant;

/// Problem-size / sweep-size selector shared by every bench binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// The paper-scale experiment (no flag).
    Full,
    /// `--quick`: paper-size kernels over a reduced sweep.
    Quick,
    /// `--smoke`: small kernels and a minimal sweep — fast enough for a
    /// debug-build integration test of the binary.
    Smoke,
}

impl RunMode {
    /// Parses `--quick` / `--smoke` from the process arguments
    /// (`--smoke` wins when both are present).
    pub fn from_args() -> RunMode {
        let mut mode = RunMode::Full;
        for a in std::env::args() {
            if a == "--smoke" {
                return RunMode::Smoke;
            }
            if a == "--quick" {
                mode = RunMode::Quick;
            }
        }
        mode
    }

    /// Lower-case name, as stamped into run reports.
    pub fn as_str(self) -> &'static str {
        match self {
            RunMode::Full => "full",
            RunMode::Quick => "quick",
            RunMode::Smoke => "smoke",
        }
    }

    /// True when sweeps should be cut down (`--quick` or `--smoke`).
    pub fn reduced(self) -> bool {
        self != RunMode::Full
    }
}

/// The five PolyBench-NN kernels with their analysis artifacts.
pub struct Bench {
    /// Kernel name.
    pub name: &'static str,
    /// The kernel program.
    pub program: Program,
    /// Its loop tree.
    pub tree: LoopTree,
    /// The profiled-and-fitted cost provider (gem5-substitute workflow).
    pub cost: SimCost,
    /// Wall-clock seconds spent building the loop tree (the `analysis`
    /// phase of the compile pipeline; merged into each run's timings).
    pub analysis_s: f64,
    /// Shared structural-analysis memo. Sweep points that vary only
    /// platform scalars (bus speed, SPM size) hit the same
    /// `(component, solution, cores)` keys, so segment structure built for
    /// one point is reused by every other point of the same kernel.
    pub cache: Arc<AnalysisCache>,
}

/// Builds the PolyBench-NN suite: LARGE sizes (Figure 6.1) normally, the
/// small test sizes under [`RunMode::Smoke`].
pub fn suite(mode: RunMode) -> Vec<Bench> {
    let kernels = if mode == RunMode::Smoke {
        prem_kernels::all_small()
    } else {
        prem_kernels::all_large()
    };
    kernels
        .into_iter()
        .map(|(name, program)| {
            let mut sw = Stopwatch::start();
            let tree = LoopTree::build(&program).expect("kernels lower");
            let analysis_s = sw.lap();
            let cost = SimCost::new(&program);
            Bench {
                name,
                program,
                tree,
                cost,
                analysis_s,
                cache: Arc::new(AnalysisCache::new()),
            }
        })
        .collect()
}

/// Builds the LARGE-size suite of Figure 6.1.
pub fn large_suite() -> Vec<Bench> {
    suite(RunMode::Full)
}

/// One optimization run with its wall-clock time.
pub struct TimedRun {
    /// The outcome.
    pub outcome: AppOutcome,
    /// Wall-clock seconds the optimizer took.
    pub seconds: f64,
    /// Per-phase wall-clock: `analysis`, `component_extraction`,
    /// `tiling_search`, `schedule_build` (heuristic runs only for the
    /// latter three).
    pub phases: PhaseTimings,
}

/// Scheduling strategy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The paper's heuristic (Algorithms 1 + 2).
    Heuristic,
    /// The greedy baseline of §6.2.
    Greedy,
}

/// Whether the benches run the heuristic with telemetry-driven adaptive
/// search control (convergence-based early stopping, curvature-sized
/// candidate windows). On by default; `PREM_ADAPTIVE=0` (or `false`/`off`/
/// `no`) restores the fixed-constant PR 3 path, whose selections are bitwise
/// reproducible — the switch exists for exactly that A/B. Parsed by
/// [`prem_obs::env_flag`], which warns on unrecognized values instead of
/// silently treating them as "on" the way the old `v != "0"` check did.
pub fn adaptive_enabled() -> bool {
    prem_obs::env_flag("PREM_ADAPTIVE", true)
}

/// Whether the benches serve each single-coordinate scan from one batched
/// landscape rebuild (`CoordinateDelta::rebuild_scan`) instead of
/// per-candidate rebuilds. On by default; `PREM_BATCHED=0` (or `false`/
/// `off`/`no`) restores the per-candidate path, whose selections and
/// makespans are bitwise identical — the switch exists for exactly that
/// A/B. Parsed by [`prem_obs::env_flag`], which warns on unrecognized
/// values.
pub fn batched_enabled() -> bool {
    prem_obs::env_flag("PREM_BATCHED", true)
}

/// Whether the benches run the heuristic with reduction-aware parallel
/// legality (accumulator privatization plus a modeled combine phase,
/// `OptimizerOptions::reductions`). **Off** by default: with the flag off
/// every selection and makespan is bitwise identical to the
/// reduction-oblivious path, so `PREM_REDUCTIONS=1` vs unset is the A/B.
/// Parsed by [`prem_obs::env_flag`], which warns on unrecognized values.
pub fn reductions_enabled() -> bool {
    prem_obs::env_flag("PREM_REDUCTIONS", false)
}

/// Whether the benches evaluate batched scans through the SoA frozen-delta
/// arena and the lane-parallel makespan fold (`OptimizerOptions::soa`). On
/// by default; `PREM_SOA=0` (or `false`/`off`/`no`) restores the scalar
/// replay, whose selections, makespans and schedules are bitwise identical —
/// the switch exists for exactly that A/B. Parsed by
/// [`prem_obs::env_flag`], which warns on unrecognized values.
pub fn soa_enabled() -> bool {
    prem_obs::env_flag("PREM_SOA", true)
}

/// Runs one (kernel, platform, strategy) point.
pub fn run_point(bench: &Bench, platform: &Platform, strategy: Strategy) -> TimedRun {
    let t0 = Instant::now();
    let mut phases = PhaseTimings::new();
    phases.add("analysis", bench.analysis_s);
    let outcome = match strategy {
        Strategy::Heuristic => {
            let opts = OptimizerOptions {
                analysis_cache: Some(bench.cache.clone()),
                adaptive: adaptive_enabled(),
                batched: batched_enabled(),
                reductions: reductions_enabled(),
                soa: soa_enabled(),
                ..OptimizerOptions::default()
            };
            let (outcome, solve) =
                optimize_app_timed(&bench.tree, &bench.program, platform, &bench.cost, &opts);
            phases.absorb(&solve);
            outcome
        }
        Strategy::Greedy => optimize_app_greedy(&bench.tree, &bench.program, platform, &bench.cost),
    };
    TimedRun {
        outcome,
        seconds: t0.elapsed().as_secs_f64(),
        phases,
    }
}

/// Ideal single-core makespan (unlimited SPM, zero-cost transfers).
pub fn ideal(bench: &Bench) -> f64 {
    ideal_makespan(&bench.tree, &bench.cost)
}

/// The bus-speed sweep of Figure 6.1: 1/16 … 16 GB/s in ×2 steps.
pub fn fig61_bus_speeds() -> Vec<f64> {
    (-4..=4).map(|e| 2f64.powi(e)).collect()
}

/// Runs a closure over items on `threads` OS threads, preserving order.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<&mut Option<R>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.max(1) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                **slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    results.into_iter().map(|r| r.expect("computed")).collect()
}

/// The output directory for CSVs and run reports: `$PREM_RESULTS_DIR` when
/// set (the smoke test isolates itself this way), else `results/`.
pub fn results_dir() -> std::path::PathBuf {
    std::env::var_os("PREM_RESULTS_DIR")
        .map(Into::into)
        .unwrap_or_else(|| "results".into())
}

/// Key/value pairs summarizing one timed run — makespan, search counters
/// and per-phase wall-clock. Splice into a `Json::obj` alongside the
/// point-specific context keys (kernel, bus speed, …).
pub fn run_pairs(run: &TimedRun) -> Vec<(String, Json)> {
    let t = run.outcome.search_totals();
    vec![
        ("makespan_ns".into(), run.outcome.makespan_ns.into()),
        ("wall_s".into(), run.seconds.into()),
        (
            "search_s".into(),
            run.phases.get("tiling_search").unwrap_or(0.0).into(),
        ),
        ("evals".into(), t.evals.into()),
        ("cache_hits".into(), t.cache_hits.into()),
        ("cache_hit_rate".into(), t.cache_hit_rate().into()),
        ("fast_evals".into(), t.fast_evals.into()),
        ("full_builds".into(), t.full_builds.into()),
        ("pruned".into(), t.pruned.into()),
        ("analysis_reuses".into(), t.analysis_reuses.into()),
        ("incremental_rebuilds".into(), t.incremental_rebuilds.into()),
        ("evictions".into(), t.evictions.into()),
        ("sweeps_run".into(), t.sweeps_run.into()),
        (
            "candidates_pruned_adaptive".into(),
            t.candidates_pruned_adaptive.into(),
        ),
        ("admission_rejects".into(), t.admission_rejects.into()),
        ("delta_declines".into(), t.delta_declines.into()),
        ("batched_scans".into(), t.batched_scans.into()),
        ("scan_truncations".into(), t.scan_truncations.into()),
        ("soa_scans".into(), t.soa_scans.into()),
        ("simd_batches".into(), t.simd_batches.into()),
        ("soa_fallbacks".into(), t.soa_fallbacks.into()),
        ("reduction_deps".into(), t.reduction_deps.into()),
        (
            "privatized_accumulators".into(),
            t.privatized_accumulators.into(),
        ),
        ("phases".into(), run.phases.to_json()),
    ]
}

/// Starts a machine-readable run report for binary `bin`, stamped with the
/// run mode.
pub fn new_report(bin: &str, mode: RunMode) -> RunReport {
    let mut r = RunReport::new(bin);
    r.set("mode", mode.as_str());
    r.set("adaptive", if adaptive_enabled() { "1" } else { "0" });
    r.set("batched", if batched_enabled() { "1" } else { "0" });
    r.set("reductions", if reductions_enabled() { "1" } else { "0" });
    r.set("soa", if soa_enabled() { "1" } else { "0" });
    r
}

/// Writes `report` into [`results_dir`] and prints the path.
pub fn write_report(report: &RunReport) -> std::path::PathBuf {
    let path = report.write_dir(&results_dir()).expect("write report");
    println!("wrote {}", path.display());
    path
}

/// Writes a CSV file under [`results_dir`], creating the directory.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::io::Result<std::path::PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    let mut text = String::from(header);
    text.push('\n');
    for r in rows {
        text.push_str(r);
        text.push('\n');
    }
    std::fs::write(&path, text)?;
    Ok(path)
}

/// Formats a solution's `K`/`R` vectors with level names.
pub fn fmt_selection(report: &prem_core::ComponentReport) -> String {
    let ks: Vec<String> = report
        .level_names
        .iter()
        .zip(&report.solution.k)
        .map(|(n, k)| format!("{n}:{k}"))
        .collect();
    let rs: Vec<String> = report
        .level_names
        .iter()
        .zip(&report.solution.r)
        .map(|(n, r)| format!("{n}:{r}"))
        .collect();
    format!("R{{{}}} K{{{}}}", rs.join(", "), ks.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<i32> = (0..37).collect();
        let out = parallel_map(items, 4, |&x| x * 2);
        assert_eq!(out, (0..37).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn bus_sweep_matches_paper_range() {
        let s = fig61_bus_speeds();
        assert_eq!(s.len(), 9);
        assert_eq!(s[0], 1.0 / 16.0);
        assert_eq!(s[8], 16.0);
    }
}
