//! Smoke test: every bench binary's reduced mode must run to completion and
//! write a parseable `prem-run-report/v1` JSON report.
//!
//! Binaries run with `--smoke` (small kernels) so the test is viable in a
//! debug build; `--quick` exercises the same code paths on the paper-size
//! kernels. `PREM_RESULTS_DIR` isolates each binary's output under the
//! target tmpdir.

use prem_obs::Json;
use std::path::PathBuf;
use std::process::Command;

fn run_smoke(exe: &str, bin: &str) -> Json {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("smoke_{bin}"));
    let _ = std::fs::remove_dir_all(&dir);
    let out = Command::new(exe)
        .arg("--smoke")
        .env("PREM_RESULTS_DIR", &dir)
        .output()
        .expect("spawn bench binary");
    assert!(
        out.status.success(),
        "{bin} --smoke failed\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let path = dir.join(format!("{bin}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{bin}: missing report {}: {e}", path.display()));
    let doc = Json::parse(&text).unwrap_or_else(|e| panic!("{bin}: unparseable report: {e}"));
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("prem-run-report/v1"),
        "{bin}: bad schema"
    );
    assert_eq!(doc.get("bench").and_then(Json::as_str), Some(bin));
    assert_eq!(doc.get("mode").and_then(Json::as_str), Some("smoke"));
    doc
}

#[test]
fn tab6_2_6_3_smoke_report() {
    let doc = run_smoke(env!("CARGO_BIN_EXE_tab6_2_6_3"), "tab6_2_6_3");
    let points = doc.get("points").and_then(Json::as_arr).expect("points");
    assert!(!points.is_empty());
    for p in points {
        assert!(p.get("makespan_ns").and_then(Json::as_f64).is_some());
        assert!(p.get("evals").and_then(Json::as_f64).is_some());
        assert!(p.get("cache_hit_rate").and_then(Json::as_f64).is_some());
        assert!(p.get("phases").is_some());
    }
}

#[test]
fn fig6_1_smoke_report() {
    let doc = run_smoke(env!("CARGO_BIN_EXE_fig6_1"), "fig6_1");
    assert!(doc.get("max_api_share").and_then(Json::as_f64).is_some());
    let points = doc.get("points").and_then(Json::as_arr).expect("points");
    assert!(!points.is_empty());
}

#[test]
fn fig6_4_smoke_report() {
    let doc = run_smoke(env!("CARGO_BIN_EXE_fig6_4"), "fig6_4");
    let points = doc.get("points").and_then(Json::as_arr).expect("points");
    // 5 kernels × (3 sizes + the infinite-SPM reference point).
    assert_eq!(points.len(), 5 * 4);
}

#[test]
fn model_accuracy_smoke_report() {
    let doc = run_smoke(env!("CARGO_BIN_EXE_model_accuracy"), "model_accuracy");
    let worst = doc
        .get("worst_rel_err")
        .and_then(Json::as_f64)
        .expect("err");
    assert!(worst < 0.05);
}

#[test]
fn sec6_3_1_smoke_report() {
    let doc = run_smoke(env!("CARGO_BIN_EXE_sec6_3_1"), "sec6_3_1");
    let sels = doc.get("selections").and_then(Json::as_arr).expect("sels");
    assert_eq!(sels.len(), 2);
    assert!(doc.get("ratio_makespan").and_then(Json::as_f64).is_some());
}

#[test]
fn tab6_6_smoke_report() {
    let doc = run_smoke(env!("CARGO_BIN_EXE_tab6_6"), "tab6_6");
    let points = doc.get("points").and_then(Json::as_arr).expect("points");
    assert_eq!(points.len(), 1);
    assert!(points[0].get("selection").and_then(Json::as_str).is_some());
}

#[test]
fn tab6_7_fig6_8_smoke_report() {
    let doc = run_smoke(env!("CARGO_BIN_EXE_tab6_7_fig6_8"), "tab6_7_fig6_8");
    let points = doc.get("points").and_then(Json::as_arr).expect("points");
    assert_eq!(points.len(), 3);
}

#[test]
fn ablation_smoke_report() {
    let doc = run_smoke(env!("CARGO_BIN_EXE_ablation"), "ablation");
    let sweep = doc
        .get("max_iter_sweep")
        .and_then(Json::as_arr)
        .expect("sweep");
    assert!(!sweep.is_empty());
    assert!(doc
        .get("assignments_nondominated")
        .and_then(Json::as_f64)
        .is_some());
}
