//! C rendering of IR expressions, conditions and accesses.

use prem_ir::{AssignKind, BinOp, CmpOp, Cond, Expr, IdxExpr, Program, Statement};

/// Resolves loop ids to their C variable names.
pub fn loop_name(program: &Program, id: usize) -> String {
    program
        .find_loop(id)
        .map(|l| l.name.clone())
        .unwrap_or_else(|| format!("l{id}"))
}

/// Renders an index expression as C.
pub fn idx_to_c(program: &Program, e: &IdxExpr) -> String {
    format!("{}", e.display_with(|id| loop_name(program, id)))
}

/// Renders an index expression, substituting custom names for some loops
/// (used when tiled counters replace original variables).
pub fn idx_to_c_with<F>(e: &IdxExpr, names: F) -> String
where
    F: Fn(usize) -> String,
{
    format!("{}", e.display_with(names))
}

/// Renders a condition as C.
pub fn cond_to_c(program: &Program, c: &Cond) -> String {
    if c.atoms.is_empty() {
        return "1".to_string();
    }
    c.atoms
        .iter()
        .map(|a| {
            let op = match a.op {
                CmpOp::Eq => "==",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
            };
            format!("{} {op} 0", idx_to_c(program, &a.lhs))
        })
        .collect::<Vec<_>>()
        .join(" && ")
}

/// Renders an access, letting `rewrite` map each (array, dim, index
/// expression) to the final C index text (identity for plain emission,
/// buffer-relative for PREM emission).
pub fn access_to_c<F>(program: &Program, array: usize, indices: &[IdxExpr], rewrite: &F) -> String
where
    F: Fn(usize, usize, &IdxExpr) -> String,
{
    let mut out = program.array(array).name.clone();
    for (d, e) in indices.iter().enumerate() {
        out.push('[');
        out.push_str(&rewrite(array, d, e));
        out.push(']');
    }
    out
}

/// Renders a right-hand-side expression.
pub fn expr_to_c<F>(program: &Program, e: &Expr, rewrite: &F) -> String
where
    F: Fn(usize, usize, &IdxExpr) -> String,
{
    match e {
        Expr::Load(a) => access_to_c(program, a.array, &a.indices, rewrite),
        Expr::Const(c) => {
            if *c == f64::MIN {
                "-FLT_MAX".to_string()
            } else if c.fract() == 0.0 && c.abs() < 1e15 {
                format!("{:.1}f", c)
            } else {
                format!("{c}f")
            }
        }
        Expr::Index(i) => format!("({})", idx_to_c(program, i)),
        Expr::Bin(op, a, b) => {
            let l = expr_to_c(program, a, rewrite);
            let r = expr_to_c(program, b, rewrite);
            match op.c_infix() {
                Some(sym) => format!("({l} {sym} {r})"),
                None => match op {
                    BinOp::Max => format!("MAX({l}, {r})"),
                    BinOp::Min => format!("MIN({l}, {r})"),
                    _ => unreachable!(),
                },
            }
        }
        Expr::Neg(a) => format!("(-{})", expr_to_c(program, a, rewrite)),
    }
}

/// Renders a full statement.
pub fn stmt_to_c<F>(program: &Program, s: &Statement, rewrite: &F) -> String
where
    F: Fn(usize, usize, &IdxExpr) -> String,
{
    let target = access_to_c(program, s.target.array, &s.target.indices, rewrite);
    let op = match s.kind {
        AssignKind::Assign => "=",
        AssignKind::AddAssign => "+=",
    };
    format!("{target} {op} {};", expr_to_c(program, &s.rhs, rewrite))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_ir::{ElemType, ProgramBuilder};

    #[test]
    fn renders_expressions() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", vec![8], ElemType::F32);
        let i = b.begin_loop("i", 0, 1, 8);
        b.stmt(
            a,
            vec![IdxExpr::var(i).plus_const(1)],
            AssignKind::AddAssign,
            Expr::mul(Expr::load(a, vec![IdxExpr::var(i)]), Expr::Const(2.0)),
        );
        b.end_loop();
        let p = b.finish();
        let identity = |_: usize, _: usize, e: &IdxExpr| idx_to_c(&p, e);
        let mut text = String::new();
        p.visit_statements(|s, _, _| text = stmt_to_c(&p, s, &identity));
        assert_eq!(text, "a[i + 1] += (a[i] * 2.0f);");
    }
}
