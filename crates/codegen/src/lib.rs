//! PREM-compliant C code generation (Chapter 5 of the thesis).
//!
//! [`emit_original_c`] prints the analyzed kernel back as plain C;
//! [`emit_prem_c`] produces the transformed, tiled, double-buffered program
//! with the streaming-API calls of §3.5 / Listing 3.3 inserted.

#![warn(missing_docs)]

pub mod cexpr;
pub mod original;
pub mod prem;
pub mod runtime;
pub mod tiled;

pub use original::emit_original_c;
pub use prem::{emit_prem_c, EmitComponent, EmitError};
pub use runtime::{host_harness_c, host_main_c};
pub use tiled::emit_tiled_c;
