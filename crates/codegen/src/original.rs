//! Plain C emission of the original (untransformed) kernel.

use crate::cexpr::{cond_to_c, idx_to_c, stmt_to_c};
use prem_ir::{IdxExpr, Node, Program};

/// Emits the original program as a C function `void <name>_original(void)`
/// over globally declared arrays.
pub fn emit_original_c(program: &Program) -> String {
    let mut out = String::new();
    out.push_str("#include <stdint.h>\n#include <float.h>\n\n");
    out.push_str("#define MAX(a, b) ((a) > (b) ? (a) : (b))\n");
    out.push_str("#define MIN(a, b) ((a) < (b) ? (a) : (b))\n\n");
    for a in &program.arrays {
        out.push_str(&format!("{a};\n"));
    }
    out.push_str(&format!("\nvoid {}_original(void) {{\n", program.name));
    let identity = |_: usize, _: usize, e: &IdxExpr| idx_to_c(program, e);
    emit_nodes(program, &program.body, 1, &identity, &mut out);
    out.push_str("}\n");
    out
}

pub(crate) fn emit_nodes<F>(
    program: &Program,
    nodes: &[Node],
    indent: usize,
    rewrite: &F,
    out: &mut String,
) where
    F: Fn(usize, usize, &IdxExpr) -> String,
{
    let pad = "    ".repeat(indent);
    for n in nodes {
        match n {
            Node::Loop(l) => {
                out.push_str(&format!(
                    "{pad}for (int {v} = {b}; {v} <= {e}; {v} += {s}) {{\n",
                    v = l.name,
                    b = l.begin,
                    e = l.last(),
                    s = l.stride
                ));
                emit_nodes(program, &l.body, indent + 1, rewrite, out);
                out.push_str(&format!("{pad}}}\n"));
            }
            Node::If(i) => {
                out.push_str(&format!("{pad}if ({}) {{\n", cond_to_c(program, &i.cond)));
                emit_nodes(program, &i.body, indent + 1, rewrite, out);
                out.push_str(&format!("{pad}}}\n"));
            }
            Node::Stmt(s) => {
                out.push_str(&format!("{pad}{}\n", stmt_to_c(program, s, rewrite)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_kernels::CnnConfig;

    #[test]
    fn cnn_emits_compilable_shape() {
        let p = CnnConfig::small().build();
        let c = emit_original_c(&p);
        assert!(c.contains("void cnn_original(void)"));
        assert!(c.contains("float out_F[1][4][6][6];"));
        assert!(c.contains("for (int n = 0; n <= 0; n += 1)"));
        assert!(c.contains("out_F[n][k][p][q] +="));
        // Balanced braces.
        assert_eq!(c.matches('{').count(), c.matches('}').count());
    }
}
