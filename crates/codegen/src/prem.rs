//! Emission of PREM-compliant C (the output of Listing 3.3).
//!
//! For every scheduled component the emitter produces:
//!
//! * per-array *swap parameter tables* (§3.5, Table 3.2): one row per thread,
//!   one entry per `SegmentToSwap` element, holding the main-memory offset
//!   and transfer sizes (offsets may reference outer loop variables, so the
//!   tables are automatic locals declared inside the outer loops, exactly
//!   like Listing 3.3);
//! * streaming buffer pointers into the two SPM partitions and the
//!   `allocate_buffer` calls;
//! * the initial swaps and `dispatch` of the initialization segment;
//! * per-thread tiled loops with the `threadID()`-derived group bounds of
//!   §3.4;
//! * a `DATA_SWAP_APIS` block driven by per-thread cursor tables — the
//!   uniform generalization of the paper's constant-change-stride
//!   conditionals and bit vectors (§3.5); entry `x` targets buffer
//!   `x mod 2`, reproducing the double-buffer alternation;
//! * element loops whose accesses are rewritten buffer-relative
//!   (`i[s1_0 - s1_0_t*109]` in the paper's example);
//! * the `BUFFER_DEALLOC_APIS` epilogue.

use crate::cexpr::{idx_to_c, stmt_to_c};
use crate::original::emit_nodes;
use prem_core::{ArrayUse, BufferAttr, Component, Platform, Solution, TilePlan};
use prem_ir::{IdxExpr, Node, Program};
use prem_polyhedral::Interval;
use std::fmt;

/// Error raised when a program cannot be emitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmitError {
    /// The component's solution is not schedulable.
    Infeasible(String),
    /// A component loop was not found in the program.
    MissingLoop(usize),
}

impl fmt::Display for EmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmitError::Infeasible(s) => write!(f, "cannot emit infeasible solution: {s}"),
            EmitError::MissingLoop(id) => write!(f, "component loop l{id} not in program"),
        }
    }
}

impl std::error::Error for EmitError {}

/// A component paired with the solution to emit.
#[derive(Debug, Clone)]
pub struct EmitComponent {
    /// The component.
    pub component: Component,
    /// The chosen solution.
    pub solution: Solution,
}

/// Emits the full PREM-compliant program:
/// `void <name>_prem(void)` parameterized by `threadID()`, plus the PREM API
/// prototypes and SPM partition symbols.
///
/// # Errors
///
/// Returns [`EmitError`] if a solution is infeasible or the program shape is
/// inconsistent.
pub fn emit_prem_c(
    program: &Program,
    components: &[EmitComponent],
    platform: &Platform,
) -> Result<String, EmitError> {
    let mut out = String::new();
    out.push_str("#include <stdint.h>\n#include <stddef.h>\n#include <float.h>\n\n");
    out.push_str("#define MAX(a, b) ((a) > (b) ? (a) : (b))\n");
    out.push_str("#define MIN(a, b) ((a) < (b) ? (a) : (b))\n\n");
    out.push_str("/* PREM streaming API (Soliman et al., Table 2.1 + swapnd, §3.5) */\n");
    out.push_str("extern int  allocate_buffer(void *dst, int attr);\n");
    out.push_str("extern void swap_buffer(int id, uint64_t *src, int size);\n");
    out.push_str(
        "extern void swap2d_buffer(int id, uint64_t *src, int width, int height, int spitch, int dpitch);\n",
    );
    out.push_str(
        "extern void swapnd_buffer(int id, uint64_t *src, size_t dim, const int size[], const int spitch[], const int dpitch[]);\n",
    );
    out.push_str("extern void deallocate_buffer(int id);\n");
    out.push_str("extern void dispatch(void);\n");
    out.push_str("extern void end_segment(void);\n");
    out.push_str("extern int  threadID(void);\n");
    out.push_str("#define PREM_RO 0\n#define PREM_WO 1\n#define PREM_RW 2\n\n");
    out.push_str(&format!(
        "/* Two streaming SPM partitions of {} bytes each (§3.1) */\n",
        platform.spm_bytes / 2
    ));
    out.push_str(&format!(
        "extern uint8_t __spm_part1[{0}];\nextern uint8_t __spm_part2[{0}];\n\n",
        platform.spm_bytes / 2
    ));
    out.push_str("typedef struct { long offset; int size[8]; } prem_xfer_t;\n\n");
    for a in &program.arrays {
        out.push_str(&format!("{a};\n"));
    }

    out.push_str(&format!("\nvoid {}_prem(void) {{\n", program.name));
    emit_prem_nodes(program, &program.body, components, platform, 1, &mut out)?;
    out.push_str("}\n");
    Ok(out)
}

fn emit_prem_nodes(
    program: &Program,
    nodes: &[Node],
    components: &[EmitComponent],
    platform: &Platform,
    indent: usize,
    out: &mut String,
) -> Result<(), EmitError> {
    let pad = "    ".repeat(indent);
    for n in nodes {
        match n {
            Node::Loop(l) => {
                if let Some(ec) = components
                    .iter()
                    .find(|c| c.component.levels[0].loop_id == l.id)
                {
                    emit_component(program, ec, platform, indent, out)?;
                    continue;
                }
                out.push_str(&format!(
                    "{pad}for (int {v} = {b}; {v} <= {e}; {v} += {s}) {{\n",
                    v = l.name,
                    b = l.begin,
                    e = l.last(),
                    s = l.stride
                ));
                emit_prem_nodes(program, &l.body, components, platform, indent + 1, out)?;
                out.push_str(&format!("{pad}}}\n"));
            }
            Node::If(i) => {
                out.push_str(&format!(
                    "{pad}if ({}) {{\n",
                    crate::cexpr::cond_to_c(program, &i.cond)
                ));
                emit_prem_nodes(program, &i.body, components, platform, indent + 1, out)?;
                out.push_str(&format!("{pad}}}\n"));
            }
            Node::Stmt(s) => {
                let identity = |_: usize, _: usize, e: &IdxExpr| idx_to_c(program, e);
                out.push_str(&format!("{pad}{}\n", stmt_to_c(program, s, &identity)));
            }
        }
    }
    Ok(())
}

/// Lower bound of the canonical range of one array dimension, as a C
/// expression over the tiled-loop variables and outer loop variables.
fn range_lo_expr(
    program: &Program,
    comp: &Component,
    arr: &ArrayUse,
    dim: usize,
    k: &[i64],
) -> String {
    let exprs: Vec<String> = arr.contribs[dim]
        .iter()
        .map(|c| {
            let mut terms = vec![c.base.lo.to_string()];
            for (j, (&coef, lv)) in c.comp_coeffs.iter().zip(&comp.levels).enumerate() {
                if coef == 0 {
                    continue;
                }
                if coef > 0 {
                    terms.push(format!("{coef}*({}_t*{})", lv.name, k[j]));
                } else {
                    // Negative coefficient: the minimum comes from the tile's
                    // upper end (clipped at N-1).
                    terms.push(format!(
                        "{coef}*MIN({}, ({}_t+1)*{} - 1)",
                        lv.count - 1,
                        lv.name,
                        k[j]
                    ));
                }
            }
            for t in &arr.outer_terms[dim] {
                let name = crate::cexpr::loop_name(program, t.loop_id);
                terms.push(format!("{}*({} - {})", t.coeff, name, t.lo));
            }
            terms.join(" + ")
        })
        .collect();
    match exprs.len() {
        1 => exprs.into_iter().next().unwrap(),
        _ => {
            let mut it = exprs.into_iter();
            let first = it.next().unwrap();
            it.fold(first, |acc, e| format!("MIN({acc}, {e})"))
        }
    }
}

/// Emits one transformed component block.
fn emit_component(
    program: &Program,
    ec: &EmitComponent,
    platform: &Platform,
    indent: usize,
    out: &mut String,
) -> Result<(), EmitError> {
    let comp = &ec.component;
    let sol = &ec.solution;
    let plan = TilePlan::build(comp, sol, platform.cores)
        .map_err(|e| EmitError::Infeasible(e.to_string()))?;
    let pad = "    ".repeat(indent);
    let pad1 = "    ".repeat(indent + 1);
    let names: Vec<&str> = comp.levels.iter().map(|l| l.name.as_str()).collect();
    let prefix = names.join("_");
    let threads = sol.threads() as usize;

    // Recompute per-core swap lists (segment index, range), per array.
    type SwapList = Vec<(usize, Vec<Interval>)>;
    let mut swap_lists: Vec<Vec<SwapList>> = vec![vec![Vec::new(); comp.arrays.len()]; threads];
    let mut bboxes: Vec<Vec<i64>> = comp.arrays.iter().map(|a| vec![1; a.dims.len()]).collect();
    for (core, lists) in swap_lists.iter_mut().enumerate() {
        let mut seg = 0usize;
        plan.for_each_core_tile(core, |tile| {
            seg += 1;
            let ranges = plan.tile_ranges(tile);
            for (ai, arr) in comp.arrays.iter().enumerate() {
                let r = arr.canonical_range(&ranges);
                for (bb, iv) in bboxes[ai].iter_mut().zip(&r) {
                    *bb = (*bb).max(iv.len() as i64);
                }
                match lists[ai].last() {
                    Some((_, prev)) if *prev == r => {}
                    _ => lists[ai].push((seg, r)),
                }
            }
        });
    }

    out.push_str(&format!(
        "{pad}{{ /* === PREM component ({}) — {} on {} threads === */\n",
        names.join(", "),
        sol,
        threads
    ));
    out.push_str(&format!("{pad1}int {prefix}_seg_count = 0;\n"));

    // Swap parameter tables: offsets may reference outer loop variables, so
    // the tables live here (inside the enclosing loops), like Listing 3.3.
    for (ai, arr) in comp.arrays.iter().enumerate() {
        let max_swaps = swap_lists.iter().map(|l| l[ai].len()).max().unwrap_or(0);
        out.push_str(&format!(
            "{pad1}const int {a}_nswap[{threads}] = {{{}}};\n",
            swap_lists
                .iter()
                .map(|l| l[ai].len().to_string())
                .collect::<Vec<_>>()
                .join(", "),
            a = arr.name,
        ));
        out.push_str(&format!(
            "{pad1}const int {a}_seg_at[{threads}][{max_swaps}] = {{{}}};\n",
            swap_lists
                .iter()
                .map(|l| {
                    let mut row: Vec<String> =
                        l[ai].iter().map(|(seg, _)| seg.to_string()).collect();
                    row.resize(max_swaps.max(1), "0".to_string());
                    format!("{{{}}}", row.join(", "))
                })
                .collect::<Vec<_>>()
                .join(", "),
            a = arr.name,
        ));
        out.push_str(&format!(
            "{pad1}const prem_xfer_t {a}_swap[{threads}][{max_swaps}] = {{\n",
            a = arr.name
        ));
        for lists in &swap_lists {
            out.push_str(&format!("{pad1}    {{"));
            for (x, (_, range)) in lists[ai].iter().enumerate() {
                if x > 0 {
                    out.push_str(", ");
                }
                // Main-memory element offset of the range origin (§5.3.2).
                let mut offset_terms = Vec::new();
                let mut stride = 1i64;
                for d in (0..arr.dims.len()).rev() {
                    let lo = range[d].lo;
                    // Subtract the scheduler's pinned-outer base and add the
                    // symbolic outer expression instead.
                    let mut term = format!("{lo}");
                    for t in &arr.outer_terms[d] {
                        let name = crate::cexpr::loop_name(program, t.loop_id);
                        term = format!("{term} + {}*({} - {})", t.coeff, name, t.lo);
                    }
                    offset_terms.push(format!("({term})*{stride}"));
                    stride *= arr.dims[d];
                }
                let sizes: Vec<String> = range.iter().map(|iv| iv.len().to_string()).collect();
                out.push_str(&format!(
                    "{{{}, {{{}}}}}",
                    offset_terms.join(" + "),
                    sizes.join(", ")
                ));
            }
            // Pad short rows.
            for x in lists[ai].len()..max_swaps {
                if x > 0 {
                    out.push_str(", ");
                }
                out.push_str("{0, {0}}");
            }
            out.push_str("},\n");
        }
        out.push_str(&format!("{pad1}}};\n"));
    }

    // Buffer pointers into the two SPM partitions and the rebindable alias.
    // The main-memory base is captured first: the alias below shadows the
    // global array name inside this block.
    let mut spm_off = 0i64;
    for arr in &comp.arrays {
        let elem = program.array(arr.array).elem.c_name();
        out.push_str(&format!(
            "{pad1}{elem} *{a}_mem = ({elem}*){a};\n",
            a = arr.name
        ));
    }
    for (ai, arr) in comp.arrays.iter().enumerate() {
        let elem = program.array(arr.array).elem.c_name();
        let inner: String = bboxes[ai][1..].iter().map(|d| format!("[{d}]")).collect();
        for part in 1..=2 {
            out.push_str(&format!(
                "{pad1}{elem} (*{a}_buf{part}){inner} = ({elem} (*){inner})(__spm_part{part} + {spm_off});\n",
                a = arr.name,
            ));
        }
        out.push_str(&format!(
            "{pad1}{elem} (*{a}){inner} = {a}_buf1;\n",
            a = arr.name
        ));
        spm_off += arr.elem_bytes * bboxes[ai].iter().product::<i64>();
    }

    // BUFFER_ALLOC_APIS: allocations, first swaps, dispatch.
    out.push_str(&format!("{pad1}/* BUFFER_ALLOC_APIS (§3.5) */\n"));
    for arr in &comp.arrays {
        let attr = match arr.attr {
            BufferAttr::Ro => "PREM_RO",
            BufferAttr::Wo => "PREM_WO",
            BufferAttr::Rw => "PREM_RW",
        };
        out.push_str(&format!(
            "{pad1}int {a}_id1 = allocate_buffer({a}_buf1, {attr});\n{pad1}int {a}_id2 = allocate_buffer({a}_buf2, {attr});\n",
            a = arr.name
        ));
    }
    for (ai, arr) in comp.arrays.iter().enumerate() {
        emit_swap_call(program, arr, &bboxes[ai], "0", "1", &pad1, out);
    }
    out.push_str(&format!("{pad1}dispatch();\n"));
    for (ai, arr) in comp.arrays.iter().enumerate() {
        let guard = format!("1 < {}_nswap[threadID()]", arr.name);
        out.push_str(&format!("{pad1}if ({guard}) {{\n"));
        emit_swap_call(
            program,
            arr,
            &bboxes[ai],
            "1",
            "2",
            &format!("{pad1}    "),
            out,
        );
        out.push_str(&format!("{pad1}}}\n"));
    }
    for arr in &comp.arrays {
        out.push_str(&format!(
            "{pad1}int {a}_cursor = 2; /* next swap entry to issue */\n{pad1}int {a}_rb = 1; /* next rebind entry */\n",
            a = arr.name
        ));
    }
    out.push_str(&format!("{pad1}end_segment(); /* seg 0 done */\n"));

    // Tiled loops with per-thread group bounds (§3.4).
    let mut inner_pad = pad1.clone();
    let m = sol.m(comp);
    let z = sol.z(comp);
    for (j, lv) in comp.levels.iter().enumerate() {
        let prod_from_j: i64 = sol.r[j..].iter().product();
        let prod_after_j: i64 = sol.r[j + 1..].iter().product();
        out.push_str(&format!(
            "{inner_pad}int g_{n} = (threadID() % {prod_from_j}) / {prod_after_j};\n",
            n = lv.name
        ));
        out.push_str(&format!(
            "{inner_pad}for (int {n}_t = g_{n}*{zj}; {n}_t < MIN({mj}, (g_{n}+1)*{zj}); {n}_t++) {{\n",
            n = lv.name,
            zj = z[j],
            mj = m[j]
        ));
        inner_pad.push_str("    ");
    }

    // DATA_SWAP_APIS: table-driven cursor form (generalizes the paper's
    // constant-change-stride conditionals, §3.5).
    out.push_str(&format!("{inner_pad}/* DATA_SWAP_APIS (§3.5) */\n"));
    for (ai, arr) in comp.arrays.iter().enumerate() {
        // Rebind the array alias when the upcoming segment starts a new
        // range: the block runs at the seg_count = s-1 boundary of segment s.
        out.push_str(&format!(
            "{inner_pad}if ({a}_rb < {a}_nswap[threadID()] && {a}_seg_at[threadID()][{a}_rb] == {prefix}_seg_count + 1) {{\n",
            a = arr.name
        ));
        out.push_str(&format!(
            "{inner_pad}    {a} = ({a}_rb % 2) ? {a}_buf2 : {a}_buf1;\n",
            a = arr.name
        ));
        out.push_str(&format!(
            "{inner_pad}    {a}_rb++;\n{inner_pad}}}\n",
            a = arr.name
        ));
        // Issue entry x's swap at the end of segment ST(x-1)-1, so the DMA
        // transfers it during segment ST(x-1) (§3.5).
        out.push_str(&format!(
            "{inner_pad}if ({a}_cursor < {a}_nswap[threadID()] && {prefix}_seg_count == {a}_seg_at[threadID()][{a}_cursor - 1] - 1) {{\n",
            a = arr.name
        ));
        emit_swap_call(
            program,
            arr,
            &bboxes[ai],
            &format!("{}_cursor", arr.name),
            &format!("{}_cursor + 1", arr.name),
            &format!("{inner_pad}    "),
            out,
        );
        out.push_str(&format!("{inner_pad}    {a}_cursor++;\n", a = arr.name));
        out.push_str(&format!("{inner_pad}}}\n"));
    }

    // Element loops.
    for (j, lv) in comp.levels.iter().enumerate() {
        let last = lv.begin + lv.stride * (lv.count - 1);
        out.push_str(&format!(
            "{inner_pad}for (int {n} = {b} + {s}*({n}_t*{k}); {n} <= MIN({last}, {b} + {s}*(({n}_t+1)*{k} - 1)); {n} += {s}) {{\n",
            n = lv.name,
            b = lv.begin,
            s = lv.stride,
            k = sol.k[j]
        ));
        inner_pad.push_str("    ");
    }

    // Body: the subtree under the innermost level, with accesses to
    // component arrays rewritten buffer-relative.
    let innermost = comp.levels.last().unwrap();
    let body = &program
        .find_loop(innermost.loop_id)
        .ok_or(EmitError::MissingLoop(innermost.loop_id))?
        .body;
    let rewrite = |array: usize, dim: usize, e: &IdxExpr| -> String {
        match comp.arrays.iter().find(|a| a.array == array) {
            Some(arr) => {
                let lo = range_lo_expr(program, comp, arr, dim, &sol.k);
                format!("({}) - ({lo})", idx_to_c(program, e))
            }
            None => idx_to_c(program, e),
        }
    };
    let body_indent = indent + 1 + 2 * comp.levels.len();
    emit_nodes(program, body, body_indent, &rewrite, out);

    // Close element loops, end segment, close tiled loops.
    for j in (0..comp.levels.len()).rev() {
        let _ = j;
        inner_pad.truncate(inner_pad.len() - 4);
        out.push_str(&format!("{inner_pad}}}\n"));
    }
    out.push_str(&format!("{inner_pad}{prefix}_seg_count++;\n"));
    out.push_str(&format!("{inner_pad}end_segment();\n"));
    for _ in 0..comp.levels.len() {
        inner_pad.truncate(inner_pad.len() - 4);
        out.push_str(&format!("{inner_pad}}}\n"));
    }

    // BUFFER_DEALLOC_APIS.
    out.push_str(&format!("{pad1}/* BUFFER_DEALLOC_APIS (§3.5) */\n"));
    for arr in &comp.arrays {
        out.push_str(&format!(
            "{pad1}deallocate_buffer({a}_id1);\n{pad1}deallocate_buffer({a}_id2);\n",
            a = arr.name
        ));
    }
    out.push_str(&format!("{pad1}end_segment();\n"));
    out.push_str(&format!("{pad}}}\n"));
    Ok(())
}

/// Emits one swap call for swap-list entry `entry_expr` (a C expression),
/// choosing `swap_buffer`/`swap2d_buffer`/`swapnd_buffer` by dimensionality
/// (Algorithm 3). `buf_parity_expr` selects the target buffer id.
fn emit_swap_call(
    program: &Program,
    arr: &ArrayUse,
    bbox: &[i64],
    entry_expr: &str,
    buf_parity_expr: &str,
    pad: &str,
    out: &mut String,
) {
    let a = &arr.name;
    let elem = program.array(arr.array).elem.c_name();
    let n = arr.dims.len();
    let id = format!("(({buf_parity_expr}) % 2) ? {a}_id1 : {a}_id2");
    let e = format!("{a}_swap[threadID()][{entry_expr}]");
    let src = format!("(uint64_t*)(({elem}*){a}_mem + {e}.offset)");
    match n {
        1 => {
            out.push_str(&format!(
                "{pad}swap_buffer({id}, {src}, {e}.size[0] * sizeof({elem}));\n"
            ));
        }
        2 => {
            out.push_str(&format!(
                "{pad}swap2d_buffer({id}, {src}, {e}.size[1] * sizeof({elem}), {e}.size[0], {spitch} * sizeof({elem}), {dpitch} * sizeof({elem}));\n",
                spitch = arr.dims[1],
                dpitch = bbox[1]
            ));
        }
        _ => {
            let sizes: Vec<String> = (0..n)
                .map(|d| {
                    if d == n - 1 {
                        format!("{e}.size[{d}] * sizeof({elem})")
                    } else {
                        format!("{e}.size[{d}]")
                    }
                })
                .collect();
            let spitch: Vec<String> = (1..n)
                .map(|d| {
                    if d == n - 1 {
                        format!("{} * sizeof({elem})", arr.dims[d])
                    } else {
                        arr.dims[d].to_string()
                    }
                })
                .collect();
            let dpitch: Vec<String> = (1..n)
                .map(|d| {
                    if d == n - 1 {
                        format!("{} * sizeof({elem})", bbox[d])
                    } else {
                        bbox[d].to_string()
                    }
                })
                .collect();
            out.push_str(&format!(
                "{pad}swapnd_buffer({id}, {src}, {n}, (const int[]){{{}}}, (const int[]){{{}}}, (const int[]){{{}}});\n",
                sizes.join(", "),
                spitch.join(", "),
                dpitch.join(", ")
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_core::{AnalyticCost, LoopTree, OptimizerOptions};
    use std::io::Write;
    use std::process::Command;

    fn emit_for(program: &Program, platform: &Platform) -> String {
        let tree = LoopTree::build(program).unwrap();
        let cost = AnalyticCost::new(program);
        let out = prem_core::optimize_app(
            &tree,
            program,
            platform,
            &cost,
            &OptimizerOptions::default(),
        );
        assert!(out.makespan_ns.is_finite());
        let comps: Vec<EmitComponent> = out
            .components
            .iter()
            .map(|c| EmitComponent {
                component: c.component.clone(),
                solution: c.solution.clone(),
            })
            .collect();
        emit_prem_c(program, &comps, platform).unwrap()
    }

    fn gcc_syntax_check(code: &str) {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("prem_emit_{}.c", std::process::id()));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(code.as_bytes()).unwrap();
        drop(f);
        let out = Command::new("gcc")
            .args(["-std=c99", "-fsyntax-only", "-Wall"])
            .arg(&path)
            .output()
            .expect("gcc runs");
        let stderr = String::from_utf8_lossy(&out.stderr);
        std::fs::remove_file(&path).ok();
        assert!(
            out.status.success(),
            "generated C fails to compile:\n{stderr}\n----\n{code}"
        );
    }

    #[test]
    fn lstm_emission_structure_and_syntax() {
        let program = prem_kernels::LstmConfig {
            nt: 3,
            ns: 24,
            np: 20,
        }
        .build();
        let platform = Platform::default().with_cores(3).with_spm_bytes(8 * 1024);
        let code = emit_for(&program, &platform);
        assert!(code.contains("allocate_buffer"));
        assert!(code.contains("dispatch()"));
        assert!(code.contains("end_segment()"));
        assert!(code.contains("threadID()"));
        assert!(code.contains("DATA_SWAP_APIS"));
        assert!(code.contains("BUFFER_DEALLOC_APIS"));
        assert_eq!(code.matches('{').count(), code.matches('}').count());
        gcc_syntax_check(&code);
    }

    #[test]
    fn cnn_emission_uses_swapnd_for_4d_arrays() {
        let program = prem_kernels::CnnConfig::small().build();
        let platform = Platform::default().with_spm_bytes(8 * 1024);
        let code = emit_for(&program, &platform);
        assert!(code.contains("swapnd_buffer"), "4-D arrays need swapnd");
        assert!(code.contains("out_F_swap"));
        gcc_syntax_check(&code);
    }
}

#[cfg(test)]
mod table_3_2_tests {
    use super::*;
    use prem_core::{Component, LoopTree, Solution};

    /// Table 3.2 of the thesis: the `seg_count → swap input parameters` table
    /// for the `ifog` arrays of the LSTM `(s1_0, p)` component with
    /// `K = (109, 350)`, `R = (3, 1)`: per core, element offsets
    /// (0,109), (218,327), (436,545) with sizes 109 except the last (105).
    #[test]
    fn lstm_swap_table_matches_table_3_2() {
        let program = prem_kernels::LstmConfig {
            nt: 10,
            ns: 650,
            np: 700,
        }
        .build();
        let tree = LoopTree::build(&program).unwrap();
        let t = &tree.roots[0];
        let comp = Component::extract(
            &tree,
            &program,
            &[&t.children[0], &t.children[0].children[0]],
        );
        let ec = EmitComponent {
            component: comp,
            solution: Solution {
                k: vec![109, 350],
                r: vec![3, 1],
            },
        };
        let platform = Platform::default().with_cores(3).with_spm_bytes(4 << 20);
        let mut out = String::new();
        emit_component(&program, &ec, &platform, 0, &mut out).unwrap();

        // i's swap table: 3 thread rows, 2 entries each, offsets and sizes
        // exactly as Table 3.2 (the thesis tabulates them in units of
        // elements; the last range covers rows 545..649 → size 105).
        let table_start = out.find("const prem_xfer_t i_swap[3][2]").expect("i table");
        for row in [
            "{{(0)*1, {109}}, {(109)*1, {109}}},",
            "{{(218)*1, {109}}, {(327)*1, {109}}},",
            "{{(436)*1, {109}}, {(545)*1, {105}}},",
        ] {
            assert!(
                out[table_start..table_start + 400].contains(row),
                "emitted i table does not match Table 3.2 (missing `{row}`):\n{out}"
            );
        }
        // ifog segments swap only at segments 1 and 3 (change stride 2).
        assert!(out.contains("const int i_seg_at[3][2] = {{1, 3}, {1, 3}, {1, 3}};"));
        // U_* and inp_F swap at every segment (change stride 1).
        assert!(out
            .contains("const int U_i_seg_at[3][4] = {{1, 2, 3, 4}, {1, 2, 3, 4}, {1, 2, 3, 4}};"));
        assert!(out.contains(
            "const int inp_F_seg_at[3][4] = {{1, 2, 3, 4}, {1, 2, 3, 4}, {1, 2, 3, 4}};"
        ));
    }
}
