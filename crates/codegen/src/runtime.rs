//! A host-executable stub of the PREM streaming runtime, used to *run* the
//! generated C on the development machine and compare its results against
//! the interpreter.
//!
//! The stub implements the API of Table 2.1 (+ `swapnd_buffer`) with plain
//! `memcpy`-style strided copies executed eagerly at the call site — legal
//! because a swap call always targets the buffer the *current* segment is
//! not using (double buffering), so the deferred-DMA timing of the real OS
//! does not change the data-flow for a single thread. Multi-threaded
//! generated code needs the real runtime's cross-core phase scheduling, so
//! host execution is restricted to single-thread solutions.

/// C source of the stub runtime plus a `main` that initializes every array
/// with the same deterministic pattern as
/// [`prem_ir::MemStore::patterned`], runs `<kernel>_prem()`, and prints
/// every array element in `%a` hex-float form for exact comparison.
pub fn host_harness_c(spm_bytes: i64) -> String {
    let mut out = String::new();
    out.push_str(RUNTIME_PRELUDE);
    out.push_str(&format!(
        "uint8_t __spm_part1[{0}];\nuint8_t __spm_part2[{0}];\n",
        spm_bytes / 2
    ));
    out.push_str("\n/* ---- generated kernel is appended below by the caller ---- */\n");
    out
}

/// The `main` function: deterministic initialization + exact dump.
pub fn host_main_c(program: &prem_ir::Program) -> String {
    let mut out = String::new();
    out.push_str("\nstatic double pattern(uint64_t ai, uint64_t i) {\n");
    out.push_str("    uint64_t h = ai * 0x9e3779b97f4a7c15ULL + i * 0xbf58476d1ce4e5b9ULL;\n");
    out.push_str("    h = (h ^ (h >> 31)) * 0x94d049bb133111ebULL;\n");
    out.push_str("    return ((double)(h >> 11) / 9007199254740992.0) * 2.0 - 1.0;\n");
    out.push_str("}\n\nint main(void) {\n");
    for (ai, a) in program.arrays.iter().enumerate() {
        let len = a.len();
        let elem = a.elem.c_name();
        out.push_str(&format!(
            "    {{ {elem} *p = ({elem}*){name}; for (long i = 0; i < {len}; i++) p[i] = ({elem})pattern({ai}, (uint64_t)i); }}\n",
            name = a.name
        ));
    }
    out.push_str(&format!("    {}_prem();\n", program.name));
    for a in &program.arrays {
        let len = a.len();
        let elem = a.elem.c_name();
        out.push_str(&format!(
            "    {{ {elem} *p = ({elem}*){name}; for (long i = 0; i < {len}; i++) printf(\"%s %ld %.17g\\n\", \"{name}\", i, (double)p[i]); }}\n",
            name = a.name
        ));
    }
    out.push_str("    return 0;\n}\n");
    out
}

/// The runtime stub itself (buffer registry + strided copies).
pub const RUNTIME_PRELUDE: &str = r#"/* Host stub of the PREM streaming runtime (testing only). */
#include <stdint.h>
#include <stddef.h>
#include <string.h>
#include <stdio.h>
#include <stdlib.h>

#define PREM_MAX_BUFFERS 64

typedef struct {
    uint8_t *spm;          /* SPM-side storage */
    int attr;              /* 0 = RO, 1 = WO, 2 = RW */
    uint64_t *bound;       /* main-memory address currently bound */
    size_t dim;            /* dimensionality of the last bind */
    int size[8];           /* last bind sizes (innermost in bytes) */
    int spitch[8];         /* last bind source pitches */
    int dpitch[8];         /* last bind destination pitches */
} prem_buf_t;

static prem_buf_t prem_bufs[PREM_MAX_BUFFERS];
static int prem_nbufs = 0;
static int prem_tid = 0;

int threadID(void) { return prem_tid; }
void dispatch(void) {}
void end_segment(void) {}

int allocate_buffer(void *dst, int attr) {
    prem_buf_t *b = &prem_bufs[prem_nbufs];
    memset(b, 0, sizeof(*b));
    b->spm = (uint8_t *)dst;
    b->attr = attr;
    return prem_nbufs++;
}

/* Strided copy: `dim` dimensions; size[dim-1] is in bytes, outer sizes in
   elements; pitches give the row strides (bytes for the innermost). */
static void prem_copy(uint8_t *dst, const uint8_t *src, size_t dim,
                      const int *size, const int *dst_pitch, const int *src_pitch) {
    if (dim == 1) {
        memcpy(dst, src, (size_t)size[0]);
        return;
    }
    /* Compute byte strides of each dimension for src and dst. */
    long sstride[8], dstride[8];
    sstride[dim - 2] = src_pitch[dim - 2];
    dstride[dim - 2] = dst_pitch[dim - 2];
    for (long d = (long)dim - 3; d >= 0; d--) {
        sstride[d] = sstride[d + 1] * src_pitch[d];
        dstride[d] = dstride[d + 1] * dst_pitch[d];
    }
    long counters[8] = {0};
    for (;;) {
        long soff = 0, doff = 0;
        for (size_t d = 0; d + 1 < dim; d++) {
            soff += counters[d] * sstride[d];
            doff += counters[d] * dstride[d];
        }
        memcpy(dst + doff, src + soff, (size_t)size[dim - 1]);
        long d = (long)dim - 2;
        for (;;) {
            if (d < 0) return;
            if (++counters[d] < size[d]) break;
            counters[d] = 0;
            d--;
        }
    }
}

static void prem_writeback(prem_buf_t *b) {
    if (b->bound && (b->attr == 1 || b->attr == 2)) {
        prem_copy((uint8_t *)b->bound, b->spm, b->dim, b->size, b->spitch, b->dpitch);
    }
}

static void prem_bind(prem_buf_t *b, uint64_t *src, size_t dim,
                      const int *size, const int *spitch, const int *dpitch) {
    b->bound = src;
    b->dim = dim;
    memcpy(b->size, size, dim * sizeof(int));
    if (dim > 1) {
        memcpy(b->spitch, spitch, (dim - 1) * sizeof(int));
        memcpy(b->dpitch, dpitch, (dim - 1) * sizeof(int));
    }
    /* Fill the buffer from memory for every attribute: RO/RW semantics, and
       hole-safety for WO hulls (see DESIGN.md). */
    prem_copy(b->spm, (const uint8_t *)src, dim, b->size, b->dpitch, b->spitch);
}

void swap_buffer(int id, uint64_t *src, int size) {
    prem_buf_t *b = &prem_bufs[id];
    prem_writeback(b);
    int sz[1] = { size };
    prem_bind(b, src, 1, sz, NULL, NULL);
}

void swap2d_buffer(int id, uint64_t *src, int width, int height, int spitch, int dpitch) {
    prem_buf_t *b = &prem_bufs[id];
    prem_writeback(b);
    int sz[2] = { height, width };
    int sp[1] = { spitch };
    int dp[1] = { dpitch };
    prem_bind(b, src, 2, sz, sp, dp);
}

void swapnd_buffer(int id, uint64_t *src, size_t dim, const int size[],
                   const int spitch[], const int dpitch[]) {
    prem_buf_t *b = &prem_bufs[id];
    prem_writeback(b);
    prem_bind(b, src, dim, size, spitch, dpitch);
}

void deallocate_buffer(int id) {
    prem_buf_t *b = &prem_bufs[id];
    prem_writeback(b);
    b->bound = NULL;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_contains_runtime_and_main() {
        let program = prem_kernels::CnnConfig::small().build();
        let h = host_harness_c(8 * 1024);
        assert!(h.contains("swapnd_buffer"));
        assert!(h.contains("__spm_part1[4096]"));
        let m = host_main_c(&program);
        assert!(m.contains("cnn_prem();"));
        assert!(m.contains("pattern(0,"));
    }
}
