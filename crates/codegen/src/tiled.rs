//! Emission of the *tiled-only* intermediate form — the Listing 3.2 stage of
//! the compilation flow, before PREM API insertion: per-thread tiled loops
//! with the `threadID()`-derived group bounds, plus the original element
//! loops and statements (main-memory accesses, no buffers).

use crate::cexpr::{idx_to_c, stmt_to_c};
use crate::original::emit_nodes;
use crate::prem::{EmitComponent, EmitError};
use prem_core::Platform;
use prem_ir::{IdxExpr, Node, Program};

/// Emits the tiled (but not yet PREM-ized) program, Listing 3.2 style.
///
/// # Errors
///
/// Returns [`EmitError`] if a component's innermost loop is missing from the
/// program.
pub fn emit_tiled_c(
    program: &Program,
    components: &[EmitComponent],
    _platform: &Platform,
) -> Result<String, EmitError> {
    let mut out = String::new();
    out.push_str("#include <stdint.h>\n#include <float.h>\n\n");
    out.push_str("#define MAX(a, b) ((a) > (b) ? (a) : (b))\n");
    out.push_str("#define MIN(a, b) ((a) < (b) ? (a) : (b))\n");
    out.push_str("extern int threadID(void);\n\n");
    for a in &program.arrays {
        out.push_str(&format!("{a};\n"));
    }
    out.push_str(&format!("\nvoid {}_tiled(void) {{\n", program.name));
    emit_nodes_tiled(program, &program.body, components, 1, &mut out)?;
    out.push_str("}\n");
    Ok(out)
}

fn emit_nodes_tiled(
    program: &Program,
    nodes: &[Node],
    components: &[EmitComponent],
    indent: usize,
    out: &mut String,
) -> Result<(), EmitError> {
    let pad = "    ".repeat(indent);
    for n in nodes {
        match n {
            Node::Loop(l) => {
                if let Some(ec) = components
                    .iter()
                    .find(|c| c.component.levels[0].loop_id == l.id)
                {
                    emit_tiled_component(program, ec, indent, out)?;
                    continue;
                }
                out.push_str(&format!(
                    "{pad}for (int {v} = {b}; {v} <= {e}; {v} += {s}) {{\n",
                    v = l.name,
                    b = l.begin,
                    e = l.last(),
                    s = l.stride
                ));
                emit_nodes_tiled(program, &l.body, components, indent + 1, out)?;
                out.push_str(&format!("{pad}}}\n"));
            }
            Node::If(i) => {
                out.push_str(&format!(
                    "{pad}if ({}) {{\n",
                    crate::cexpr::cond_to_c(program, &i.cond)
                ));
                emit_nodes_tiled(program, &i.body, components, indent + 1, out)?;
                out.push_str(&format!("{pad}}}\n"));
            }
            Node::Stmt(s) => {
                let identity = |_: usize, _: usize, e: &IdxExpr| idx_to_c(program, e);
                out.push_str(&format!("{pad}{}\n", stmt_to_c(program, s, &identity)));
            }
        }
    }
    Ok(())
}

fn emit_tiled_component(
    program: &Program,
    ec: &EmitComponent,
    indent: usize,
    out: &mut String,
) -> Result<(), EmitError> {
    let comp = &ec.component;
    let sol = &ec.solution;
    let pad = "    ".repeat(indent);
    let names: Vec<&str> = comp.levels.iter().map(|l| l.name.as_str()).collect();
    out.push_str(&format!(
        "{pad}/* tiled component ({}) — {} */\n",
        names.join(", "),
        sol
    ));

    let m = sol.m(comp);
    let z = sol.z(comp);
    let mut inner_pad = pad.clone();
    for (j, lv) in comp.levels.iter().enumerate() {
        let prod_from_j: i64 = sol.r[j..].iter().product();
        let prod_after_j: i64 = sol.r[j + 1..].iter().product();
        out.push_str(&format!(
            "{inner_pad}for (int {n}_t = ((threadID() % {prod_from_j}) / {prod_after_j})*{zj}; {n}_t < MIN({mj}, ((threadID() % {prod_from_j}) / {prod_after_j} + 1)*{zj}); {n}_t++) {{\n",
            n = lv.name,
            zj = z[j],
            mj = m[j]
        ));
        inner_pad.push_str("    ");
    }
    for (j, lv) in comp.levels.iter().enumerate() {
        let last = lv.begin + lv.stride * (lv.count - 1);
        out.push_str(&format!(
            "{inner_pad}for (int {n} = {b} + {s}*({n}_t*{k}); {n} <= MIN({last}, {b} + {s}*(({n}_t+1)*{k} - 1)); {n} += {s}) {{\n",
            n = lv.name,
            b = lv.begin,
            s = lv.stride,
            k = sol.k[j]
        ));
        inner_pad.push_str("    ");
    }

    let innermost = comp.levels.last().expect("non-empty component");
    let body = &program
        .find_loop(innermost.loop_id)
        .ok_or(EmitError::MissingLoop(innermost.loop_id))?
        .body;
    let identity = |_: usize, _: usize, e: &IdxExpr| idx_to_c(program, e);
    emit_nodes(
        program,
        body,
        indent + 2 * comp.levels.len(),
        &identity,
        out,
    );

    for _ in 0..2 * comp.levels.len() {
        inner_pad.truncate(inner_pad.len() - 4);
        out.push_str(&format!("{inner_pad}}}\n"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_core::{Component, LoopTree, Solution};

    #[test]
    fn tiled_lstm_matches_listing_3_2_structure() {
        let program = prem_kernels::LstmConfig {
            nt: 10,
            ns: 650,
            np: 700,
        }
        .build();
        let tree = LoopTree::build(&program).unwrap();
        let t = &tree.roots[0];
        let comp = Component::extract(
            &tree,
            &program,
            &[&t.children[0], &t.children[0].children[0]],
        );
        let ec = EmitComponent {
            component: comp,
            solution: Solution {
                k: vec![109, 350],
                r: vec![3, 1],
            },
        };
        let platform = Platform::default().with_cores(3);
        let code = emit_tiled_c(&program, std::slice::from_ref(&ec), &platform).unwrap();
        // Listing 3.2's structure: thread-derived tiled bounds and
        // MIN-clipped element loops.
        assert!(code.contains("s1_0_t"));
        assert!(code.contains("p_t"));
        assert!(code.contains("MIN(6,"));
        assert!(code.contains("MIN(649,"));
        assert!(code.contains("s1_0_t*109"));
        assert!(code.contains("p_t*350"));
        assert_eq!(code.matches('{').count(), code.matches('}').count());
    }
}
