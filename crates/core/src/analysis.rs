//! Tier 1 of the two-tier makespan cost engine: the structure-dependent
//! [`ComponentAnalysis`] precompute and the allocation-free
//! [`ComponentAnalysis::makespan_only`] fold.
//!
//! [`crate::segments::build_schedule`] materializes every `MemOp`, `Batch`
//! and per-segment cost vector — necessary for codegen and simulation, but
//! wasteful inside a search loop that only consumes one scalar makespan.
//! This module splits the work:
//!
//! * **Analysis (structure)** — everything that depends only on
//!   `(component, solution, cores, exec_model)`: the `SegmentToSwap` lists
//!   per array with the line structure of each transferred range, the
//!   per-segment execution times, bounding boxes and SPM requirement. No
//!   platform *timing* scalar (bus speed, API costs) is baked in, so one
//!   analysis serves every bus-speed sweep point.
//! * **Fold (scalars)** — [`ComponentAnalysis::makespan_only`] replays the
//!   batch-placement rules of `build_schedule` and the round-robin
//!   recurrence of [`crate::schedule::evaluate`] over scratch buffers,
//!   producing a makespan that is **bitwise identical** to the materializing
//!   tier (the float additions happen in the same order on the same
//!   values).
//!
//! [`AnalysisCache`] memoizes analyses across optimizer runs so `fig6_1`
//! style sweeps that vary only platform scalars reuse the expensive tile
//! enumeration.

use crate::component::{BufferAttr, Component};
use crate::config::Platform;
use crate::segments::ComponentSchedule;
use crate::tiling::{Infeasible, Solution, TilePlan};
use crate::timing::{transfer_time_from_lines, ExecModel, TransferShape};
use prem_polyhedral::Interval;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One entry of an array's `SegmentToSwap` list: the segment (1-based) where
/// a new canonical range binds, plus the line structure of the transfer —
/// everything the fold needs to price the swap on any platform.
#[derive(Debug, Clone, PartialEq)]
pub struct SwapEntry {
    /// Segment index (1-based) whose tile first binds this range.
    pub seg: usize,
    /// `DataLineNum` of the transferred range.
    pub lines: i64,
    /// `DataLineSize` of the transferred range (elements per line).
    pub line_elems: i64,
}

/// Per-array metadata the fold needs without re-touching the component.
#[derive(Debug, Clone, PartialEq)]
struct ArrayMeta {
    ndims: usize,
    elem_bytes: i64,
    loads: bool,
    unloads: bool,
}

/// Structure-dependent precompute for one core.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreAnalysis {
    /// Number of execution segments on this core.
    pub nseg: usize,
    /// Execution time per segment in ns (tiled code only, no API).
    pub exec_ns: Vec<f64>,
    /// `SegmentToSwap` list per array.
    pub swap_lists: Vec<Vec<SwapEntry>>,
    /// Canonical ranges per array per swap entry; retained only when the
    /// analysis was built for materialization (`retain_ranges`).
    pub(crate) ranges: Option<Vec<Vec<Vec<Interval>>>>,
}

/// Everything about a `(component, solution)` pair that does not depend on
/// platform timing scalars. Build once, fold on every sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentAnalysis {
    /// The analyzed solution.
    pub solution: Solution,
    /// Per-core analyses (length = core count used to build the plan).
    pub cores: Vec<CoreAnalysis>,
    /// Bounding box per array (§5.3.1), sizing the SPM buffers.
    pub bounding_boxes: Vec<Vec<i64>>,
    /// Bytes of SPM needed (both double-buffer partitions).
    pub spm_bytes_needed: i64,
    /// Total bytes transferred by all cores.
    pub total_bytes: i64,
    /// Total number of DMA transfers.
    pub total_ops: usize,
    arrays: Vec<ArrayMeta>,
}

/// Result of the fast makespan fold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FastEval {
    /// Makespan of one component execution in ns.
    pub makespan_ns: f64,
    /// Longest single phase in ns (see
    /// [`crate::schedule::ScheduleResult::max_phase_ns`]).
    pub max_phase_ns: f64,
}

/// Reusable scratch buffers for [`ComponentAnalysis::makespan_only`]; one
/// per search thread, reused across every candidate evaluation.
#[derive(Debug, Default)]
pub struct MakespanScratch {
    batch_time: Vec<Vec<f64>>,
    batch_ops: Vec<Vec<u32>>,
    api: Vec<Vec<f64>>,
    init: Vec<f64>,
    prev: Vec<f64>,
    prev2: Vec<f64>,
    mem_fin: Vec<f64>,
}

impl ComponentAnalysis {
    /// Builds the analysis: tile plan, persistence/overlap checks, swap
    /// lists, per-segment execution times and the SPM requirement — the
    /// exact scan [`crate::segments::build_schedule`] performs, minus any
    /// platform-priced materialization. With `retain_ranges` the canonical
    /// ranges are kept so [`crate::segments::materialize_schedule`] can
    /// rebuild the full [`ComponentSchedule`]; without it the analysis is
    /// compact enough to cache.
    ///
    /// # Errors
    ///
    /// Returns [`Infeasible`] for thread-limit, overlap or persistence
    /// violations. The SPM capacity is *not* checked here (it depends on the
    /// platform); callers gate on [`ComponentAnalysis::spm_bytes_needed`].
    pub fn build(
        component: &Component,
        solution: &Solution,
        cores: usize,
        exec_model: &ExecModel,
        retain_ranges: bool,
    ) -> Result<ComponentAnalysis, Infeasible> {
        let plan = TilePlan::build(component, solution, cores)?;
        crate::segments::check_persistence(component, &plan)?;

        let narr = component.arrays.len();
        let mut bounding_boxes: Vec<Vec<i64>> = component
            .arrays
            .iter()
            .map(|a| vec![0; a.dims.len()])
            .collect();
        let rw_deps: Vec<bool> = component
            .arrays
            .iter()
            .map(|a| crate::segments::array_has_rw_deps(component, a.array))
            .collect();
        let arrays: Vec<ArrayMeta> = component
            .arrays
            .iter()
            .map(|a| ArrayMeta {
                ndims: a.dims.len(),
                elem_bytes: a.elem_bytes,
                loads: matches!(a.attr, BufferAttr::Ro | BufferAttr::Rw),
                unloads: matches!(a.attr, BufferAttr::Wo | BufferAttr::Rw),
            })
            .collect();

        let mut out_cores: Vec<CoreAnalysis> = Vec::with_capacity(cores);
        let mut total_bytes = 0i64;
        let mut total_ops = 0usize;

        // Scratch buffers reused across segments.
        let mut ranges: Vec<Interval> = Vec::new();
        let mut scratch_range: Vec<Interval> = Vec::new();
        let mut extents: Vec<i64> = Vec::new();

        for core in 0..cores {
            let nseg = plan.core_nseg(core);
            let mut ca = CoreAnalysis {
                nseg,
                exec_ns: Vec::with_capacity(nseg),
                swap_lists: vec![Vec::new(); narr],
                ranges: if retain_ranges {
                    Some(vec![Vec::new(); narr])
                } else {
                    None
                },
            };
            if nseg == 0 {
                out_cores.push(ca);
                continue;
            }

            // Last bound range per array — change detection without
            // retaining the full range history.
            let mut last: Vec<Option<Vec<Interval>>> = vec![None; narr];
            let mut overlap_error: Option<Infeasible> = None;
            let mut s0 = 0usize;
            plan.for_each_core_tile(core, |tile| {
                if overlap_error.is_some() {
                    return;
                }
                plan.tile_ranges_into(tile, &mut ranges);
                for (ai, arr) in component.arrays.iter().enumerate() {
                    scratch_range.clear();
                    for dim in &arr.contribs {
                        let mut hull = Interval::empty();
                        for c in dim {
                            hull = hull.hull(&c.bounds(&ranges));
                        }
                        scratch_range.push(hull);
                    }
                    let r = &scratch_range;
                    if r.iter().any(Interval::is_empty) {
                        // Every access is guard-excluded from this tile: the
                        // segment does not touch the array, so no swap
                        // happens and the previously bound range persists.
                        continue;
                    }
                    for (bb, iv) in bounding_boxes[ai].iter_mut().zip(r) {
                        *bb = (*bb).max(iv.len() as i64);
                    }
                    let changed = match &last[ai] {
                        Some(prev) if prev == r => false,
                        Some(prev) => {
                            // Range changed: §5.3.1 overlap rule for arrays
                            // with RAW/WAW dependences.
                            if rw_deps[ai] && prem_polyhedral::ranges_overlap(prev, r) {
                                overlap_error = Some(Infeasible::RangeOverlap {
                                    array: arr.name.clone(),
                                });
                                return;
                            }
                            true
                        }
                        None => true,
                    };
                    if changed {
                        let meta = &arrays[ai];
                        let shape = TransferShape {
                            range: r.iter().map(|iv| iv.len() as i64).collect(),
                            array: arr.dims.clone(),
                            elem_bytes: arr.elem_bytes,
                        };
                        let bytes = shape.bytes();
                        if meta.loads {
                            total_bytes += bytes;
                            total_ops += 1;
                        }
                        if meta.unloads {
                            total_bytes += bytes;
                            total_ops += 1;
                        }
                        ca.swap_lists[ai].push(SwapEntry {
                            seg: s0 + 1,
                            lines: shape.data_line_num(),
                            line_elems: shape.data_line_size(),
                        });
                        if let Some(rr) = &mut ca.ranges {
                            rr[ai].push(r.clone());
                        }
                        match &mut last[ai] {
                            Some(prev) => {
                                prev.clear();
                                prev.extend_from_slice(r);
                            }
                            None => last[ai] = Some(r.clone()),
                        }
                    }
                }
                // Execution time from actual (clipped) extents.
                extents.clear();
                extents.extend(ranges.iter().map(|r| r.len() as i64));
                ca.exec_ns.push(exec_model.tile_time_ns(&extents));
                s0 += 1;
            });
            if let Some(e) = overlap_error {
                return Err(e);
            }
            out_cores.push(ca);
        }

        let mut spm_bytes_needed = 0i64;
        for (arr, bb) in component.arrays.iter().zip(&bounding_boxes) {
            spm_bytes_needed += 2 * arr.elem_bytes * bb.iter().product::<i64>();
        }

        Ok(ComponentAnalysis {
            solution: solution.clone(),
            cores: out_cores,
            bounding_boxes,
            spm_bytes_needed,
            total_bytes,
            total_ops,
            arrays,
        })
    }

    /// The fast tier: folds the swap lists and execution times into the
    /// round-robin streaming recurrence without materializing a single
    /// `MemOp`. The returned makespan and `max_phase_ns` are bitwise
    /// identical to
    /// `evaluate(&build_schedule(component, solution, platform, model)?)`.
    ///
    /// # Errors
    ///
    /// Returns [`Infeasible::SpmOverflow`] when the bounding boxes exceed
    /// the platform's SPM, mirroring the materializing tier's final check.
    pub fn makespan_only(
        &self,
        platform: &Platform,
        scratch: &mut MakespanScratch,
    ) -> Result<FastEval, Infeasible> {
        if self.spm_bytes_needed > platform.spm_bytes {
            return Err(Infeasible::SpmOverflow {
                needed: self.spm_bytes_needed,
                capacity: platform.spm_bytes,
            });
        }
        let api = &platform.api;
        let narr = self.arrays.len();
        let ncores = self.cores.len();
        scratch.batch_time.resize_with(ncores, Vec::new);
        scratch.batch_ops.resize_with(ncores, Vec::new);
        scratch.api.resize_with(ncores, Vec::new);
        for v in [&mut scratch.init, &mut scratch.prev, &mut scratch.prev2] {
            v.clear();
            v.resize(ncores, 0.0);
        }
        scratch.mem_fin.clear();
        scratch.mem_fin.resize(ncores, 0.0);

        // Phase 1: replay build_schedule's batch placement and API charges,
        // accumulating only per-batch/segment totals. Addition order matches
        // the materializing tier exactly (per array, per swap entry, load
        // before unload), which keeps the f64 sums bitwise equal.
        let mut max_phase = 0.0f64;
        for (i, core) in self.cores.iter().enumerate() {
            let nseg = core.nseg;
            let bt = &mut scratch.batch_time[i];
            bt.clear();
            bt.resize(nseg + 2, 0.0);
            let bo = &mut scratch.batch_ops[i];
            bo.clear();
            bo.resize(nseg + 2, 0);
            let ap = &mut scratch.api[i];
            ap.clear();
            ap.resize(nseg, 0.0);
            if nseg == 0 {
                continue; // init stays 0, like the materializing tier
            }
            let mut init = 0.0f64;
            for (ai, list) in core.swap_lists.iter().enumerate() {
                let meta = &self.arrays[ai];
                for (x, e) in list.iter().enumerate() {
                    if meta.loads {
                        let batch = if x == 0 { 1 } else { list[x - 1].seg + 1 };
                        let cost = api.swap_cost(meta.ndims);
                        if batch <= 2 {
                            init += cost;
                        } else {
                            ap[batch - 3] += cost;
                        }
                        bt[batch] += transfer_time_from_lines(
                            e.lines,
                            e.line_elems,
                            meta.elem_bytes,
                            platform,
                        ) + api.dma_int_handler;
                        bo[batch] += 1;
                    }
                    if meta.unloads {
                        let batch = match list.get(x + 1) {
                            Some(next) => next.seg + 1,
                            None => nseg + 1,
                        };
                        if !meta.loads && batch <= nseg {
                            let cost = api.swap_cost(meta.ndims);
                            if batch <= 2 {
                                init += cost;
                            } else {
                                ap[batch - 3] += cost;
                            }
                        }
                        bt[batch] += transfer_time_from_lines(
                            e.lines,
                            e.line_elems,
                            meta.elem_bytes,
                            platform,
                        ) + api.dma_int_handler;
                        bo[batch] += 1;
                    }
                }
            }
            init += 2.0 * narr as f64 * api.allocate_buffer + api.dispatch + api.end_segment;
            for s in ap.iter_mut() {
                *s += api.end_segment;
            }
            ap[nseg - 1] += 2.0 * narr as f64 * api.deallocate_buffer;
            scratch.init[i] = init;

            max_phase = max_phase.max(init);
            for (e, a) in core.exec_ns.iter().zip(ap.iter()) {
                max_phase = max_phase.max(e + a);
            }
            for b in bt.iter() {
                max_phase = max_phase.max(*b);
            }
        }

        // Phase 2: the evaluate() recurrence with rolling per-core state.
        // prev = exec_fin[i][j-1], prev2 = exec_fin[i][j-2] at the top of
        // level j; prev stops advancing once the core runs out of segments,
        // which leaves it at exec_fin[i][nseg] for the final-unload gate.
        let max_nseg = self.cores.iter().map(|c| c.nseg).max().unwrap_or(0);
        let mut dma_free = 0.0f64;
        let mut makespan = 0.0f64;
        for i in 0..ncores {
            scratch.prev[i] = scratch.init[i];
            scratch.prev2[i] = scratch.init[i];
        }
        for j in 1..=max_nseg + 1 {
            for m in scratch.mem_fin.iter_mut() {
                *m = 0.0;
            }
            for i in 0..ncores {
                let nseg = self.cores[i].nseg;
                if j > nseg + 1 || scratch.batch_ops[i][j] == 0 {
                    continue;
                }
                let gate = if j == nseg + 1 {
                    scratch.prev[i]
                } else {
                    scratch.prev2[i]
                };
                let start = dma_free.max(gate);
                let fin = start + scratch.batch_time[i][j];
                dma_free = fin;
                scratch.mem_fin[i] = fin;
                makespan = makespan.max(fin);
            }
            for (i, core) in self.cores.iter().enumerate() {
                if j > core.nseg {
                    continue;
                }
                let start = scratch.prev[i].max(scratch.mem_fin[i]);
                let fin = start + core.exec_ns[j - 1] + scratch.api[i][j - 1];
                scratch.prev2[i] = scratch.prev[i];
                scratch.prev[i] = fin;
                makespan = makespan.max(fin);
            }
        }

        Ok(FastEval {
            makespan_ns: makespan,
            max_phase_ns: max_phase,
        })
    }

    /// Materializes the full [`ComponentSchedule`] from a retained analysis;
    /// see [`crate::segments::materialize_schedule`].
    ///
    /// # Errors
    ///
    /// Returns [`Infeasible::SpmOverflow`] when the SPM requirement exceeds
    /// the platform's capacity.
    ///
    /// # Panics
    ///
    /// Panics if the analysis was built without `retain_ranges`.
    pub fn materialize(
        &self,
        component: &Component,
        platform: &Platform,
    ) -> Result<ComponentSchedule, Infeasible> {
        crate::segments::materialize_schedule(self, component, platform)
    }

    /// Approximate cache weight: number of stored swap entries and execution
    /// times (each a few machine words).
    fn weight(&self) -> usize {
        self.cores
            .iter()
            .map(|c| c.exec_ns.len() + c.swap_lists.iter().map(Vec::len).sum::<usize>())
            .sum::<usize>()
            .max(1)
    }
}

/// One-shot fast-tier makespan of a solution: `+∞` when infeasible, else
/// bitwise equal to the materializing tier's
/// `evaluate(&build_schedule(...)).makespan_ns`. Allocates fresh scratch —
/// search loops should use
/// [`crate::optimizer::MakespanEvaluator`] instead, which reuses buffers
/// and memoizes.
pub fn fast_makespan(
    component: &Component,
    solution: &Solution,
    platform: &Platform,
    exec_model: &ExecModel,
) -> f64 {
    let spm_estimate = crate::tiling::spm_bytes_for(component, &solution.k);
    if spm_estimate > platform.spm_bytes {
        return f64::INFINITY;
    }
    let Ok(analysis) =
        ComponentAnalysis::build(component, solution, platform.cores, exec_model, false)
    else {
        return f64::INFINITY;
    };
    match analysis.makespan_only(platform, &mut MakespanScratch::default()) {
        Ok(fast) => fast.makespan_ns,
        Err(_) => f64::INFINITY,
    }
}

/// Cache key: the component's loop structure, the execution model and the
/// search coordinates. Platform timing scalars are deliberately absent —
/// that is the whole point of the cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct AnalysisKey {
    levels: Vec<(usize, i64)>,
    model_bits: Vec<u64>,
    cores: usize,
    solution: Solution,
}

fn analysis_key(
    component: &Component,
    exec_model: &ExecModel,
    cores: usize,
    solution: &Solution,
) -> AnalysisKey {
    AnalysisKey {
        levels: component
            .levels
            .iter()
            .map(|l| (l.loop_id, l.count))
            .collect(),
        model_bits: exec_model
            .o
            .iter()
            .map(|v| v.to_bits())
            .chain([exec_model.w.to_bits()])
            .collect(),
        cores,
        solution: solution.clone(),
    }
}

type CacheEntry = Result<Arc<ComponentAnalysis>, Infeasible>;

const CACHE_SHARDS: usize = 16;
/// Analyses heavier than this (in [`ComponentAnalysis::weight`] units) are
/// not cached — a `K = 1` solution of a large kernel can carry 100k+
/// segments and would evict everything useful.
const MAX_ENTRY_WEIGHT: usize = 1 << 16;
/// Total cache budget in weight units (~a few hundred MB worst case).
const MAX_TOTAL_WEIGHT: usize = 1 << 22;

/// Shared, sharded memo of [`ComponentAnalysis`] results (including
/// infeasibility verdicts), keyed by structure only. One cache serves every
/// optimizer run of a sweep: points that differ only in bus speed or API
/// costs hit for every candidate the previous points explored.
pub struct AnalysisCache {
    shards: Vec<Mutex<HashMap<AnalysisKey, CacheEntry>>>,
    weight: AtomicUsize,
}

impl Default for AnalysisCache {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for AnalysisCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisCache")
            .field("entries", &self.len())
            .finish()
    }
}

impl AnalysisCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        AnalysisCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            weight: AtomicUsize::new(0),
        }
    }

    /// Number of cached analyses across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the analysis (or infeasibility verdict) for the key, building
    /// it on a miss. The second element is `true` when the result came from
    /// the cache. Builds happen outside the shard lock; a racing duplicate
    /// build is accepted (last insert wins, both values are identical).
    pub fn get_or_build(
        &self,
        component: &Component,
        solution: &Solution,
        cores: usize,
        exec_model: &ExecModel,
    ) -> (CacheEntry, bool) {
        let key = analysis_key(component, exec_model, cores, solution);
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let shard = &self.shards[(hasher.finish() as usize) % CACHE_SHARDS];
        if let Some(entry) = shard.lock().unwrap().get(&key) {
            return (entry.clone(), true);
        }
        let built: CacheEntry =
            ComponentAnalysis::build(component, solution, cores, exec_model, false).map(Arc::new);
        let weight = built.as_ref().map(|a| a.weight()).unwrap_or(1);
        if weight <= MAX_ENTRY_WEIGHT {
            let total = self.weight.fetch_add(weight, Ordering::Relaxed) + weight;
            if total <= MAX_TOTAL_WEIGHT {
                shard.lock().unwrap().insert(key, built.clone());
            } else {
                self.weight.fetch_sub(weight, Ordering::Relaxed);
            }
        }
        (built, false)
    }
}
