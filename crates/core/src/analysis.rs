//! Tier 1 of the two-tier makespan cost engine: the structure-dependent
//! [`ComponentAnalysis`] precompute and the allocation-free
//! [`ComponentAnalysis::makespan_only`] fold.
//!
//! [`crate::segments::build_schedule`] materializes every `MemOp`, `Batch`
//! and per-segment cost vector — necessary for codegen and simulation, but
//! wasteful inside a search loop that only consumes one scalar makespan.
//! This module splits the work:
//!
//! * **Analysis (structure)** — everything that depends only on
//!   `(component, solution, cores, exec_model)`: the `SegmentToSwap` lists
//!   per array with the line structure of each transferred range, the
//!   per-segment execution times, bounding boxes and SPM requirement. No
//!   platform *timing* scalar (bus speed, API costs) is baked in, so one
//!   analysis serves every bus-speed sweep point.
//! * **Fold (scalars)** — [`ComponentAnalysis::makespan_only`] replays the
//!   batch-placement rules of `build_schedule` and the round-robin
//!   recurrence of [`crate::schedule::evaluate`] over scratch buffers,
//!   producing a makespan that is **bitwise identical** to the materializing
//!   tier (the float additions happen in the same order on the same
//!   values).
//!
//! [`AnalysisCache`] memoizes analyses across optimizer runs so `fig6_1`
//! style sweeps that vary only platform scalars reuse the expensive tile
//! enumeration, and [`CoordinateDelta`] rebuilds an analysis incrementally
//! when only a single tile coordinate `K_j` moves — the common case inside
//! the optimizer's coordinate-descent inner loop (thesis §5.3.1: canonical
//! ranges factor per level, so the per-level structure of every frozen
//! level can be precomputed once per scan).

use crate::component::{BufferAttr, Component, DimContrib};
use crate::config::Platform;
use crate::segments::ComponentSchedule;
use crate::tiling::{Infeasible, Solution, TilePlan, SEGMENT_CAP};
use crate::timing::{transfer_time_from_lines, ExecModel};
use prem_polyhedral::{div_ceil, Interval, ReduceOp};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One entry of an array's `SegmentToSwap` list: the segment (1-based) where
/// a new canonical range binds, plus the line structure of the transfer —
/// everything the fold needs to price the swap on any platform.
#[derive(Debug, Clone, PartialEq)]
pub struct SwapEntry {
    /// Segment index (1-based) whose tile first binds this range.
    pub seg: usize,
    /// `DataLineNum` of the transferred range.
    pub lines: i64,
    /// `DataLineSize` of the transferred range (elements per line).
    pub line_elems: i64,
}

/// Per-array metadata the fold needs without re-touching the component.
#[derive(Debug, Clone, PartialEq)]
struct ArrayMeta {
    ndims: usize,
    elem_bytes: i64,
    loads: bool,
    unloads: bool,
}

/// Structure-dependent precompute for one core.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreAnalysis {
    /// Number of execution segments on this core.
    pub nseg: usize,
    /// Execution time per segment in ns (tiled code only, no API).
    pub exec_ns: Vec<f64>,
    /// `SegmentToSwap` list per array.
    pub swap_lists: Vec<Vec<SwapEntry>>,
    /// Canonical ranges per array per swap entry; retained only when the
    /// analysis was built for materialization (`retain_ranges`).
    pub(crate) ranges: Option<Vec<Vec<Vec<Interval>>>>,
}

/// Combine-phase structure for one privatized reduction accumulator: the DMA
/// line shape of the accumulator's full canonical region (K-independent —
/// partials cover the whole accumulator regardless of tiling) plus the time
/// to merge one partner partial element-wise.
#[derive(Debug, Clone, PartialEq)]
pub struct CombineXfer {
    /// `DataLineNum` of the accumulator region.
    pub lines: i64,
    /// `DataLineSize` of the accumulator region (elements per line).
    pub line_elems: i64,
    /// Element size in bytes.
    pub elem_bytes: i64,
    /// Element-wise merge time per round in ns (`elements × w`).
    pub exec_ns: f64,
}

/// Everything about a `(component, solution)` pair that does not depend on
/// platform timing scalars. Build once, fold on every sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentAnalysis {
    /// The analyzed solution.
    pub solution: Solution,
    /// Per-core analyses (length = core count used to build the plan).
    pub cores: Vec<CoreAnalysis>,
    /// Bounding box per array (§5.3.1), sizing the SPM buffers.
    pub bounding_boxes: Vec<Vec<i64>>,
    /// Bytes of SPM needed (both double-buffer partitions, plus a third
    /// partial-merge buffer for privatized accumulators).
    pub spm_bytes_needed: i64,
    /// Total bytes transferred by all cores.
    pub total_bytes: i64,
    /// Total number of DMA transfers.
    pub total_ops: usize,
    /// Sequential merge rounds of the explicit combine phase
    /// (`Π_j R_j − 1` over the reduction-parallel levels); `0` when no
    /// accumulator is privatized or a single group runs the reduction, in
    /// which case the combine phase costs exactly nothing and the analysis
    /// is bitwise identical to the reduction-oblivious one.
    pub combine_rounds: usize,
    /// Combine transfer/merge structure, one entry per privatized
    /// accumulator.
    pub combine: Vec<CombineXfer>,
    arrays: Vec<ArrayMeta>,
}

/// Computes the combine-phase structure of a solution: the number of
/// sequential merge rounds and one transfer shape per privatized
/// accumulator over the accumulator's *full* canonical region (component
/// counters at their whole ranges — tile sizes cancel out, only the group
/// counts `R_j` matter). Empty when nothing is privatized.
fn combine_structure(
    component: &Component,
    solution: &Solution,
    exec_model: &ExecModel,
) -> (usize, Vec<CombineXfer>) {
    if !component.arrays.iter().any(|a| a.privatized.is_some()) {
        return (0, Vec::new());
    }
    let red_r: i64 = component
        .levels
        .iter()
        .zip(&solution.r)
        .filter(|(lv, _)| lv.reduction_parallel)
        .map(|(_, &r)| r)
        .product();
    if red_r <= 1 {
        return (0, Vec::new());
    }
    let full: Vec<Interval> = component
        .levels
        .iter()
        .map(|lv| Interval::new(0, lv.count - 1))
        .collect();
    let xfers = component
        .arrays
        .iter()
        .filter(|a| a.privatized.is_some())
        .map(|a| {
            let shape = crate::timing::TransferShape {
                range: a
                    .canonical_range(&full)
                    .iter()
                    .map(|iv| iv.len() as i64)
                    .collect(),
                array: a.dims.clone(),
                elem_bytes: a.elem_bytes,
            };
            CombineXfer {
                lines: shape.data_line_num(),
                line_elems: shape.data_line_size(),
                elem_bytes: a.elem_bytes,
                exec_ns: shape.volume() as f64 * exec_model.w,
            }
        })
        .collect();
    ((red_r - 1) as usize, xfers)
}

/// Prices the combine phase on a platform: per round, each privatized
/// accumulator's partner partial is DMA-transferred into the merge buffer
/// and folded element-wise; rounds run sequentially (the tree depth of a
/// pairwise merge is bounded by the linear chain this models). Returns
/// `(total_ns, longest_single_combine_phase_ns)` — exactly `(0.0, 0.0)`
/// when `rounds == 0`, keeping the reduction-oblivious path bitwise
/// identical. Shared by [`ComponentAnalysis::makespan_only`] and
/// [`crate::segments::materialize_schedule`] so both tiers produce the
/// same f64 bits.
pub(crate) fn combine_time(
    rounds: usize,
    xfers: &[CombineXfer],
    platform: &Platform,
) -> (f64, f64) {
    if rounds == 0 || xfers.is_empty() {
        return (0.0, 0.0);
    }
    let mut per_round = 0.0f64;
    let mut max_phase = 0.0f64;
    for x in xfers {
        let mem = transfer_time_from_lines(x.lines, x.line_elems, x.elem_bytes, platform)
            + platform.api.dma_int_handler;
        per_round += mem + x.exec_ns;
        max_phase = max_phase.max(mem).max(x.exec_ns);
    }
    (rounds as f64 * per_round, max_phase)
}

/// Result of the fast makespan fold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FastEval {
    /// Makespan of one component execution in ns.
    pub makespan_ns: f64,
    /// Longest single phase in ns (see
    /// [`crate::schedule::ScheduleResult::max_phase_ns`]).
    pub max_phase_ns: f64,
}

/// Reusable scratch buffers for [`ComponentAnalysis::makespan_only`]; one
/// per search thread, reused across every candidate evaluation.
#[derive(Debug, Default)]
pub struct MakespanScratch {
    batch_time: Vec<Vec<f64>>,
    batch_ops: Vec<Vec<u32>>,
    api: Vec<Vec<f64>>,
    init: Vec<f64>,
    prev: Vec<f64>,
    prev2: Vec<f64>,
    mem_fin: Vec<f64>,
}

impl ComponentAnalysis {
    /// Builds the analysis: tile plan, persistence/overlap checks, swap
    /// lists, per-segment execution times and the SPM requirement — the
    /// exact scan [`crate::segments::build_schedule`] performs, minus any
    /// platform-priced materialization. With `retain_ranges` the canonical
    /// ranges are kept so [`crate::segments::materialize_schedule`] can
    /// rebuild the full [`ComponentSchedule`]; without it the analysis is
    /// compact enough to cache.
    ///
    /// # Errors
    ///
    /// Returns [`Infeasible`] for thread-limit, overlap or persistence
    /// violations. The SPM capacity is *not* checked here (it depends on the
    /// platform); callers gate on [`ComponentAnalysis::spm_bytes_needed`].
    pub fn build(
        component: &Component,
        solution: &Solution,
        cores: usize,
        exec_model: &ExecModel,
        retain_ranges: bool,
    ) -> Result<ComponentAnalysis, Infeasible> {
        let plan = TilePlan::build(component, solution, cores)?;
        crate::segments::check_persistence(component, &plan)?;

        let narr = component.arrays.len();
        let mut bounding_boxes: Vec<Vec<i64>> = component
            .arrays
            .iter()
            .map(|a| vec![0; a.dims.len()])
            .collect();
        let rw_deps: Vec<bool> = component
            .arrays
            .iter()
            .map(|a| crate::segments::array_has_rw_deps(component, a.array))
            .collect();
        let arrays: Vec<ArrayMeta> = component
            .arrays
            .iter()
            .map(|a| ArrayMeta {
                ndims: a.dims.len(),
                elem_bytes: a.elem_bytes,
                loads: matches!(a.attr, BufferAttr::Ro | BufferAttr::Rw),
                unloads: matches!(a.attr, BufferAttr::Wo | BufferAttr::Rw),
            })
            .collect();

        let mut out_cores: Vec<CoreAnalysis> = Vec::with_capacity(cores);
        let mut total_bytes = 0i64;
        let mut total_ops = 0usize;

        // Scratch buffers reused across segments (and cores, for `last`).
        let mut ranges: Vec<Interval> = Vec::new();
        let mut scratch_range: Vec<Interval> = Vec::new();
        let mut extents: Vec<i64> = Vec::new();
        let mut last: Vec<LastRange> = vec![LastRange::default(); narr];

        for core in 0..cores {
            let nseg = plan.core_nseg(core);
            let mut ca = CoreAnalysis {
                nseg,
                exec_ns: Vec::with_capacity(nseg),
                swap_lists: vec![Vec::new(); narr],
                ranges: if retain_ranges {
                    Some(vec![Vec::new(); narr])
                } else {
                    None
                },
            };
            if nseg == 0 {
                out_cores.push(ca);
                continue;
            }

            // Last bound range per array — change detection without
            // retaining the full range history.
            for l in &mut last {
                l.bound = false;
            }
            let mut overlap_error: Option<Infeasible> = None;
            let mut s0 = 0usize;
            plan.for_each_core_tile(core, |tile| {
                if overlap_error.is_some() {
                    return;
                }
                plan.tile_ranges_into(tile, &mut ranges);
                for (ai, arr) in component.arrays.iter().enumerate() {
                    scratch_range.clear();
                    for dim in &arr.contribs {
                        let mut hull = Interval::empty();
                        for c in dim {
                            hull = hull.hull(&c.bounds(&ranges));
                        }
                        scratch_range.push(hull);
                    }
                    if let Err(e) = bind_tile_array(
                        arr,
                        &arrays[ai],
                        rw_deps[ai],
                        &scratch_range,
                        s0,
                        &mut ca,
                        ai,
                        &mut last[ai],
                        &mut bounding_boxes[ai],
                        &mut total_bytes,
                        &mut total_ops,
                    ) {
                        overlap_error = Some(e);
                        return;
                    }
                }
                // Execution time from actual (clipped) extents.
                extents.clear();
                extents.extend(ranges.iter().map(|r| r.len() as i64));
                ca.exec_ns.push(exec_model.tile_time_ns(&extents));
                s0 += 1;
            });
            if let Some(e) = overlap_error {
                return Err(e);
            }
            out_cores.push(ca);
        }

        let mut spm_bytes_needed = 0i64;
        for (arr, bb) in component.arrays.iter().zip(&bounding_boxes) {
            // Privatized accumulators keep a third buffer: the combine phase
            // DMAs a partner group's partial next to the live copy to merge.
            let bufs = if arr.privatized.is_some() { 3 } else { 2 };
            spm_bytes_needed += bufs * arr.elem_bytes * bb.iter().product::<i64>();
        }
        let (combine_rounds, combine) = combine_structure(component, solution, exec_model);

        Ok(ComponentAnalysis {
            solution: solution.clone(),
            cores: out_cores,
            bounding_boxes,
            spm_bytes_needed,
            total_bytes,
            total_ops,
            combine_rounds,
            combine,
            arrays,
        })
    }

    /// The fast tier: folds the swap lists and execution times into the
    /// round-robin streaming recurrence without materializing a single
    /// `MemOp`. The returned makespan and `max_phase_ns` are bitwise
    /// identical to
    /// `evaluate(&build_schedule(component, solution, platform, model)?)`.
    ///
    /// # Errors
    ///
    /// Returns [`Infeasible::SpmOverflow`] when the bounding boxes exceed
    /// the platform's SPM, mirroring the materializing tier's final check.
    pub fn makespan_only(
        &self,
        platform: &Platform,
        scratch: &mut MakespanScratch,
    ) -> Result<FastEval, Infeasible> {
        if self.spm_bytes_needed > platform.spm_bytes {
            return Err(Infeasible::SpmOverflow {
                needed: self.spm_bytes_needed,
                capacity: platform.spm_bytes,
            });
        }
        let api = &platform.api;
        let narr = self.arrays.len();
        let ncores = self.cores.len();
        scratch.batch_time.resize_with(ncores, Vec::new);
        scratch.batch_ops.resize_with(ncores, Vec::new);
        scratch.api.resize_with(ncores, Vec::new);
        for v in [&mut scratch.init, &mut scratch.prev, &mut scratch.prev2] {
            v.clear();
            v.resize(ncores, 0.0);
        }
        scratch.mem_fin.clear();
        scratch.mem_fin.resize(ncores, 0.0);

        // Phase 1: replay build_schedule's batch placement and API charges,
        // accumulating only per-batch/segment totals. Addition order matches
        // the materializing tier exactly (per array, per swap entry, load
        // before unload), which keeps the f64 sums bitwise equal.
        let mut max_phase = 0.0f64;
        for (i, core) in self.cores.iter().enumerate() {
            let nseg = core.nseg;
            let bt = &mut scratch.batch_time[i];
            bt.clear();
            bt.resize(nseg + 2, 0.0);
            let bo = &mut scratch.batch_ops[i];
            bo.clear();
            bo.resize(nseg + 2, 0);
            let ap = &mut scratch.api[i];
            ap.clear();
            ap.resize(nseg, 0.0);
            if nseg == 0 {
                continue; // init stays 0, like the materializing tier
            }
            let mut init = 0.0f64;
            for (ai, list) in core.swap_lists.iter().enumerate() {
                let meta = &self.arrays[ai];
                for (x, e) in list.iter().enumerate() {
                    if meta.loads {
                        let batch = if x == 0 { 1 } else { list[x - 1].seg + 1 };
                        let cost = api.swap_cost(meta.ndims);
                        if batch <= 2 {
                            init += cost;
                        } else {
                            ap[batch - 3] += cost;
                        }
                        bt[batch] += transfer_time_from_lines(
                            e.lines,
                            e.line_elems,
                            meta.elem_bytes,
                            platform,
                        ) + api.dma_int_handler;
                        bo[batch] += 1;
                    }
                    if meta.unloads {
                        let batch = match list.get(x + 1) {
                            Some(next) => next.seg + 1,
                            None => nseg + 1,
                        };
                        if !meta.loads && batch <= nseg {
                            let cost = api.swap_cost(meta.ndims);
                            if batch <= 2 {
                                init += cost;
                            } else {
                                ap[batch - 3] += cost;
                            }
                        }
                        bt[batch] += transfer_time_from_lines(
                            e.lines,
                            e.line_elems,
                            meta.elem_bytes,
                            platform,
                        ) + api.dma_int_handler;
                        bo[batch] += 1;
                    }
                }
            }
            init += 2.0 * narr as f64 * api.allocate_buffer + api.dispatch + api.end_segment;
            for s in ap.iter_mut() {
                *s += api.end_segment;
            }
            ap[nseg - 1] += 2.0 * narr as f64 * api.deallocate_buffer;
            scratch.init[i] = init;

            max_phase = max_phase.max(init);
            for (e, a) in core.exec_ns.iter().zip(ap.iter()) {
                max_phase = max_phase.max(e + a);
            }
            for b in bt.iter() {
                max_phase = max_phase.max(*b);
            }
        }

        // Phase 2: the evaluate() recurrence with rolling per-core state.
        // prev = exec_fin[i][j-1], prev2 = exec_fin[i][j-2] at the top of
        // level j; prev stops advancing once the core runs out of segments,
        // which leaves it at exec_fin[i][nseg] for the final-unload gate.
        let max_nseg = self.cores.iter().map(|c| c.nseg).max().unwrap_or(0);
        let mut dma_free = 0.0f64;
        let mut makespan = 0.0f64;
        for i in 0..ncores {
            scratch.prev[i] = scratch.init[i];
            scratch.prev2[i] = scratch.init[i];
        }
        for j in 1..=max_nseg + 1 {
            for m in scratch.mem_fin.iter_mut() {
                *m = 0.0;
            }
            for i in 0..ncores {
                let nseg = self.cores[i].nseg;
                if j > nseg + 1 || scratch.batch_ops[i][j] == 0 {
                    continue;
                }
                let gate = if j == nseg + 1 {
                    scratch.prev[i]
                } else {
                    scratch.prev2[i]
                };
                let start = dma_free.max(gate);
                let fin = start + scratch.batch_time[i][j];
                dma_free = fin;
                scratch.mem_fin[i] = fin;
                makespan = makespan.max(fin);
            }
            for (i, core) in self.cores.iter().enumerate() {
                if j > core.nseg {
                    continue;
                }
                let start = scratch.prev[i].max(scratch.mem_fin[i]);
                let fin = start + core.exec_ns[j - 1] + scratch.api[i][j - 1];
                scratch.prev2[i] = scratch.prev[i];
                scratch.prev[i] = fin;
                makespan = makespan.max(fin);
            }
        }

        // Explicit combine phase (reduction privatization): sequential merge
        // rounds appended after the streaming schedule drains. Guarded so the
        // reduction-oblivious path (`combine_rounds == 0`) stays bitwise
        // untouched.
        let (combine_ns, combine_phase) =
            combine_time(self.combine_rounds, &self.combine, platform);
        if combine_ns > 0.0 {
            makespan += combine_ns;
            max_phase = max_phase.max(combine_phase);
        }

        Ok(FastEval {
            makespan_ns: makespan,
            max_phase_ns: max_phase,
        })
    }

    /// Materializes the full [`ComponentSchedule`] from a retained analysis;
    /// see [`crate::segments::materialize_schedule`].
    ///
    /// # Errors
    ///
    /// Returns [`Infeasible::SpmOverflow`] when the SPM requirement exceeds
    /// the platform's capacity.
    ///
    /// # Panics
    ///
    /// Panics if the analysis was built without `retain_ranges`.
    pub fn materialize(
        &self,
        component: &Component,
        platform: &Platform,
    ) -> Result<ComponentSchedule, Infeasible> {
        crate::segments::materialize_schedule(self, component, platform)
    }

    /// Approximate cache weight: number of stored swap entries and execution
    /// times (each a few machine words).
    fn weight(&self) -> usize {
        self.cores
            .iter()
            .map(|c| c.exec_ns.len() + c.swap_lists.iter().map(Vec::len).sum::<usize>())
            .sum::<usize>()
            .max(1)
    }

    /// Structural equality with *bitwise* `f64` comparison on the execution
    /// times. `PartialEq` would treat `-0.0 == 0.0` and `NaN != NaN`; the
    /// differential suites need the stronger claim that the incremental
    /// rebuild produced the same bits the from-scratch build would.
    pub fn bitwise_eq(&self, other: &ComponentAnalysis) -> bool {
        self.solution == other.solution
            && self.bounding_boxes == other.bounding_boxes
            && self.spm_bytes_needed == other.spm_bytes_needed
            && self.total_bytes == other.total_bytes
            && self.total_ops == other.total_ops
            && self.combine_rounds == other.combine_rounds
            && self.combine.len() == other.combine.len()
            && self.combine.iter().zip(&other.combine).all(|(a, b)| {
                a.lines == b.lines
                    && a.line_elems == b.line_elems
                    && a.elem_bytes == b.elem_bytes
                    && a.exec_ns.to_bits() == b.exec_ns.to_bits()
            })
            && self.arrays == other.arrays
            && self.cores.len() == other.cores.len()
            && self.cores.iter().zip(&other.cores).all(|(a, b)| {
                a.nseg == b.nseg
                    && a.swap_lists == b.swap_lists
                    && a.ranges == b.ranges
                    && a.exec_ns.len() == b.exec_ns.len()
                    && a.exec_ns
                        .iter()
                        .zip(&b.exec_ns)
                        .all(|(x, y)| x.to_bits() == y.to_bits())
            })
    }
}

/// Column cap for [`makespan_only_batch`]'s strided scratch
/// (`cores × (max_nseg + 2) × lanes` cells); chunks past it fold lane by
/// lane through the scalar path instead of allocating hundreds of MB for a
/// degenerate tiny-tile chunk.
const BATCH_CELL_CAP: usize = 1 << 21;

/// Per-lane segment-count cutoff for the interleaved fold. Small-`nseg`
/// analyses are overhead-dominated in the scalar recurrence, and lane
/// interleaving amortizes that overhead; past this many segments both folds
/// stream memory-bound and the batch's padded columns plus the execution
/// column copy only add traffic, so such lanes take the scalar fold.
const BATCH_NSEG_CAP: usize = 128;

/// Reusable scratch for [`makespan_only_batch`]: the per-core batch/API
/// columns of up to [`SOA_LANES`] analyses, lane-minor
/// (`[(core · stride + j) · lanes + lane]`) so the phase-2 recurrence
/// reads each lane group as one contiguous stripe.
#[derive(Debug, Default)]
pub struct BatchScratch {
    bt: Vec<f64>,
    bo: Vec<u32>,
    ap: Vec<f64>,
    ex: Vec<f64>,
    init: Vec<f64>,
    prev: Vec<f64>,
    prev2: Vec<f64>,
    mem_fin: Vec<f64>,
    dma: Vec<f64>,
    makespan: Vec<f64>,
    max_phase: Vec<f64>,
    nseg: Vec<usize>,
    core_g: Vec<usize>,
    scalar: MakespanScratch,
}

/// Chunked fold: [`ComponentAnalysis::makespan_only`] for up to
/// [`SOA_LANES`] analyses per sweep. Phase 1 (batch placement replay) runs
/// per lane in the exact scalar order into lane-minor columns; phase 2
/// interleaves the streaming recurrence across lanes — per lane the
/// operation sequence is identical (extra `j` iterations past a lane's own
/// segment count touch no state), and feasibility is folded through
/// branchless selects instead of early-outs, so each returned [`FastEval`]
/// is bitwise identical to the scalar fold's. Analyses must share one
/// `(component, cores)` shape; oversized chunks fold lane by lane.
pub fn makespan_only_batch(
    analyses: &[&ComponentAnalysis],
    platform: &Platform,
    scratch: &mut BatchScratch,
) -> Vec<Result<FastEval, Infeasible>> {
    let mut results: Vec<Option<Result<FastEval, Infeasible>>> = vec![None; analyses.len()];
    let mut lanes: Vec<usize> = Vec::with_capacity(analyses.len());
    for (l, a) in analyses.iter().enumerate() {
        if a.spm_bytes_needed > platform.spm_bytes {
            results[l] = Some(Err(Infeasible::SpmOverflow {
                needed: a.spm_bytes_needed,
                capacity: platform.spm_bytes,
            }));
        } else {
            lanes.push(l);
        }
    }
    let finish = |results: Vec<Option<Result<FastEval, Infeasible>>>| {
        results
            .into_iter()
            .map(|r| r.expect("every lane resolved"))
            .collect()
    };
    // Partition the surviving lanes into runs of shape-compatible analyses
    // whose padded column height stays close to the lanes' own segment
    // counts. A scan's candidates span an order of magnitude in `nseg`
    // (`M_j ∝ 1/K_j`), and the interleaved recurrence runs every lane to the
    // run's max — padding a 1 000-segment lane against a 100 000-segment one
    // would do 100× its scalar work. Runs keep the inflation under 1.5×;
    // each lane's own operation sequence is unchanged by the grouping, so
    // the per-lane results stay bitwise identical regardless of the cuts.
    let nseg_of = |l: usize| analyses[l].cores.iter().map(|c| c.nseg).max().unwrap_or(0);
    let mut start = 0usize;
    while start < lanes.len() {
        let l0 = lanes[start];
        let ncores = analyses[l0].cores.len();
        let mut gmax = nseg_of(l0);
        if gmax > BATCH_NSEG_CAP {
            results[l0] = Some(analyses[l0].makespan_only(platform, &mut scratch.scalar));
            start += 1;
            continue;
        }
        let mut own = gmax + 2;
        let mut end = start + 1;
        while end < lanes.len() && end - start < SOA_LANES {
            let l = lanes[end];
            if analyses[l].cores.len() != ncores {
                break;
            }
            let n = nseg_of(l);
            if n > BATCH_NSEG_CAP {
                break;
            }
            let g2 = gmax.max(n);
            let padded = (g2 + 2) * (end - start + 1);
            if padded * 2 > (own + n + 2) * 3 || ncores.saturating_mul(padded) > BATCH_CELL_CAP {
                break;
            }
            gmax = g2;
            own += n + 2;
            end += 1;
        }
        let run = &lanes[start..end];
        start = end;
        if run.len() < 2
            || ncores.saturating_mul(gmax + 2).saturating_mul(run.len()) > BATCH_CELL_CAP
        {
            for &l in run {
                results[l] = Some(analyses[l].makespan_only(platform, &mut scratch.scalar));
            }
        } else {
            fold_run(analyses, run, ncores, gmax, platform, scratch, &mut results);
        }
    }
    finish(results)
}

/// One interleaved fold over a shape-compatible run of lanes; the column
/// layout and operation sequence per lane are exactly
/// [`ComponentAnalysis::makespan_only`]'s.
fn fold_run(
    analyses: &[&ComponentAnalysis],
    lanes: &[usize],
    ncores: usize,
    gmax: usize,
    platform: &Platform,
    scratch: &mut BatchScratch,
    results: &mut [Option<Result<FastEval, Infeasible>>],
) {
    let stride_j = gmax + 2;
    let ln = lanes.len();
    let api = &platform.api;
    scratch.bt.clear();
    scratch.bt.resize(ncores * stride_j * ln, 0.0);
    scratch.bo.clear();
    scratch.bo.resize(ncores * stride_j * ln, 0);
    scratch.ap.clear();
    scratch.ap.resize(ncores * gmax * ln, 0.0);
    scratch.ex.clear();
    scratch.ex.resize(ncores * gmax * ln, 0.0);
    scratch.init.clear();
    scratch.init.resize(ncores * ln, 0.0);
    scratch.nseg.clear();
    scratch.nseg.resize(ncores * ln, 0);
    scratch.core_g.clear();
    scratch.core_g.resize(ncores, 0);
    scratch.max_phase.clear();
    scratch.max_phase.resize(ln, 0.0);

    // Phase 1, per lane in scalar order (per array, per swap entry, load
    // before unload — the f64 sums stay bitwise equal to the scalar fold).
    for (li, &l) in lanes.iter().enumerate() {
        let a = analyses[l];
        let narr = a.arrays.len();
        let mut mp = 0.0f64;
        for (i, core) in a.cores.iter().enumerate() {
            let nseg = core.nseg;
            scratch.nseg[i * ln + li] = nseg;
            scratch.core_g[i] = scratch.core_g[i].max(nseg);
            if nseg == 0 {
                continue;
            }
            let mut init = 0.0f64;
            for (ai, list) in core.swap_lists.iter().enumerate() {
                let meta = &a.arrays[ai];
                for (x, e) in list.iter().enumerate() {
                    if meta.loads {
                        let batch = if x == 0 { 1 } else { list[x - 1].seg + 1 };
                        let cost = api.swap_cost(meta.ndims);
                        if batch <= 2 {
                            init += cost;
                        } else {
                            scratch.ap[(i * gmax + batch - 3) * ln + li] += cost;
                        }
                        scratch.bt[(i * stride_j + batch) * ln + li] += transfer_time_from_lines(
                            e.lines,
                            e.line_elems,
                            meta.elem_bytes,
                            platform,
                        ) + api.dma_int_handler;
                        scratch.bo[(i * stride_j + batch) * ln + li] += 1;
                    }
                    if meta.unloads {
                        let batch = match list.get(x + 1) {
                            Some(next) => next.seg + 1,
                            None => nseg + 1,
                        };
                        if !meta.loads && batch <= nseg {
                            let cost = api.swap_cost(meta.ndims);
                            if batch <= 2 {
                                init += cost;
                            } else {
                                scratch.ap[(i * gmax + batch - 3) * ln + li] += cost;
                            }
                        }
                        scratch.bt[(i * stride_j + batch) * ln + li] += transfer_time_from_lines(
                            e.lines,
                            e.line_elems,
                            meta.elem_bytes,
                            platform,
                        ) + api.dma_int_handler;
                        scratch.bo[(i * stride_j + batch) * ln + li] += 1;
                    }
                }
            }
            init += 2.0 * narr as f64 * api.allocate_buffer + api.dispatch + api.end_segment;
            for s in 0..nseg {
                scratch.ap[(i * gmax + s) * ln + li] += api.end_segment;
            }
            scratch.ap[(i * gmax + nseg - 1) * ln + li] +=
                2.0 * narr as f64 * api.deallocate_buffer;
            scratch.init[i * ln + li] = init;

            mp = mp.max(init);
            // Copies the lane's execution times into the lane-minor column
            // while they are already streaming through for the phase max —
            // phase 2 then reads lane stripes instead of gathering through
            // three indirections per element.
            for (s, e) in core.exec_ns.iter().enumerate() {
                scratch.ex[(i * gmax + s) * ln + li] = *e;
                mp = mp.max(e + scratch.ap[(i * gmax + s) * ln + li]);
            }
            for b in 0..=nseg + 1 {
                mp = mp.max(scratch.bt[(i * stride_j + b) * ln + li]);
            }
        }
        scratch.max_phase[li] = mp;
    }

    // Phase 2: the streaming recurrence, lanes interleaved. Per lane the
    // visit order over (j, core) matches the scalar fold; inactive lanes
    // keep their state through selects.
    scratch.prev.clear();
    scratch.prev.resize(ncores * ln, 0.0);
    scratch.prev2.clear();
    scratch.prev2.resize(ncores * ln, 0.0);
    scratch.mem_fin.clear();
    scratch.mem_fin.resize(ncores * ln, 0.0);
    scratch.dma.clear();
    scratch.dma.resize(ln, 0.0);
    scratch.makespan.clear();
    scratch.makespan.resize(ln, 0.0);
    for i in 0..ncores {
        for li in 0..ln {
            scratch.prev[i * ln + li] = scratch.init[i * ln + li];
            scratch.prev2[i * ln + li] = scratch.init[i * ln + li];
        }
    }
    for j in 1..=gmax + 1 {
        for i in 0..ncores {
            // Lanes past their own end (`j > nseg + 1`) are inactive by the
            // first conjunct, and lanes still in range read `bo` at row `j`
            // itself — so an all-zero row-`j` stripe proves every lane
            // inactive. DMA batches are sparse (only boundary segments swap),
            // which makes this 8-integer test skim most of the grid, exactly
            // like the scalar fold's `ops == 0` skip.
            if j > scratch.core_g[i] + 1 {
                continue;
            }
            let row = (i * stride_j + j) * ln;
            if scratch.bo[row..row + ln].iter().all(|&o| o == 0) {
                scratch.mem_fin[i * ln..(i + 1) * ln].fill(0.0);
                continue;
            }
            for li in 0..ln {
                let nseg = scratch.nseg[i * ln + li];
                let jj = j.min(nseg + 1);
                let ops = scratch.bo[(i * stride_j + jj) * ln + li];
                let active = j <= nseg + 1 && ops != 0;
                let gate = if j == nseg + 1 {
                    scratch.prev[i * ln + li]
                } else {
                    scratch.prev2[i * ln + li]
                };
                let start = scratch.dma[li].max(gate);
                let fin = start + scratch.bt[(i * stride_j + jj) * ln + li];
                scratch.dma[li] = if active { fin } else { scratch.dma[li] };
                scratch.mem_fin[i * ln + li] = if active { fin } else { 0.0 };
                scratch.makespan[li] = if active {
                    scratch.makespan[li].max(fin)
                } else {
                    scratch.makespan[li]
                };
            }
        }
        for i in 0..ncores {
            if j > scratch.core_g[i] {
                continue;
            }
            for li in 0..ln {
                let nseg = scratch.nseg[i * ln + li];
                let active = j <= nseg;
                let (e, apv) = if active {
                    (
                        scratch.ex[(i * gmax + j - 1) * ln + li],
                        scratch.ap[(i * gmax + j - 1) * ln + li],
                    )
                } else {
                    (0.0, 0.0)
                };
                let p = scratch.prev[i * ln + li];
                let start = p.max(scratch.mem_fin[i * ln + li]);
                let fin = start + e + apv;
                scratch.prev2[i * ln + li] = if active {
                    p
                } else {
                    scratch.prev2[i * ln + li]
                };
                scratch.prev[i * ln + li] = if active { fin } else { p };
                scratch.makespan[li] = if active {
                    scratch.makespan[li].max(fin)
                } else {
                    scratch.makespan[li]
                };
            }
        }
    }

    for (li, &l) in lanes.iter().enumerate() {
        let a = analyses[l];
        let (combine_ns, combine_phase) = combine_time(a.combine_rounds, &a.combine, platform);
        let mut makespan = scratch.makespan[li];
        let mut max_phase = scratch.max_phase[li];
        if combine_ns > 0.0 {
            makespan += combine_ns;
            max_phase = max_phase.max(combine_phase);
        }
        results[l] = Some(Ok(FastEval {
            makespan_ns: makespan,
            max_phase_ns: max_phase,
        }));
    }
}

/// Change-detection state for one (core, array): the most recently bound
/// canonical range. The buffer is reusable across cores and candidates —
/// `bound` distinguishes "nothing bound yet on this core" from whatever
/// stale contents the buffer holds.
#[derive(Debug, Clone, Default)]
struct LastRange {
    bound: bool,
    range: Vec<Interval>,
}

/// The per-(tile, array) binding step shared by [`ComponentAnalysis::build`]
/// and [`CoordinateDelta::rebuild`]/[`CoordinateDelta::rebuild_scan`]:
/// empty-range skip, bounding-box update, change detection with the §5.3.1
/// overlap rule, and the swap-entry / transfer-totals bookkeeping. Keeping
/// every scan on one code path is what makes the incremental rebuilds
/// bitwise-faithful by construction — only the canonical-range *computation*
/// differs between the callers.
#[allow(clippy::too_many_arguments)]
fn bind_tile_array(
    arr: &crate::component::ArrayUse,
    meta: &ArrayMeta,
    rw_dep: bool,
    r: &[Interval],
    s0: usize,
    ca: &mut CoreAnalysis,
    ai: usize,
    last: &mut LastRange,
    bb: &mut [i64],
    total_bytes: &mut i64,
    total_ops: &mut usize,
) -> Result<(), Infeasible> {
    if r.iter().any(Interval::is_empty) {
        // Every access is guard-excluded from this tile: the segment does
        // not touch the array, so no swap happens and the previously bound
        // range persists.
        return Ok(());
    }
    for (b, iv) in bb.iter_mut().zip(r) {
        *b = (*b).max(iv.len() as i64);
    }
    let changed = if last.bound {
        if last.range.as_slice() == r {
            false
        } else {
            // Range changed: §5.3.1 overlap rule for arrays with RAW/WAW
            // dependences.
            if rw_dep && prem_polyhedral::ranges_overlap(&last.range, r) {
                return Err(Infeasible::RangeOverlap {
                    array: arr.name.clone(),
                });
            }
            true
        }
    } else {
        true
    };
    if changed {
        // Allocation-free [`TransferShape`] arithmetic: `alpha`, the line
        // structure and the volume are integer products over the same
        // extents in the same order, so the stored values are bitwise what
        // the materializing struct would compute — without building its two
        // `Vec`s per changed (tile, array).
        let n = r.len();
        let mut alpha = n + 1;
        for d in (0..n).rev() {
            if r[d].len() as i64 == arr.dims[d] {
                alpha = d + 1;
            } else {
                break;
            }
        }
        let lines = if alpha <= 2 {
            1
        } else {
            r[..alpha - 2]
                .iter()
                .map(|iv| iv.len() as i64)
                .product::<i64>()
                .max(1)
        };
        let line_elems = r[alpha.saturating_sub(2)..]
            .iter()
            .map(|iv| iv.len() as i64)
            .product::<i64>()
            .max(1);
        let bytes = r.iter().map(|iv| iv.len() as i64).product::<i64>() * arr.elem_bytes;
        if meta.loads {
            *total_bytes += bytes;
            *total_ops += 1;
        }
        if meta.unloads {
            *total_bytes += bytes;
            *total_ops += 1;
        }
        ca.swap_lists[ai].push(SwapEntry {
            seg: s0 + 1,
            lines,
            line_elems,
        });
        if let Some(rr) = &mut ca.ranges {
            rr[ai].push(r.to_vec());
        }
        last.range.clear();
        last.range.extend_from_slice(r);
        last.bound = true;
    }
    Ok(())
}

/// Crossover between a [`CoordinateDelta`]'s two frozen representations:
/// contexts whose dense (product-space) storage stays within this many
/// interval cells (~16 MB of `Interval`s) keep the flat per-core arena;
/// larger contexts switch to the rank-reduced per-level factorization
/// instead of declining construction.
const DELTA_CELL_CAP: usize = 1 << 20;

/// Upper bound on the rank-reduced representation's cells
/// (`Σ_{i≠j} M_i × contributions`). `Σ M_i` is bounded by
/// `depth × SEGMENT_CAP`, so only an absurd contribution count can reach
/// this; hitting it declines construction and the caller falls back to full
/// builds.
const RANK_CELL_CAP: usize = 1 << 24;

/// Candidates interleaved per sweep of the frozen SoA columns in
/// [`CoordinateDelta::rebuild_scan`]'s lane walk, and lanes per chunk of
/// [`makespan_only_batch`].
pub const SOA_LANES: usize = 8;

/// Per-lane cap on the moving-coordinate term columns (`M_j × slots`);
/// candidates past it take the scalar walk (a `K_j = 1` scan point of a
/// huge level would otherwise dominate lane setup).
const SOA_JTERM_CAP: usize = 1 << 20;

/// Depth cap for the `2^depth` extent-class execution-time table; deeper
/// nests (not reachable from the paper kernels) take the scalar walk.
const SOA_DEPTH_CAP: usize = 12;

/// Outcome counters of one [`CoordinateDelta::rebuild_scan`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Candidates rejected by the replayed [`SEGMENT_CAP`] check.
    pub truncations: usize,
    /// The scan's tile walks were served by the SoA lane walk.
    pub soa: bool,
    /// SoA was requested but (part of) the scan fell back to the scalar
    /// walk — rank-reduced representation, over-cap term table, or an
    /// over-deep nest.
    pub fallback: bool,
}

/// One candidate of a lane-group walk: its level-`j` geometry snapshot, the
/// per-`t_j` moving-coordinate term columns, the extent-class execution
/// table, and the per-candidate walk outputs (exactly the scalar walk's
/// accumulators).
struct SoaLane {
    idx: usize,
    solution: Solution,
    m_j: i64,
    jbox: Vec<Option<Interval>>,
    add_lo: Vec<i64>,
    add_hi: Vec<i64>,
    kill: Vec<u8>,
    ext_int: Vec<i64>,
    ext_bnd: Vec<i64>,
    exec_tab: Vec<f64>,
    cores_out: Vec<CoreAnalysis>,
    bounding_boxes: Vec<Vec<i64>>,
    total_bytes: i64,
    total_ops: usize,
    last: Vec<LastRange>,
    err: Option<Infeasible>,
}

/// Per-array precompute of a [`CoordinateDelta`].
#[derive(Debug, Clone)]
struct ArrayPlan {
    /// True when no contribution depends on level `j` — neither through a
    /// counter coefficient nor through a guard that can clip at `j` (a guard
    /// covering the whole `[0, N_j)` counter range never excludes a tile).
    /// For such arrays the finished per-dimension hulls are stored.
    j_free: bool,
    /// Cells stored per reduced tile: `ndims` when `j_free`, else the total
    /// contribution count across dimensions.
    stride: usize,
    /// Per dimension, per contribution: `(coeff_j, guard_j)` — the only
    /// level-`j` facts needed to finish a partial sum.
    contrib_j: Vec<Vec<(i64, Interval)>>,
}

/// Frozen-level state for one core: the reduced tile box over the levels
/// other than `j`, plus — in the dense representation — a flat
/// structure-of-arrays arena of per-reduced-tile cells, split into parallel
/// `lo`/`hi` columns so the scan walk streams two homogeneous `i64` columns
/// instead of pointer-hopping interval structs. The arena is tile-major:
/// reduced tile `ri`'s block starts at `ri * per_tile_cells`, and array
/// `ai`'s slice sits at offset `cell_off[ai]` within the block (finished
/// hulls for `j_free` arrays, per-contribution partial sums otherwise; an
/// empty interval — `lo > hi` — marks a partial excluded by a frozen-level
/// guard; genuine partials are never empty since `base` is nonempty and
/// every added term is nonempty). In the rank-reduced representation the
/// columns stay empty; `box_red` is kept either way for the
/// foreign-component debug check.
#[derive(Debug, Clone)]
struct FrozenCore {
    box_red: Vec<Interval>,
    arena_lo: Vec<i64>,
    arena_hi: Vec<i64>,
}

impl FrozenCore {
    /// The interval stored at `cell`.
    #[inline]
    fn cell(&self, cell: usize) -> Interval {
        Interval::new(self.arena_lo[cell], self.arena_hi[cell])
    }
}

/// Rank-reduced frozen storage: the partial canonical-range sum
/// `base + Σ_{i≠j} clip(range_i, guard_i) · coeff_i` is separable per level,
/// so instead of materializing the product space over reduced tiles we keep,
/// per frozen level `i`, one global table of per-contribution terms indexed
/// by the tile index `t ∈ [0, M_i)`: `Interval::empty()` when the guard
/// clips the tile's range away (the whole partial is empty), the exact
/// additive identity `[0, 0]` when the contribution ignores the level
/// (`coeff = 0` — adding it is a no-op even under saturating arithmetic),
/// else `clip(range, guard) · coeff`. Reassembling a tile's partial replays
/// [`partial_bounds`]' ascending-level fold over these terms — bitwise
/// identical — at `O(depth)` per contribution, with `Σ M_i` instead of
/// `Π M_i` storage (the outer-product structure is never materialized).
#[derive(Debug, Clone)]
struct RankTables {
    /// `terms[i][t * n_slots + s]` for frozen level `i`; `terms[j]` is empty.
    terms: Vec<Vec<Interval>>,
    /// `DimContrib::base` per slot, in traversal order (arrays → dims →
    /// contributions).
    bases: Vec<Interval>,
    /// Total contribution count across arrays and dimensions.
    n_slots: usize,
}

/// Which frozen-level representation a [`CoordinateDelta`] carries.
#[derive(Debug, Clone)]
enum FrozenRepr {
    /// Per-core flat arenas over the reduced product space (small contexts).
    Dense,
    /// Per-level factorized tables (contexts past [`DELTA_CELL_CAP`]).
    Rank(RankTables),
}

/// Reusable scratch for the per-candidate tile walk shared by
/// [`CoordinateDelta::rebuild`] and [`CoordinateDelta::rebuild_scan`] — one
/// set of buffers per delta, reused across every candidate of a scan.
#[derive(Debug, Default)]
struct WalkScratch {
    scratch_range: Vec<Interval>,
    extents: Vec<i64>,
    last: Vec<LastRange>,
    red_stride: Vec<usize>,
    tile: Vec<i64>,
}

/// Partial [`DimContrib::bounds`] sum over every level except `j`:
/// `base + Σ_{i≠j} clip(range_i, guard_i) · coeff_i`, or empty when a frozen
/// level's guard excludes the tile. `ranges[j]` is ignored. The `i64`
/// interval arithmetic is exact (absent saturation), so finishing the sum
/// with level `j`'s term later is reassociation-free — bitwise identical to
/// the full left-to-right fold.
fn partial_bounds(c: &DimContrib, ranges: &[Interval], j: usize) -> Interval {
    let mut acc = c.base;
    for (i, ((coef, r), g)) in c
        .comp_coeffs
        .iter()
        .zip(ranges)
        .zip(&c.level_bounds)
        .enumerate()
    {
        if i == j {
            continue;
        }
        let clipped = r.intersect(g);
        if clipped.is_empty() {
            return Interval::empty();
        }
        if *coef != 0 {
            acc = acc + clipped.scale(*coef);
        }
    }
    acc
}

/// Incremental single-coordinate rebuild context (thesis §5.3.1: canonical
/// ranges factor per level). Built once per coordinate-descent scan of level
/// `j`, it freezes everything that does not depend on `K_j`: per-core
/// reduced tile enumerations over the other levels with per-array partial
/// canonical-range sums, plus a memo of tile execution times keyed by
/// extent vector. [`CoordinateDelta::rebuild`] then replays the *exact*
/// per-core, per-tile traversal of [`ComponentAnalysis::build`] — same
/// odometer order, same change detection, same first-error — finishing each
/// partial sum with level `j`'s term only. Results are bitwise equal to a
/// from-scratch build (enforced by a sampled debug assert in the evaluator
/// and the `incremental_matches_full` differential suite).
#[derive(Debug)]
pub struct CoordinateDelta {
    j: usize,
    k: Vec<i64>,
    r: Vec<i64>,
    cores: usize,
    rw_deps: Vec<bool>,
    metas: Vec<ArrayMeta>,
    plans: Vec<ArrayPlan>,
    reduced: Vec<Option<FrozenCore>>,
    repr: FrozenRepr,
    /// Cells per reduced tile in the dense arenas (`Σ` array strides).
    per_tile_cells: usize,
    /// Arena offset of each array's cell slice within a reduced tile block.
    cell_off: Vec<usize>,
    /// `M_i` per level for the frozen levels (entry `j` is the base
    /// solution's and is ignored — lanes carry their own `M_j`).
    frozen_m: Vec<i64>,
    /// Interior / boundary tile extents per frozen level: every tile
    /// `t < M_i - 1` of level `i` has extent `K_i` and only the last tile
    /// can clip, so two classes per level describe every reachable extent
    /// vector (entry `j` is 0; lanes fill theirs from their own ranges).
    ext_int: Vec<i64>,
    ext_bnd: Vec<i64>,
    /// Moving-coordinate term slots: total contribution count across the
    /// non-`j_free` arrays (the only ones needing a finishing term), and
    /// each array's offset into a lane's per-`t_j` term row.
    jslots: usize,
    jterm_off: Vec<usize>,
    exec_memo: HashMap<Vec<i64>, f64>,
    walk: WalkScratch,
}

impl CoordinateDelta {
    /// Precomputes the frozen-level structure for varying coordinate `j` of
    /// `base` (the value of `base.k[j]` itself is irrelevant). Contexts whose
    /// dense product-space storage fits [`DELTA_CELL_CAP`] get per-core flat
    /// arenas; larger ones get the rank-reduced per-level tables, so even
    /// the largest kernels stay incremental. Contexts that are infeasible
    /// independently of `K_j` — the thread shape, or the frozen levels'
    /// segment product alone past [`SEGMENT_CAP`] — get a storage-free
    /// context whose rebuilds replay the exact per-candidate error in
    /// O(depth). Returns `None` only when even the factorized tables would
    /// exceed [`RANK_CELL_CAP`] — callers fall back to full builds.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range or `base` does not match the
    /// component's depth.
    pub fn new(
        component: &Component,
        base: &Solution,
        j: usize,
        cores: usize,
    ) -> Option<CoordinateDelta> {
        let depth = component.depth();
        assert!(j < depth, "coordinate out of range");
        assert_eq!(base.k.len(), depth);
        assert_eq!(base.r.len(), depth);

        let threads: i64 = base.r.iter().product();
        if threads > cores as i64 {
            // K-invariant infeasibility: the thread shape rejects every
            // candidate before any tile geometry is consulted. A storage-free
            // context serves the whole scan — `rebuild`'s `TilePlan::build`
            // replays the exact first error per candidate in O(depth), and
            // the tile walk is unreachable.
            return Some(CoordinateDelta::barren(base, j, cores));
        }
        let m: Vec<i64> = component
            .levels
            .iter()
            .zip(&base.k)
            .map(|(lv, &k)| div_ceil(lv.count, k))
            .collect();
        let z: Vec<i64> = m
            .iter()
            .zip(&base.r)
            .map(|(&m, &r)| div_ceil(m, r))
            .collect();
        let mut red_total = 1u64;
        for (i, &mi) in m.iter().enumerate() {
            if i != j {
                red_total = red_total.saturating_mul(mi as u64);
            }
        }
        if red_total > SEGMENT_CAP {
            // Also K-invariant: the frozen levels' segment product alone
            // exceeds [`SEGMENT_CAP`], so `M_j ≥ 1` makes every candidate a
            // `TooManySegments` rejection. Same storage-free context — and
            // crucially, skipping the frozen enumeration here avoids
            // materializing level ranges for contexts whose tile counts are
            // themselves past the cap.
            return Some(CoordinateDelta::barren(base, j, cores));
        }

        // Counter ranges of the frozen levels (same formula as
        // `TilePlan::build`; level `j`'s ranges depend on `K_j` and are read
        // from the fresh plan at rebuild time).
        let level_ranges: Vec<Vec<Interval>> = component
            .levels
            .iter()
            .enumerate()
            .map(|(i, lv)| {
                if i == j {
                    Vec::new()
                } else {
                    let k = base.k[i];
                    // `t * k < count` always fits, but `(t + 1) * k` can
                    // exceed `i64::MAX` on the last tile of a huge-extent
                    // level; the saturated product still clamps to
                    // `count - 1`, which is the exact value. Mirrors
                    // `TilePlan::build` so rebuilds stay bitwise-equal.
                    (0..m[i])
                        .map(|t| {
                            let hi = t
                                .saturating_add(1)
                                .saturating_mul(k)
                                .saturating_sub(1)
                                .min(lv.count - 1);
                            Interval::new(t * k, hi)
                        })
                        .collect()
                }
            })
            .collect();

        let rw_deps: Vec<bool> = component
            .arrays
            .iter()
            .map(|a| crate::segments::array_has_rw_deps(component, a.array))
            .collect();
        let metas: Vec<ArrayMeta> = component
            .arrays
            .iter()
            .map(|a| ArrayMeta {
                ndims: a.dims.len(),
                elem_bytes: a.elem_bytes,
                loads: matches!(a.attr, BufferAttr::Ro | BufferAttr::Rw),
                unloads: matches!(a.attr, BufferAttr::Wo | BufferAttr::Rw),
            })
            .collect();

        let count_j = component.levels[j].count;
        let plans: Vec<ArrayPlan> = component
            .arrays
            .iter()
            .map(|arr| {
                let contrib_j: Vec<Vec<(i64, Interval)>> = arr
                    .contribs
                    .iter()
                    .map(|dim| {
                        dim.iter()
                            .map(|c| (c.comp_coeffs[j], c.level_bounds[j]))
                            .collect()
                    })
                    .collect();
                let j_free = contrib_j
                    .iter()
                    .flatten()
                    .all(|&(coef, g)| coef == 0 && g.lo <= 0 && g.hi >= count_j - 1);
                let stride = if j_free {
                    arr.contribs.len()
                } else {
                    contrib_j.iter().map(Vec::len).sum()
                };
                ArrayPlan {
                    j_free,
                    stride,
                    contrib_j,
                }
            })
            .collect();

        // Radix weights for the thread id, as in `TilePlan::build`.
        let mut weight = vec![1i64; depth];
        for i in (0..depth.saturating_sub(1)).rev() {
            weight[i] = weight[i + 1] * base.r[i + 1];
        }

        let per_tile_cells: usize = plans.iter().map(|p| p.stride).sum();
        let cell_off: Vec<usize> = plans
            .iter()
            .scan(0usize, |acc, p| {
                let off = *acc;
                *acc += p.stride;
                Some(off)
            })
            .collect();
        let jslots: usize = plans.iter().filter(|p| !p.j_free).map(|p| p.stride).sum();
        let jterm_off: Vec<usize> = plans
            .iter()
            .scan(0usize, |acc, p| {
                let off = *acc;
                if !p.j_free {
                    *acc += p.stride;
                }
                Some(off)
            })
            .collect();
        let ext_int: Vec<i64> = level_ranges
            .iter()
            .map(|lr| lr.first().map_or(0, |iv| iv.len() as i64))
            .collect();
        let ext_bnd: Vec<i64> = level_ranges
            .iter()
            .map(|lr| lr.last().map_or(0, |iv| iv.len() as i64))
            .collect();

        // First pass: per-core reduced boxes and the dense cell total. The
        // core boxes depend only on (m_i, z_i, r_i), so for i ≠ j they match
        // the boxes of every plan the rebuild will construct. The cell
        // accounting is checked: a synthetic huge-extent level can push
        // `n_red * per_tile_cells` past `usize`, and a wrap would sneak an
        // oversized context into the dense arena — overflow simply means the
        // dense representation is out of reach, like exceeding the cap.
        let mut dense_cells: Option<usize> = Some(0);
        let mut boxes: Vec<Option<Vec<Interval>>> = Vec::with_capacity(cores);
        for core in 0..cores {
            let c = core as i64;
            if c >= threads {
                boxes.push(None);
                continue;
            }
            let mut box_red: Vec<Interval> = Vec::with_capacity(depth.saturating_sub(1));
            let mut empty = false;
            for i in 0..depth {
                if i == j {
                    continue;
                }
                let g = (c / weight[i]) % base.r[i];
                let lo = g * z[i];
                let hi = ((g + 1) * z[i] - 1).min(m[i] - 1);
                if lo > hi {
                    empty = true;
                    break;
                }
                box_red.push(Interval::new(lo, hi));
            }
            if empty {
                boxes.push(None);
                continue;
            }
            let tile_cells = box_red
                .iter()
                .try_fold(1usize, |acc, iv| {
                    acc.checked_mul(usize::try_from(iv.len()).ok()?)
                })
                .and_then(|n| n.checked_mul(per_tile_cells));
            dense_cells = match (dense_cells, tile_cells) {
                (Some(total), Some(n)) => total.checked_add(n),
                _ => None,
            };
            boxes.push(Some(box_red));
        }

        let mut reduced: Vec<Option<FrozenCore>> = Vec::with_capacity(cores);
        let repr = if dense_cells.is_some_and(|c| c <= DELTA_CELL_CAP) {
            // Dense: materialize the reduced product space per core, column
            // by column (`lo`/`hi` SoA pair).
            let mut ranges: Vec<Interval> = vec![Interval::empty(); depth];
            for bx in boxes {
                let Some(box_red) = bx else {
                    reduced.push(None);
                    continue;
                };
                let n_red: usize = box_red.iter().map(|iv| iv.len() as usize).product();
                let mut arena_lo: Vec<i64> = Vec::with_capacity(n_red * per_tile_cells);
                let mut arena_hi: Vec<i64> = Vec::with_capacity(n_red * per_tile_cells);
                let mut push = |iv: Interval| {
                    arena_lo.push(iv.lo);
                    arena_hi.push(iv.hi);
                };
                let mut tile_red: Vec<i64> = box_red.iter().map(|iv| iv.lo).collect();
                'tiles: loop {
                    let mut t = 0usize;
                    for i in 0..depth {
                        if i == j {
                            continue;
                        }
                        ranges[i] = level_ranges[i][tile_red[t] as usize];
                        t += 1;
                    }
                    for (arr, p) in component.arrays.iter().zip(&plans) {
                        if p.j_free {
                            for dim in &arr.contribs {
                                let mut hull = Interval::empty();
                                for cb in dim {
                                    hull = hull.hull(&partial_bounds(cb, &ranges, j));
                                }
                                push(hull);
                            }
                        } else {
                            for dim in &arr.contribs {
                                for cb in dim {
                                    push(partial_bounds(cb, &ranges, j));
                                }
                            }
                        }
                    }
                    let mut t = box_red.len();
                    loop {
                        if t == 0 {
                            break 'tiles;
                        }
                        t -= 1;
                        tile_red[t] += 1;
                        if tile_red[t] <= box_red[t].hi {
                            break;
                        }
                        tile_red[t] = box_red[t].lo;
                    }
                }
                reduced.push(Some(FrozenCore {
                    box_red,
                    arena_lo,
                    arena_hi,
                }));
            }
            FrozenRepr::Dense
        } else {
            // Rank-reduced: one factorized table per frozen level, shared by
            // every core — `Σ M_i × slots` cells instead of `Π` box lengths.
            let n_slots: usize = component
                .arrays
                .iter()
                .map(|a| a.contribs.iter().map(Vec::len).sum::<usize>())
                .sum();
            let mut rank_cells = 0usize;
            for (i, lr) in level_ranges.iter().enumerate() {
                if i != j {
                    rank_cells = rank_cells.checked_add(lr.len().checked_mul(n_slots)?)?;
                }
            }
            if rank_cells > RANK_CELL_CAP {
                return None;
            }
            let mut terms: Vec<Vec<Interval>> = vec![Vec::new(); depth];
            for (i, lr) in level_ranges.iter().enumerate() {
                if i == j {
                    continue;
                }
                let table = &mut terms[i];
                table.reserve_exact(lr.len() * n_slots);
                for rng in lr {
                    for arr in &component.arrays {
                        for dim in &arr.contribs {
                            for cb in dim {
                                let clipped = rng.intersect(&cb.level_bounds[i]);
                                table.push(if clipped.is_empty() {
                                    Interval::empty()
                                } else if cb.comp_coeffs[i] != 0 {
                                    clipped.scale(cb.comp_coeffs[i])
                                } else {
                                    // Exact additive identity: adding [0, 0]
                                    // is a no-op even under saturation, so
                                    // the reassembled fold stays bitwise
                                    // equal to `partial_bounds`' coeff ≠ 0
                                    // shortcut.
                                    Interval::new(0, 0)
                                });
                            }
                        }
                    }
                }
            }
            let bases: Vec<Interval> = component
                .arrays
                .iter()
                .flat_map(|a| a.contribs.iter().flatten().map(|c| c.base))
                .collect();
            for bx in boxes {
                reduced.push(bx.map(|box_red| FrozenCore {
                    box_red,
                    arena_lo: Vec::new(),
                    arena_hi: Vec::new(),
                }));
            }
            FrozenRepr::Rank(RankTables {
                terms,
                bases,
                n_slots,
            })
        };

        Some(CoordinateDelta {
            j,
            k: base.k.clone(),
            r: base.r.clone(),
            cores,
            rw_deps,
            metas,
            plans,
            reduced,
            repr,
            per_tile_cells,
            cell_off,
            frozen_m: m,
            ext_int,
            ext_bnd,
            jslots,
            jterm_off,
            exec_memo: HashMap::new(),
            walk: WalkScratch::default(),
        })
    }

    /// A storage-free context for scans every candidate of which is
    /// infeasible for `K_j`-invariant reasons. `rebuild` and `rebuild_scan`
    /// reach `TilePlan::build`, whose thread/segment gates reproduce the
    /// exact first error per candidate; the tile walk is unreachable, so no
    /// frozen representation is materialized.
    fn barren(base: &Solution, j: usize, cores: usize) -> CoordinateDelta {
        CoordinateDelta {
            j,
            k: base.k.clone(),
            r: base.r.clone(),
            cores,
            rw_deps: Vec::new(),
            metas: Vec::new(),
            plans: Vec::new(),
            reduced: Vec::new(),
            repr: FrozenRepr::Dense,
            per_tile_cells: 0,
            cell_off: Vec::new(),
            frozen_m: Vec::new(),
            ext_int: Vec::new(),
            ext_bnd: Vec::new(),
            jslots: 0,
            jterm_off: Vec::new(),
            exec_memo: HashMap::new(),
            walk: WalkScratch::default(),
        }
    }

    /// The varied coordinate.
    pub fn coordinate(&self) -> usize {
        self.j
    }

    /// True when `solution` differs from the base solution at most in
    /// coordinate `j` — the precondition for [`CoordinateDelta::rebuild`].
    pub fn matches(&self, solution: &Solution) -> bool {
        solution.r == self.r
            && solution.k.len() == self.k.len()
            && solution
                .k
                .iter()
                .zip(&self.k)
                .enumerate()
                .all(|(i, (a, b))| i == self.j || a == b)
    }

    /// Rebuilds the analysis for the base solution with coordinate `j` set
    /// to `k_j`, without retained ranges. Must be called with the same
    /// component the delta was built from. The result — including which
    /// [`Infeasible`] is reported first — is bitwise identical to
    /// `ComponentAnalysis::build(component, &solution, cores, exec_model,
    /// false)`.
    ///
    /// # Errors
    ///
    /// Exactly those of [`ComponentAnalysis::build`].
    ///
    /// # Panics
    ///
    /// Panics (debug) if the frozen-level boxes disagree with the fresh tile
    /// plan — i.e. the delta is used with a foreign component.
    pub fn rebuild(
        &mut self,
        component: &Component,
        k_j: i64,
        exec_model: &ExecModel,
    ) -> Result<ComponentAnalysis, Infeasible> {
        let mut solution = Solution {
            k: self.k.clone(),
            r: self.r.clone(),
        };
        solution.k[self.j] = k_j;
        let plan = TilePlan::build(component, &solution, self.cores)?;
        crate::segments::check_persistence(component, &plan)?;
        self.rebuild_with(component, &plan, solution, exec_model)
    }

    /// Batched scan: rebuilds the analysis for every `k_j` in `candidates`
    /// in one pass. The `K_j`-invariant parts of the tile plan are hoisted
    /// out of the loop (the first feasible candidate's plan is re-targeted
    /// with [`TilePlan::set_coordinate`] instead of rebuilt), and one set of
    /// scratch buffers serves every candidate — no per-candidate
    /// `Vec<Vec<Interval>>` churn. Each element of the result, including
    /// which [`Infeasible`] is reported first, is bitwise identical to the
    /// corresponding [`CoordinateDelta::rebuild`] / from-scratch
    /// [`ComponentAnalysis::build`].
    ///
    /// With `soa` set and a dense frozen representation, feasible candidates
    /// are walked [`SOA_LANES`] at a time: the frozen SoA columns are swept
    /// once per lane group, each lane finishing its partial sums from a
    /// per-candidate column of precomputed moving-coordinate terms and
    /// reading tile execution times from a per-candidate extent-class table
    /// instead of hashing extent vectors. Per-lane visit order, change
    /// detection and first-error replay are exactly the scalar walk's, so
    /// every element of the result stays bitwise identical; rank-reduced
    /// and over-cap contexts fall back to the scalar walk
    /// ([`ScanStats::fallback`]).
    ///
    /// With candidates sorted ascending, `M_j` — and so the total segment
    /// count — is non-increasing, which makes [`SEGMENT_CAP`] violations a
    /// prefix of the scan: those candidates are answered by the replayed
    /// `O(depth)` feasibility checks without walking a single tile.
    /// [`ScanStats::truncations`] counts them.
    pub fn rebuild_scan(
        &mut self,
        component: &Component,
        candidates: &[i64],
        exec_model: &ExecModel,
        soa: bool,
    ) -> (Vec<Result<ComponentAnalysis, Infeasible>>, ScanStats) {
        let mut stats = ScanStats::default();
        // Barren contexts never reach a tile walk (every candidate errors in
        // the feasibility replay), so they are neither SoA scans nor
        // fallbacks; rank-reduced contexts decline the lane walk.
        let barren = self.reduced.is_empty();
        let lanes_ok = soa
            && !barren
            && matches!(self.repr, FrozenRepr::Dense)
            && component.depth() <= SOA_DEPTH_CAP;
        if soa && !barren && !lanes_ok {
            stats.fallback = true;
        }

        let mut out: Vec<Option<Result<ComponentAnalysis, Infeasible>>> =
            (0..candidates.len()).map(|_| None).collect();
        let mut lanes: Vec<SoaLane> = Vec::new();
        let mut plan: Option<TilePlan> = None;
        for (idx, &kj) in candidates.iter().enumerate() {
            let mut solution = Solution {
                k: self.k.clone(),
                r: self.r.clone(),
            };
            solution.k[self.j] = kj;
            let prepared = match &mut plan {
                Some(p) => p.set_coordinate(component, &solution, self.j),
                None => match TilePlan::build(component, &solution, self.cores) {
                    Ok(p) => {
                        plan = Some(p);
                        Ok(())
                    }
                    Err(e) => Err(e),
                },
            };
            if let Err(e) = prepared {
                if matches!(e, Infeasible::TooManySegments { .. }) {
                    stats.truncations += 1;
                }
                out[idx] = Some(Err(e));
                continue;
            }
            let p = plan.as_ref().expect("plan prepared for feasible candidate");
            if let Err(e) = crate::segments::check_persistence(component, p) {
                out[idx] = Some(Err(e));
                continue;
            }
            if lanes_ok {
                let jterm_cells = (p.m[self.j] as usize).saturating_mul(self.jslots);
                if jterm_cells <= SOA_JTERM_CAP {
                    lanes.push(self.make_lane(component, p, solution, idx, exec_model));
                    if lanes.len() == SOA_LANES {
                        self.walk_lanes(component, &mut lanes, &mut out, exec_model);
                        stats.soa = true;
                    }
                    continue;
                }
                stats.fallback = true;
            }
            out[idx] = Some(self.rebuild_with(component, p, solution, exec_model));
        }
        if !lanes.is_empty() {
            self.walk_lanes(component, &mut lanes, &mut out, exec_model);
            stats.soa = true;
        }
        (
            out.into_iter()
                .map(|o| o.expect("every candidate resolved"))
                .collect(),
            stats,
        )
    }

    /// Snapshots one feasible candidate into a lane: its solution and level-
    /// `j` tile geometry from the freshly re-targeted plan, the per-`t_j`
    /// moving-coordinate term columns (`clip(range_j, guard_j) · coeff_j`
    /// as `lo`/`hi`/`kill` columns — the column-wise fill pass), and an
    /// extent-class execution-time table over interior/boundary extents per
    /// level (lazily completed during the walk; every reachable extent
    /// vector maps to one of `2^depth` classes because only a level's last
    /// tile can clip).
    fn make_lane(
        &self,
        component: &Component,
        plan: &TilePlan,
        solution: Solution,
        idx: usize,
        _exec_model: &ExecModel,
    ) -> SoaLane {
        let j = self.j;
        let m_j = plan.m[j];
        let ranges_j = plan.level_ranges[j].clone();
        let jbox: Vec<Option<Interval>> = plan
            .core_boxes
            .iter()
            .map(|bx| bx.as_ref().map(|b| b[j]))
            .collect();

        let n = m_j as usize * self.jslots;
        let mut add_lo: Vec<i64> = Vec::with_capacity(n);
        let mut add_hi: Vec<i64> = Vec::with_capacity(n);
        let mut kill: Vec<u8> = Vec::with_capacity(n);
        for rj in &ranges_j {
            for p in &self.plans {
                if p.j_free {
                    continue;
                }
                for dim in &p.contrib_j {
                    for &(coef, guard) in dim {
                        let clipped = rj.intersect(&guard);
                        if clipped.is_empty() {
                            kill.push(1);
                            add_lo.push(0);
                            add_hi.push(0);
                        } else if coef != 0 {
                            let t = clipped.scale(coef);
                            kill.push(0);
                            add_lo.push(t.lo);
                            add_hi.push(t.hi);
                        } else {
                            // Exact additive identity — `x.saturating_add(0)`
                            // is `x`, matching the scalar walk's coeff == 0
                            // shortcut bit for bit.
                            kill.push(0);
                            add_lo.push(0);
                            add_hi.push(0);
                        }
                    }
                }
            }
        }

        let depth = component.depth();
        let mut ext_int = self.ext_int.clone();
        let mut ext_bnd = self.ext_bnd.clone();
        ext_int[j] = ranges_j[0].len() as i64;
        ext_bnd[j] = ranges_j[m_j as usize - 1].len() as i64;

        SoaLane {
            idx,
            solution,
            m_j,
            jbox,
            add_lo,
            add_hi,
            kill,
            ext_int,
            ext_bnd,
            exec_tab: vec![f64::NAN; 1usize << depth],
            cores_out: Vec::with_capacity(self.cores),
            bounding_boxes: component
                .arrays
                .iter()
                .map(|a| vec![0; a.dims.len()])
                .collect(),
            total_bytes: 0,
            total_ops: 0,
            last: vec![LastRange::default(); component.arrays.len()],
            err: None,
        }
    }

    /// The lane-group walk: one sweep of the frozen SoA columns serves every
    /// lane. The loop nests as (reduced prefix `a` = levels < `j`, lane,
    /// `t_j`, reduced suffix `b` = levels > `j`); for each lane the visit
    /// order `(a, t_j, b)` is exactly its full-depth odometer order, so
    /// per-lane sequential state — change detection, segment numbering,
    /// first error — evolves identically to the scalar walk while the
    /// `a`-stripe of the frozen columns stays cache-resident across all
    /// lanes and `t_j` values. Feasibility of each partial is folded
    /// branchlessly: empties are mapped to the `(MAX, MIN)` sentinel, which
    /// makes the hull a plain `min`/`max` with identical semantics to the
    /// empty-aware scalar hull. Drains `lanes` into `out`.
    fn walk_lanes(
        &self,
        component: &Component,
        lanes: &mut Vec<SoaLane>,
        out: &mut [Option<Result<ComponentAnalysis, Infeasible>>],
        exec_model: &ExecModel,
    ) {
        let j = self.j;
        let depth = component.depth();
        let narr = component.arrays.len();
        let mut scratch: Vec<Interval> = Vec::new();
        let mut ext_scratch: Vec<i64> = vec![0; depth];
        let mut b_tile: Vec<i64> = Vec::new();
        let empty_core = |narr: usize| CoreAnalysis {
            nseg: 0,
            exec_ns: Vec::new(),
            swap_lists: vec![Vec::new(); narr],
            ranges: None,
        };

        for core in 0..self.cores {
            let Some(rc) = &self.reduced[core] else {
                // No frozen tiles on this core for any candidate: the full
                // box is `None` under every `K_j`.
                for lane in lanes.iter_mut().filter(|l| l.err.is_none()) {
                    debug_assert!(lane.jbox[core].is_none());
                    lane.cores_out.push(empty_core(narr));
                }
                continue;
            };
            let a_dims = &rc.box_red[..j];
            let b_dims = &rc.box_red[j..];
            let len_a: usize = a_dims.iter().map(|iv| iv.len() as usize).product();
            let len_b: usize = b_dims.iter().map(|iv| iv.len() as usize).product();

            let mut any_active = false;
            for lane in lanes.iter_mut().filter(|l| l.err.is_none()) {
                match lane.jbox[core] {
                    Some(jiv) => {
                        let nseg = len_a * jiv.len() as usize * len_b;
                        lane.cores_out.push(CoreAnalysis {
                            nseg,
                            exec_ns: Vec::with_capacity(nseg),
                            swap_lists: vec![Vec::new(); narr],
                            ranges: None,
                        });
                        for l in &mut lane.last {
                            l.bound = false;
                        }
                        any_active = true;
                    }
                    None => lane.cores_out.push(empty_core(narr)),
                }
            }
            if !any_active {
                continue;
            }

            // Odometer over the reduced prefix (levels < j).
            let mut a_tile: Vec<i64> = a_dims.iter().map(|iv| iv.lo).collect();
            let mut a_idx = 0usize;
            loop {
                let mut a_mask = 0usize;
                for (i, &t) in a_tile.iter().enumerate() {
                    a_mask |= usize::from(t == self.frozen_m[i] - 1) << i;
                }
                let a_base = a_idx * len_b * self.per_tile_cells;

                for lane in lanes.iter_mut() {
                    if lane.err.is_some() {
                        continue;
                    }
                    let Some(jiv) = lane.jbox[core] else {
                        continue;
                    };
                    // Split the lane's fields into independent borrows so the
                    // active `CoreAnalysis` resolves once per (core, lane)
                    // instead of once per tile.
                    let m_j = lane.m_j;
                    let SoaLane {
                        kill,
                        add_lo,
                        add_hi,
                        ext_int,
                        ext_bnd,
                        exec_tab,
                        cores_out,
                        bounding_boxes,
                        total_bytes,
                        total_ops,
                        last,
                        err,
                        ..
                    } = lane;
                    let ca = cores_out.last_mut().expect("core pushed");
                    'tj: for tj in jiv.lo..=jiv.hi {
                        let jbit = usize::from(tj == m_j - 1) << j;
                        let jrow = tj as usize * self.jslots;
                        // Odometer over the reduced suffix (levels > j).
                        b_tile.clear();
                        b_tile.extend(b_dims.iter().map(|iv| iv.lo));
                        let mut b_mask = 0usize;
                        for (t, &v) in b_tile.iter().enumerate() {
                            b_mask |= usize::from(v == self.frozen_m[j + 1 + t] - 1) << (j + 1 + t);
                        }
                        let mut b_idx = 0usize;
                        loop {
                            let block = a_base + b_idx * self.per_tile_cells;
                            let s0 = ca.exec_ns.len();
                            let mut failed: Option<Infeasible> = None;
                            for (ai, (arr, p)) in
                                component.arrays.iter().zip(&self.plans).enumerate()
                            {
                                let cells = block + self.cell_off[ai];
                                scratch.clear();
                                if p.j_free {
                                    scratch.extend((0..p.stride).map(|c| rc.cell(cells + c)));
                                } else {
                                    let mut off = cells;
                                    let mut slot = jrow + self.jterm_off[ai];
                                    for dim in &p.contrib_j {
                                        let nd = dim.len();
                                        // Fixed-length slice zips: the bounds
                                        // checks hoist out and the fold stays
                                        // branchless select + min/max.
                                        let pl = &rc.arena_lo[off..off + nd];
                                        let ph = &rc.arena_hi[off..off + nd];
                                        let kl = &kill[slot..slot + nd];
                                        let al = &add_lo[slot..slot + nd];
                                        let ah = &add_hi[slot..slot + nd];
                                        let mut hlo = i64::MAX;
                                        let mut hhi = i64::MIN;
                                        for c in 0..nd {
                                            let dead = (pl[c] > ph[c]) | (kl[c] != 0);
                                            let blo = if dead {
                                                i64::MAX
                                            } else {
                                                pl[c].saturating_add(al[c])
                                            };
                                            let bhi = if dead {
                                                i64::MIN
                                            } else {
                                                ph[c].saturating_add(ah[c])
                                            };
                                            hlo = hlo.min(blo);
                                            hhi = hhi.max(bhi);
                                        }
                                        off += nd;
                                        slot += nd;
                                        scratch.push(Interval::new(hlo, hhi));
                                    }
                                }
                                if let Err(e) = bind_tile_array(
                                    arr,
                                    &self.metas[ai],
                                    self.rw_deps[ai],
                                    &scratch,
                                    s0,
                                    ca,
                                    ai,
                                    &mut last[ai],
                                    &mut bounding_boxes[ai],
                                    total_bytes,
                                    total_ops,
                                ) {
                                    failed = Some(e);
                                    break;
                                }
                            }
                            if let Some(e) = failed {
                                *err = Some(e);
                                break 'tj;
                            }
                            let mask = a_mask | jbit | b_mask;
                            let mut exec = exec_tab[mask];
                            if exec.is_nan() {
                                for (i, e) in ext_scratch.iter_mut().enumerate() {
                                    *e = if mask >> i & 1 == 1 {
                                        ext_bnd[i]
                                    } else {
                                        ext_int[i]
                                    };
                                }
                                exec = exec_model.tile_time_ns(&ext_scratch);
                                exec_tab[mask] = exec;
                            }
                            ca.exec_ns.push(exec);

                            b_idx += 1;
                            if b_idx == len_b {
                                break;
                            }
                            let mut t = b_dims.len();
                            loop {
                                t -= 1;
                                b_tile[t] += 1;
                                let lvl = j + 1 + t;
                                if b_tile[t] <= b_dims[t].hi {
                                    b_mask = (b_mask & !(1 << lvl))
                                        | usize::from(b_tile[t] == self.frozen_m[lvl] - 1) << lvl;
                                    break;
                                }
                                b_tile[t] = b_dims[t].lo;
                                b_mask = (b_mask & !(1 << lvl))
                                    | usize::from(b_tile[t] == self.frozen_m[lvl] - 1) << lvl;
                            }
                        }
                    }
                }

                a_idx += 1;
                if a_idx == len_a {
                    break;
                }
                let mut t = a_dims.len();
                loop {
                    t -= 1;
                    a_tile[t] += 1;
                    if a_tile[t] <= a_dims[t].hi {
                        break;
                    }
                    a_tile[t] = a_dims[t].lo;
                }
            }
        }

        for lane in lanes.drain(..) {
            out[lane.idx] = Some(match lane.err {
                Some(e) => Err(e),
                None => {
                    let mut spm_bytes_needed = 0i64;
                    for (arr, bb) in component.arrays.iter().zip(&lane.bounding_boxes) {
                        let bufs = if arr.privatized.is_some() { 3 } else { 2 };
                        spm_bytes_needed += bufs * arr.elem_bytes * bb.iter().product::<i64>();
                    }
                    let (combine_rounds, combine) =
                        combine_structure(component, &lane.solution, exec_model);
                    Ok(ComponentAnalysis {
                        solution: lane.solution,
                        cores: lane.cores_out,
                        bounding_boxes: lane.bounding_boxes,
                        spm_bytes_needed,
                        total_bytes: lane.total_bytes,
                        total_ops: lane.total_ops,
                        combine_rounds,
                        combine,
                        arrays: self.metas.clone(),
                    })
                }
            });
        }
    }

    /// The per-candidate tile walk shared by [`CoordinateDelta::rebuild`]
    /// and [`CoordinateDelta::rebuild_scan`]: replays the exact per-core,
    /// per-tile traversal of [`ComponentAnalysis::build`] — same odometer
    /// order, same change detection, same first-error — finishing each
    /// frozen partial sum with level `j`'s term only. `plan` must already
    /// have passed persistence.
    fn rebuild_with(
        &mut self,
        component: &Component,
        plan: &TilePlan,
        solution: Solution,
        exec_model: &ExecModel,
    ) -> Result<ComponentAnalysis, Infeasible> {
        let CoordinateDelta {
            j,
            cores,
            rw_deps,
            metas,
            plans,
            reduced,
            repr,
            per_tile_cells,
            cell_off,
            exec_memo,
            walk,
            ..
        } = self;
        let (j, cores, per_tile_cells) = (*j, *cores, *per_tile_cells);

        let narr = component.arrays.len();
        let depth = component.depth();
        let mut bounding_boxes: Vec<Vec<i64>> = component
            .arrays
            .iter()
            .map(|a| vec![0; a.dims.len()])
            .collect();
        let mut out_cores: Vec<CoreAnalysis> = Vec::with_capacity(cores);
        let mut total_bytes = 0i64;
        let mut total_ops = 0usize;
        walk.last.resize_with(narr, LastRange::default);

        for (core, red) in reduced.iter().enumerate() {
            let nseg = plan.core_nseg(core);
            let mut ca = CoreAnalysis {
                nseg,
                exec_ns: Vec::with_capacity(nseg),
                swap_lists: vec![Vec::new(); narr],
                ranges: None,
            };
            if nseg == 0 {
                out_cores.push(ca);
                continue;
            }
            let bx = plan.core_boxes[core].as_ref().expect("nseg > 0 has a box");
            let rc = red
                .as_ref()
                .expect("core with tiles under new k_j has tiles on frozen levels");
            // Row-major strides of the reduced enumeration, indexed by level
            // (used by the dense arena only; the loop doubles as the
            // foreign-component sanity check in both representations).
            walk.red_stride.clear();
            walk.red_stride.resize(depth, 0);
            {
                let mut acc = 1usize;
                let mut t = rc.box_red.len();
                for i in (0..depth).rev() {
                    if i == j {
                        continue;
                    }
                    t -= 1;
                    debug_assert_eq!(bx[i], rc.box_red[t], "delta used with foreign component");
                    walk.red_stride[i] = acc;
                    acc *= rc.box_red[t].len() as usize;
                }
            }

            for l in &mut walk.last {
                l.bound = false;
            }
            let mut s0 = 0usize;
            walk.tile.clear();
            walk.tile.extend(bx.iter().map(|iv| iv.lo));
            'tiles: loop {
                let rj = plan.level_ranges[j][walk.tile[j] as usize];
                match repr {
                    FrozenRepr::Dense => {
                        let mut ri = 0usize;
                        for (i, (&t, iv)) in walk.tile.iter().zip(bx).enumerate() {
                            if i != j {
                                ri += (t - iv.lo) as usize * walk.red_stride[i];
                            }
                        }
                        let block = ri * per_tile_cells;
                        for (ai, (arr, p)) in component.arrays.iter().zip(&*plans).enumerate() {
                            let cells = block + cell_off[ai];
                            walk.scratch_range.clear();
                            if p.j_free {
                                walk.scratch_range
                                    .extend((0..p.stride).map(|c| rc.cell(cells + c)));
                            } else {
                                let mut off = 0usize;
                                for dim in &p.contrib_j {
                                    let mut hull = Interval::empty();
                                    for &(coef, guard) in dim {
                                        let partial = rc.cell(cells + off);
                                        off += 1;
                                        let b = if partial.is_empty() {
                                            Interval::empty()
                                        } else {
                                            let clipped = rj.intersect(&guard);
                                            if clipped.is_empty() {
                                                Interval::empty()
                                            } else if coef != 0 {
                                                partial + clipped.scale(coef)
                                            } else {
                                                partial
                                            }
                                        };
                                        hull = hull.hull(&b);
                                    }
                                    walk.scratch_range.push(hull);
                                }
                            }
                            bind_tile_array(
                                arr,
                                &metas[ai],
                                rw_deps[ai],
                                &walk.scratch_range,
                                s0,
                                &mut ca,
                                ai,
                                &mut walk.last[ai],
                                &mut bounding_boxes[ai],
                                &mut total_bytes,
                                &mut total_ops,
                            )?;
                        }
                    }
                    FrozenRepr::Rank(rt) => {
                        // Reassemble each frozen partial from the per-level
                        // tables (ascending levels, like `partial_bounds`),
                        // then finish with level `j`'s term. `j_free` arrays
                        // take the same path: their `coeff_j` is 0 and their
                        // guard covers the whole counter range, so the
                        // finishing step is the identity and the hull equals
                        // the dense representation's precomputed one.
                        let mut slot = 0usize;
                        for (ai, (arr, p)) in component.arrays.iter().zip(&*plans).enumerate() {
                            walk.scratch_range.clear();
                            for dim in &p.contrib_j {
                                let mut hull = Interval::empty();
                                for &(coef, guard) in dim {
                                    let mut partial = rt.bases[slot];
                                    let mut excluded = false;
                                    for i in 0..depth {
                                        if i == j {
                                            continue;
                                        }
                                        let term =
                                            rt.terms[i][walk.tile[i] as usize * rt.n_slots + slot];
                                        if term.is_empty() {
                                            excluded = true;
                                            break;
                                        }
                                        partial = partial + term;
                                    }
                                    slot += 1;
                                    let b = if excluded {
                                        Interval::empty()
                                    } else {
                                        let clipped = rj.intersect(&guard);
                                        if clipped.is_empty() {
                                            Interval::empty()
                                        } else if coef != 0 {
                                            partial + clipped.scale(coef)
                                        } else {
                                            partial
                                        }
                                    };
                                    hull = hull.hull(&b);
                                }
                                walk.scratch_range.push(hull);
                            }
                            bind_tile_array(
                                arr,
                                &metas[ai],
                                rw_deps[ai],
                                &walk.scratch_range,
                                s0,
                                &mut ca,
                                ai,
                                &mut walk.last[ai],
                                &mut bounding_boxes[ai],
                                &mut total_bytes,
                                &mut total_ops,
                            )?;
                        }
                    }
                }
                walk.extents.clear();
                walk.extents.extend(
                    walk.tile
                        .iter()
                        .enumerate()
                        .map(|(i, &t)| plan.level_ranges[i][t as usize].len() as i64),
                );
                let exec = match exec_memo.get(walk.extents.as_slice()) {
                    Some(&v) => v,
                    None => {
                        let v = exec_model.tile_time_ns(&walk.extents);
                        exec_memo.insert(walk.extents.clone(), v);
                        v
                    }
                };
                ca.exec_ns.push(exec);
                s0 += 1;
                let mut t = depth;
                loop {
                    if t == 0 {
                        break 'tiles;
                    }
                    t -= 1;
                    walk.tile[t] += 1;
                    if walk.tile[t] <= bx[t].hi {
                        break;
                    }
                    walk.tile[t] = bx[t].lo;
                }
            }
            out_cores.push(ca);
        }

        let mut spm_bytes_needed = 0i64;
        for (arr, bb) in component.arrays.iter().zip(&bounding_boxes) {
            // Mirror of the full build: privatized accumulators keep a third
            // partial-merge buffer.
            let bufs = if arr.privatized.is_some() { 3 } else { 2 };
            spm_bytes_needed += bufs * arr.elem_bytes * bb.iter().product::<i64>();
        }
        let (combine_rounds, combine) = combine_structure(component, &solution, exec_model);

        Ok(ComponentAnalysis {
            solution,
            cores: out_cores,
            bounding_boxes,
            spm_bytes_needed,
            total_bytes,
            total_ops,
            combine_rounds,
            combine,
            arrays: metas.clone(),
        })
    }
}

/// True when `PREM_CHECK_HEAVY` is enabled (default off): debug-build
/// differential asserts sample densely (pre-PR-3 rates) instead of the
/// cheap default. Parsed by the shared [`prem_obs::env_flag`] helper, which
/// warns on unrecognized values.
#[cfg(debug_assertions)]
pub(crate) fn heavy_checks() -> bool {
    static HEAVY: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *HEAVY.get_or_init(|| prem_obs::env_flag("PREM_CHECK_HEAVY", false))
}

/// One-shot fast-tier makespan of a solution: `+∞` when infeasible, else
/// bitwise equal to the materializing tier's
/// `evaluate(&build_schedule(...)).makespan_ns`. Allocates fresh scratch —
/// search loops should use
/// [`crate::optimizer::MakespanEvaluator`] instead, which reuses buffers
/// and memoizes.
pub fn fast_makespan(
    component: &Component,
    solution: &Solution,
    platform: &Platform,
    exec_model: &ExecModel,
) -> f64 {
    let spm_estimate = crate::tiling::spm_bytes_for(component, &solution.k);
    if spm_estimate > platform.spm_bytes {
        return f64::INFINITY;
    }
    let Ok(analysis) =
        ComponentAnalysis::build(component, solution, platform.cores, exec_model, false)
    else {
        return f64::INFINITY;
    };
    match analysis.makespan_only(platform, &mut MakespanScratch::default()) {
        Ok(fast) => fast.makespan_ns,
        Err(_) => f64::INFINITY,
    }
}

/// Cache key: the component's loop structure, the execution model and the
/// search coordinates. Platform timing scalars are deliberately absent —
/// that is the whole point of the cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct AnalysisKey {
    levels: Vec<(usize, i64)>,
    /// Per-level `parallel` flags plus the privatized accumulators: reduction
    /// privatization mutates the component (levels become parallel, arrays
    /// gain combine buffers and a combine phase), so analyses of the
    /// privatized and unprivatized variants of one kernel must not collide.
    parallel: Vec<bool>,
    privatized: Vec<(usize, ReduceOp)>,
    model_bits: Vec<u64>,
    cores: usize,
    solution: Solution,
}

fn analysis_key(
    component: &Component,
    exec_model: &ExecModel,
    cores: usize,
    solution: &Solution,
) -> AnalysisKey {
    AnalysisKey {
        levels: component
            .levels
            .iter()
            .map(|l| (l.loop_id, l.count))
            .collect(),
        parallel: component.levels.iter().map(|l| l.parallel).collect(),
        privatized: component
            .arrays
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.privatized.map(|op| (i, op)))
            .collect(),
        model_bits: exec_model
            .o
            .iter()
            .map(|v| v.to_bits())
            .chain([exec_model.w.to_bits()])
            .collect(),
        cores,
        solution: solution.clone(),
    }
}

type CacheEntry = Result<Arc<ComponentAnalysis>, Infeasible>;

const CACHE_SHARDS: usize = 16;
/// Analyses heavier than this (in [`ComponentAnalysis::weight`] units) are
/// not cached — a `K = 1` solution of a large kernel can carry 100k+
/// segments and would evict everything useful.
const MAX_ENTRY_WEIGHT: usize = 1 << 16;
/// Default total cache budget in weight units (~a few hundred MB worst
/// case), split evenly across shards.
const MAX_TOTAL_WEIGHT: usize = 1 << 22;

/// Counters per shard frequency sketch (power of two).
const SKETCH_WIDTH: usize = 1024;
/// Touches between counter halvings — the TinyLFU aging window, sized so a
/// sweep-long scan cannot freeze the sketch at saturation.
const SKETCH_SAMPLE: usize = 8 * SKETCH_WIDTH;
/// 4-bit counter ceiling.
const SKETCH_CAP: u8 = 15;

/// A tiny count-min-style frequency sketch (TinyLFU): every lookup bumps 4
/// double-hashed 4-bit counters; the estimated frequency of a key is the
/// minimum over its counters. All counters halve every [`SKETCH_SAMPLE`]
/// touches, so the estimate tracks *recent* popularity — one-shot scan keys
/// stay near 0 while the resident working set climbs.
struct FreqSketch {
    counters: Vec<u8>,
    touches: usize,
}

impl Default for FreqSketch {
    fn default() -> Self {
        FreqSketch {
            counters: vec![0; SKETCH_WIDTH],
            touches: 0,
        }
    }
}

impl FreqSketch {
    /// Kirsch–Mitzenmacher double hashing: probe `i` lives at `h1 + i·h2`.
    fn slot(h: u64, i: u64) -> usize {
        let h2 = (h >> 32) | 1;
        (h.wrapping_add(i.wrapping_mul(h2)) as usize) & (SKETCH_WIDTH - 1)
    }

    /// Records one lookup of the key hashing to `h`.
    fn touch(&mut self, h: u64) {
        self.touches += 1;
        if self.touches >= SKETCH_SAMPLE {
            self.touches = 0;
            for c in &mut self.counters {
                *c >>= 1;
            }
        }
        for i in 0..4u64 {
            let s = Self::slot(h, i);
            if self.counters[s] < SKETCH_CAP {
                self.counters[s] += 1;
            }
        }
    }

    /// Estimated recent lookup frequency of the key hashing to `h`.
    fn estimate(&self, h: u64) -> u8 {
        (0..4u64)
            .map(|i| self.counters[Self::slot(h, i)])
            .min()
            .unwrap_or(0)
    }
}

/// One resident cache entry with its clock reference bit.
struct ShardSlot {
    key: AnalysisKey,
    /// The key's 64-bit hash, kept for frequency comparisons at admission.
    hash: u64,
    entry: CacheEntry,
    weight: usize,
    referenced: bool,
}

/// One cache shard: a key→slot index, the slot arena the clock hand sweeps,
/// the admission frequency sketch and the shard's resident weight — all
/// guarded by one mutex, so weight accounting cannot race with admission.
#[derive(Default)]
struct Shard {
    map: HashMap<AnalysisKey, usize>,
    slots: Vec<Option<ShardSlot>>,
    free: Vec<usize>,
    hand: usize,
    weight: usize,
    sketch: FreqSketch,
}

impl Shard {
    /// Looks up a key, recording the lookup in the frequency sketch (hit or
    /// miss — a miss that comes back as an insertion is judged on it).
    fn get(&mut self, key: &AnalysisKey, hash: u64) -> Option<CacheEntry> {
        self.sketch.touch(hash);
        let slot = *self.map.get(key)?;
        let s = self.slots[slot].as_mut().expect("mapped slot is occupied");
        s.referenced = true;
        Some(s.entry.clone())
    }

    /// Admits an entry, evicting via the clock until it fits the budget —
    /// unless the frequency filter finds the clock's victim hotter than the
    /// candidate, in which case admission is declined (scan resistance: a
    /// one-shot sweep point must not churn the resident working set).
    /// Frequency ties admit, keeping recency as the tie-breaker.
    /// Returns `(evicted, admitted)`.
    fn insert(
        &mut self,
        key: AnalysisKey,
        hash: u64,
        entry: CacheEntry,
        weight: usize,
        budget: usize,
    ) -> (usize, bool) {
        // Replace-in-place when the key is already resident: release the old
        // slot's weight before admitting the new entry. Without this, a
        // duplicate insert would overwrite the map index while the stale
        // slot's weight stayed accounted forever — a leak that compounds on
        // a long-lived cross-request cache. Both callers re-check occupancy
        // under this same lock, so this is defense in depth rather than a
        // reachable path today.
        if let Some(&slot) = self.map.get(&key) {
            self.evict_at(slot);
        }
        let cand_freq = self.sketch.estimate(hash);
        let mut evicted = 0;
        while self.weight + weight > budget {
            let Some(victim) = self.find_victim() else {
                break;
            };
            let victim_hash = self.slots[victim]
                .as_ref()
                .expect("victim slot is occupied")
                .hash;
            if cand_freq < self.sketch.estimate(victim_hash) {
                return (evicted, false);
            }
            self.evict_at(victim);
            evicted += 1;
        }
        let slot = self.free.pop().unwrap_or_else(|| {
            self.slots.push(None);
            self.slots.len() - 1
        });
        self.slots[slot] = Some(ShardSlot {
            key: key.clone(),
            hash,
            entry,
            weight,
            referenced: true,
        });
        self.map.insert(key, slot);
        self.weight += weight;
        (evicted, true)
    }

    /// Evicts the clock's next victim unconditionally. Returns `false` when
    /// the shard is empty. Production inserts go through [`Shard::insert`]'s
    /// admission loop; this bypass exercises bare clock rotation in tests.
    #[cfg(test)]
    fn evict_one(&mut self) -> bool {
        match self.find_victim() {
            Some(i) => {
                self.evict_at(i);
                true
            }
            None => false,
        }
    }

    /// Second-chance sweep: clears reference bits until it finds a cold
    /// entry, and returns its slot without removing it. Bounded at two
    /// revolutions (everything is referenced on the first, something is
    /// evictable on the second).
    fn find_victim(&mut self) -> Option<usize> {
        if self.map.is_empty() {
            return None;
        }
        let n = self.slots.len();
        for _ in 0..2 * n + 1 {
            let i = self.hand;
            self.hand = (self.hand + 1) % n;
            if let Some(s) = self.slots[i].as_mut() {
                if s.referenced {
                    s.referenced = false;
                } else {
                    return Some(i);
                }
            }
        }
        None
    }

    /// Removes the entry in slot `i`.
    fn evict_at(&mut self, i: usize) {
        let s = self.slots[i].take().expect("evicted slot is occupied");
        self.map.remove(&s.key);
        self.weight -= s.weight;
        self.free.push(i);
    }
}

/// Cross-check of the cache's incremental weight/entry accounting against a
/// ground-truth recount of the resident slots. See [`AnalysisCache::audit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAudit {
    /// Resident entries per the per-shard key maps.
    pub entries: usize,
    /// Total weight per the incrementally maintained per-shard counters —
    /// what admission decisions are based on.
    pub accounted_weight: usize,
    /// Total weight recomputed by walking every resident slot.
    pub recomputed_weight: usize,
    /// True when, for every shard, the accounted weight equals the recounted
    /// slot weight, the key map and slot arena agree entry-for-entry, and
    /// the free list is consistent with the occupied slots.
    pub consistent: bool,
}

/// Outcome of one [`AnalysisCache::get_or_build_with`] lookup.
pub struct CacheLookup {
    /// The analysis or infeasibility verdict.
    pub entry: CacheEntry,
    /// True when the result came from the cache.
    pub hit: bool,
    /// Entries evicted to admit this one — attributed to the caller so
    /// telemetry aggregation stays race-free.
    pub evicted: usize,
    /// True when the entry was built but the frequency-based admission
    /// filter declined to cache it (the candidate was colder than the
    /// clock's eviction victim).
    pub rejected: bool,
}

/// Shared, sharded memo of [`ComponentAnalysis`] results (including
/// infeasibility verdicts), keyed by structure only. One cache serves every
/// optimizer run of a sweep: points that differ only in bus speed or API
/// costs hit for every candidate the previous points explored. Admission is
/// weight-aware with per-shard clock (second-chance) eviction, so a long
/// multi-kernel sweep keeps its hot keys resident instead of freezing the
/// cache at first saturation.
pub struct AnalysisCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    evictions: AtomicUsize,
    admission_rejects: AtomicUsize,
}

impl Default for AnalysisCache {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for AnalysisCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisCache")
            .field("entries", &self.len())
            .field("weight", &self.weight())
            .field("evictions", &self.evictions())
            .field("admission_rejects", &self.admission_rejects())
            .finish()
    }
}

impl AnalysisCache {
    /// Creates an empty cache with the default weight budget.
    pub fn new() -> Self {
        Self::with_total_weight(MAX_TOTAL_WEIGHT)
    }

    /// Creates an empty cache with a custom total weight budget (split
    /// evenly across shards; mainly for eviction tests).
    pub fn with_total_weight(total: usize) -> Self {
        AnalysisCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            shard_budget: (total / CACHE_SHARDS).max(1),
            evictions: AtomicUsize::new(0),
            admission_rejects: AtomicUsize::new(0),
        }
    }

    /// Number of cached analyses across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total resident weight across all shards.
    pub fn weight(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().weight).sum()
    }

    /// Total entries evicted since creation.
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Total insertions declined by the frequency-based admission filter
    /// since creation.
    pub fn admission_rejects(&self) -> usize {
        self.admission_rejects.load(Ordering::Relaxed)
    }

    /// Returns the analysis (or infeasibility verdict) for the key, calling
    /// `build` on a miss. The build runs outside the shard lock; when two
    /// threads race on the same miss, both build but only the entry that
    /// lands in the shard is weight-accounted (admission re-checks occupancy
    /// under the lock). Oversized entries are returned but not admitted.
    pub fn get_or_build_with<F>(
        &self,
        component: &Component,
        solution: &Solution,
        cores: usize,
        exec_model: &ExecModel,
        build: F,
    ) -> CacheLookup
    where
        F: FnOnce() -> CacheEntry,
    {
        let key = analysis_key(component, exec_model, cores, solution);
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let hash = hasher.finish();
        let shard = &self.shards[(hash as usize) % CACHE_SHARDS];
        if let Some(entry) = shard.lock().unwrap().get(&key, hash) {
            return CacheLookup {
                entry,
                hit: true,
                evicted: 0,
                rejected: false,
            };
        }
        let entry = build();
        let weight = entry.as_ref().map(|a| a.weight()).unwrap_or(1);
        let mut evicted = 0;
        let mut rejected = false;
        if weight <= MAX_ENTRY_WEIGHT && weight <= self.shard_budget {
            let mut guard = shard.lock().unwrap();
            if !guard.map.contains_key(&key) {
                let (e, admitted) =
                    guard.insert(key, hash, entry.clone(), weight, self.shard_budget);
                evicted = e;
                rejected = !admitted;
            }
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        if rejected {
            self.admission_rejects.fetch_add(1, Ordering::Relaxed);
        }
        CacheLookup {
            entry,
            hit: false,
            evicted,
            rejected,
        }
    }

    /// Cache-only lookup: returns the entry when resident, `None` on a miss
    /// — no build, no insertion. The lookup is recorded in the shard's
    /// frequency sketch and reference bit exactly like the hit path of
    /// [`AnalysisCache::get_or_build_with`], so the batched scan path (probe
    /// everything first, bulk-build the misses, then insert) sees the same
    /// admission dynamics as per-candidate lookups.
    pub fn probe(
        &self,
        component: &Component,
        solution: &Solution,
        cores: usize,
        exec_model: &ExecModel,
    ) -> Option<CacheEntry> {
        let key = analysis_key(component, exec_model, cores, solution);
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let hash = hasher.finish();
        self.shards[(hash as usize) % CACHE_SHARDS]
            .lock()
            .unwrap()
            .get(&key, hash)
    }

    /// Inserts a prebuilt entry for the key (unless already resident),
    /// applying the same weight gates and frequency-based admission as
    /// [`AnalysisCache::get_or_build_with`]'s miss path. Returns
    /// `(evicted, rejected)` for the caller's telemetry. Unlike a
    /// `get_or_build_with` round-trip, this does not touch the frequency
    /// sketch again — the preceding [`AnalysisCache::probe`] already
    /// recorded the lookup.
    pub fn admit(
        &self,
        component: &Component,
        solution: &Solution,
        cores: usize,
        exec_model: &ExecModel,
        entry: CacheEntry,
    ) -> (usize, bool) {
        let key = analysis_key(component, exec_model, cores, solution);
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let hash = hasher.finish();
        let shard = &self.shards[(hash as usize) % CACHE_SHARDS];
        let weight = entry.as_ref().map(|a| a.weight()).unwrap_or(1);
        let mut evicted = 0;
        let mut rejected = false;
        if weight <= MAX_ENTRY_WEIGHT && weight <= self.shard_budget {
            let mut guard = shard.lock().unwrap();
            if !guard.map.contains_key(&key) {
                let (e, admitted) = guard.insert(key, hash, entry, weight, self.shard_budget);
                evicted = e;
                rejected = !admitted;
            }
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        if rejected {
            self.admission_rejects.fetch_add(1, Ordering::Relaxed);
        }
        (evicted, rejected)
    }

    /// Recounts every resident slot and cross-checks the incrementally
    /// maintained weight/entry accounting against it — the invariant the
    /// concurrent miss-path hammer test pins. Takes each shard lock in turn,
    /// so concurrent lookups may land between shards; run it quiesced when
    /// exact totals matter.
    pub fn audit(&self) -> CacheAudit {
        let mut audit = CacheAudit {
            entries: 0,
            accounted_weight: 0,
            recomputed_weight: 0,
            consistent: true,
        };
        for shard in &self.shards {
            let s = shard.lock().unwrap();
            let occupied: Vec<(usize, &ShardSlot)> = s
                .slots
                .iter()
                .enumerate()
                .filter_map(|(i, slot)| slot.as_ref().map(|sl| (i, sl)))
                .collect();
            let recounted: usize = occupied.iter().map(|(_, sl)| sl.weight).sum();
            audit.entries += s.map.len();
            audit.accounted_weight += s.weight;
            audit.recomputed_weight += recounted;
            let maps_agree = s.map.len() == occupied.len()
                && occupied.iter().all(|(i, sl)| s.map.get(&sl.key) == Some(i));
            let free_consistent = s.free.len() + occupied.len() == s.slots.len()
                && s.free.iter().all(|&i| s.slots[i].is_none());
            audit.consistent &= s.weight == recounted && maps_agree && free_consistent;
        }
        audit
    }

    /// [`AnalysisCache::get_or_build_with`] with the default from-scratch
    /// build. The second element is `true` when the result came from the
    /// cache.
    pub fn get_or_build(
        &self,
        component: &Component,
        solution: &Solution,
        cores: usize,
        exec_model: &ExecModel,
    ) -> (CacheEntry, bool) {
        let lookup = self.get_or_build_with(component, solution, cores, exec_model, || {
            ComponentAnalysis::build(component, solution, cores, exec_model, false).map(Arc::new)
        });
        (lookup.entry, lookup.hit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_for(i: i64) -> AnalysisKey {
        AnalysisKey {
            levels: vec![(0, 64)],
            parallel: vec![true],
            privatized: vec![],
            model_bits: vec![0],
            cores: 1,
            solution: Solution {
                k: vec![i],
                r: vec![1],
            },
        }
    }

    fn feasible_entry() -> CacheEntry {
        Err(Infeasible::TooManySegments { count: 0 })
    }

    fn hash_of(key: &AnalysisKey) -> u64 {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn clock_spares_referenced_entries() {
        let mut shard = Shard::default();
        let budget = usize::MAX;
        for i in 1..=3 {
            let key = key_for(i);
            let h = hash_of(&key);
            shard.insert(key, h, feasible_entry(), 1, budget);
        }
        // First sweep clears all three fresh reference bits, then evicts
        // key 1 (clock order), leaving the hand at slot 1.
        assert!(shard.evict_one());
        let h1 = hash_of(&key_for(1));
        assert!(shard.get(&key_for(1), h1).is_none());
        // Touch key 3: its bit protects it from the next sweep, while the
        // untouched key 2 sits right under the hand.
        let h3 = hash_of(&key_for(3));
        assert!(shard.get(&key_for(3), h3).is_some());
        assert!(shard.evict_one());
        let h2 = hash_of(&key_for(2));
        assert!(
            shard.get(&key_for(2), h2).is_none(),
            "cold entry is the victim"
        );
        assert!(shard.get(&key_for(3), h3).is_some(), "hot entry survives");
        assert_eq!(shard.weight, 1);
    }

    #[test]
    fn shard_weight_tracks_evictions() {
        let mut shard = Shard::default();
        let budget = 10;
        for i in 0..20 {
            let key = key_for(i);
            let h = hash_of(&key);
            // Equal (zero) sketch frequencies tie, so admission proceeds.
            let (_, admitted) = shard.insert(key, h, feasible_entry(), 3, budget);
            assert!(admitted, "frequency ties must admit");
        }
        assert!(shard.weight <= budget);
        assert_eq!(
            shard.weight,
            shard.map.len() * 3,
            "weight matches resident entries"
        );
        // The freelist recycles slots instead of growing the arena forever.
        assert!(shard.slots.len() <= 4);
    }

    #[test]
    fn duplicate_insert_replaces_without_leaking_weight() {
        let mut shard = Shard::default();
        let key = key_for(1);
        let h = hash_of(&key);
        shard.insert(key.clone(), h, feasible_entry(), 3, usize::MAX);
        assert_eq!(shard.weight, 3);
        // Inserting the same key again must release the old slot's weight,
        // not strand it behind the overwritten map index.
        shard.insert(key.clone(), h, feasible_entry(), 5, usize::MAX);
        assert_eq!(shard.map.len(), 1);
        assert_eq!(shard.weight, 5);
        let resident: usize = shard.slots.iter().flatten().map(|s| s.weight).sum();
        assert_eq!(shard.weight, resident);
        assert!(shard.get(&key, h).is_some());
    }

    #[test]
    fn sketch_estimates_and_ages() {
        let mut sketch = FreqSketch::default();
        let (hot, cold) = (0xdead_beef_1234_5678u64, 0x0bad_cafe_8765_4321u64);
        for _ in 0..10 {
            sketch.touch(hot);
        }
        sketch.touch(cold);
        assert!(sketch.estimate(hot) >= sketch.estimate(cold));
        assert!(sketch.estimate(hot) >= 10u8.min(SKETCH_CAP));
        // Counters saturate at the 4-bit cap…
        for _ in 0..100 {
            sketch.touch(hot);
        }
        assert_eq!(sketch.estimate(hot), SKETCH_CAP);
        // …and the periodic halving ages old popularity away.
        for i in 0..(2 * SKETCH_SAMPLE as u64) {
            sketch.touch(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        }
        assert!(sketch.estimate(hot) < SKETCH_CAP);
    }

    #[test]
    fn cold_candidate_does_not_evict_hot_incumbent() {
        let mut shard = Shard::default();
        let budget = 3;
        let hot = key_for(1);
        let hot_hash = hash_of(&hot);
        shard.insert(hot.clone(), hot_hash, feasible_entry(), 3, budget);
        for _ in 0..5 {
            assert!(shard.get(&hot, hot_hash).is_some());
        }
        // A once-seen scan key must be declined, leaving the incumbent.
        let scan = key_for(2);
        let scan_hash = hash_of(&scan);
        shard.sketch.touch(scan_hash);
        let (evicted, admitted) = shard.insert(scan, scan_hash, feasible_entry(), 3, budget);
        assert_eq!(evicted, 0);
        assert!(!admitted, "cold candidate must be rejected");
        assert!(shard.get(&hot, hot_hash).is_some(), "incumbent survives");
    }
}
