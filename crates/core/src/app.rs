//! Application-level optimization — Algorithm 2 of the paper (§4.4) — plus
//! the greedy baseline of Matějka et al. (§6.2) and the ideal single-core
//! baseline.
//!
//! Algorithm 2 decomposes the loop tree into disjoint tilable components by a
//! depth-first walk: a perfect chain of tilable loops extends the current
//! component; at an imperfect node the better of *tile here* (children folded
//! into the leaf) and *recurse into the children* is chosen.

use crate::component::Component;
use crate::config::Platform;
use crate::cost::CostProvider;
use crate::looptree::{LoopTree, LoopTreeNode};
use crate::optimizer::{optimize_component, OptimizeOutcome, OptimizerOptions};
use crate::schedule::{evaluate, ScheduleResult};
use crate::segments::build_schedule;
use crate::tiling::Solution;
use prem_ir::Program;
use prem_obs::{PhaseTimings, SearchTelemetry, Stopwatch};

/// Report for one scheduled component.
#[derive(Debug, Clone)]
pub struct ComponentReport {
    /// Level names, outermost first.
    pub level_names: Vec<String>,
    /// The chosen solution.
    pub solution: Solution,
    /// Evaluation of a single component execution.
    pub result: ScheduleResult,
    /// Execution count `I`.
    pub exec_count: u64,
    /// Structured search telemetry for this component's optimization.
    pub telemetry: SearchTelemetry,
    /// The component itself (for downstream code generation/simulation).
    pub component: Component,
}

impl ComponentReport {
    /// Number of makespan evaluations the optimizer spent — derived from
    /// the telemetry so the two can never diverge.
    pub fn evals(&self) -> usize {
        self.telemetry.evals
    }

    /// Contribution of this component to the application makespan.
    pub fn total_ns(&self) -> f64 {
        self.result.makespan_ns * self.exec_count as f64
    }

    /// Total bytes transferred across all executions.
    pub fn total_bytes(&self) -> i64 {
        self.result.bytes * self.exec_count as i64
    }
}

/// Result of optimizing a whole application.
#[derive(Debug, Clone)]
pub struct AppOutcome {
    /// Application makespan in ns.
    pub makespan_ns: f64,
    /// Per-component reports, in schedule order.
    pub components: Vec<ComponentReport>,
}

impl AppOutcome {
    /// Total bytes transferred by the application.
    pub fn total_bytes(&self) -> i64 {
        self.components
            .iter()
            .map(ComponentReport::total_bytes)
            .sum()
    }

    /// Total API overhead (ns) across the application.
    pub fn total_api_ns(&self) -> f64 {
        self.components
            .iter()
            .map(|c| c.result.api_ns * c.exec_count as f64)
            .sum()
    }

    /// Maximum SPM bytes needed by any component.
    pub fn max_spm_bytes(&self) -> i64 {
        self.components
            .iter()
            .map(|c| c.result.spm_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Aggregated search telemetry across all components (counters and
    /// wall-clock only; per-assignment detail stays in each
    /// [`ComponentReport::telemetry`]).
    pub fn search_totals(&self) -> SearchTelemetry {
        let mut total = SearchTelemetry {
            best_makespan_ns: f64::INFINITY,
            ..SearchTelemetry::default()
        };
        for c in &self.components {
            total.absorb(&c.telemetry);
        }
        total
    }
}

/// Strategy used to pick a solution for each component.
trait ComponentStrategy {
    fn solve(&self, component: &Component) -> Option<OptimizeOutcome>;
    fn stmt_instance_ns(&self, stmt: usize) -> f64;
    /// Whether extracted components should privatize reduction accumulators
    /// before the search ([`Component::privatize_reductions`]). Off for the
    /// greedy baseline and off by default.
    fn reductions(&self) -> bool {
        false
    }
}

struct HeuristicStrategy<'a, C: CostProvider> {
    platform: &'a Platform,
    cost: &'a C,
    opts: OptimizerOptions,
}

impl<C: CostProvider> ComponentStrategy for HeuristicStrategy<'_, C> {
    fn solve(&self, component: &Component) -> Option<OptimizeOutcome> {
        let model = self.cost.exec_model(component);
        optimize_component(component, self.platform, &model, &self.opts)
    }

    fn stmt_instance_ns(&self, stmt: usize) -> f64 {
        self.cost.stmt_instance_ns(stmt)
    }

    fn reductions(&self) -> bool {
        self.opts.reductions
    }
}

struct GreedyStrategy<'a, C: CostProvider> {
    platform: &'a Platform,
    cost: &'a C,
}

impl<C: CostProvider> ComponentStrategy for GreedyStrategy<'_, C> {
    fn solve(&self, component: &Component) -> Option<OptimizeOutcome> {
        let model = self.cost.exec_model(component);
        greedy_component(component, self.platform, &model)
    }

    fn stmt_instance_ns(&self, stmt: usize) -> f64 {
        self.cost.stmt_instance_ns(stmt)
    }
}

/// Algorithm 2 with the heuristic component optimizer (the paper's system).
pub fn optimize_app<C: CostProvider>(
    tree: &LoopTree,
    program: &Program,
    platform: &Platform,
    cost: &C,
    opts: &OptimizerOptions,
) -> AppOutcome {
    optimize_app_timed(tree, program, platform, cost, opts).0
}

/// [`optimize_app`] plus wall-clock accounting per compile-pipeline phase
/// (`component_extraction`, `tiling_search`, `schedule_build`). The
/// upstream `analysis` phase (loop-tree construction, dependence analysis)
/// happens before this entry point; time it around [`LoopTree::build`] and
/// merge with [`PhaseTimings::absorb`].
pub fn optimize_app_timed<C: CostProvider>(
    tree: &LoopTree,
    program: &Program,
    platform: &Platform,
    cost: &C,
    opts: &OptimizerOptions,
) -> (AppOutcome, PhaseTimings) {
    let strategy = HeuristicStrategy {
        platform,
        cost,
        opts: opts.clone(),
    };
    run_app(tree, program, cost, &strategy)
}

/// Algorithm 2 with the greedy baseline component selection (§6.2).
pub fn optimize_app_greedy<C: CostProvider>(
    tree: &LoopTree,
    program: &Program,
    platform: &Platform,
    cost: &C,
) -> AppOutcome {
    let strategy = GreedyStrategy { platform, cost };
    run_app(tree, program, cost, &strategy).0
}

fn run_app<C: CostProvider>(
    tree: &LoopTree,
    program: &Program,
    cost: &C,
    strategy: &dyn ComponentStrategy,
) -> (AppOutcome, PhaseTimings) {
    let mut components = Vec::new();
    let mut timings = PhaseTimings::new();
    let mut makespan = 0.0f64;
    for root in &tree.roots {
        makespan += extract_component(
            tree,
            program,
            root,
            Vec::new(),
            strategy,
            &mut components,
            &mut timings,
        );
    }
    // Statements outside any loop execute once each on one core.
    for &sid in &tree.root_stmts {
        makespan += cost.stmt_instance_ns(sid);
    }
    (
        AppOutcome {
            makespan_ns: makespan,
            components,
        },
        timings,
    )
}

/// `extract_component` of Algorithm 2. Returns the makespan contribution of
/// the subtree rooted at `node` and appends the chosen component reports.
fn extract_component<'t>(
    tree: &'t LoopTree,
    program: &Program,
    node: &'t LoopTreeNode,
    mut chain: Vec<&'t LoopTreeNode>,
    strategy: &dyn ComponentStrategy,
    out: &mut Vec<ComponentReport>,
    timings: &mut PhaseTimings,
) -> f64 {
    // A non-tilable node never joins a chain as a tiled level — but a chain
    // must contain at least one level, so a non-tilable head still forms a
    // single-level component restricted to K = N.
    let extendable = node.tilable || chain.is_empty();
    if extendable {
        chain.push(node);
    }

    let solve_chain = |chain: &[&LoopTreeNode],
                       out: &mut Vec<ComponentReport>,
                       timings: &mut PhaseTimings|
     -> f64 {
        let mut clock = Stopwatch::start();
        let mut component = Component::extract(tree, program, chain);
        if strategy.reductions() {
            component.privatize_reductions();
        }
        timings.add("component_extraction", clock.lap());
        let solved = strategy.solve(&component);
        let solve_s = clock.lap();
        match solved {
            Some(mut outcome) => {
                // The final schedule build happens inside the solve; report
                // it as its own pipeline phase.
                timings.add("schedule_build", outcome.telemetry.schedule_build_s);
                timings.add(
                    "tiling_search",
                    (solve_s - outcome.telemetry.schedule_build_s).max(0.0),
                );
                outcome.telemetry.reduction_deps = component
                    .deps
                    .iter()
                    .filter(|d| d.reduction.is_some())
                    .count();
                outcome.telemetry.privatized_accumulators = component
                    .arrays
                    .iter()
                    .filter(|a| a.privatized.is_some())
                    .count();
                let report = ComponentReport {
                    level_names: component.levels.iter().map(|l| l.name.clone()).collect(),
                    solution: outcome.solution,
                    result: outcome.result,
                    exec_count: component.exec_count,
                    telemetry: outcome.telemetry,
                    component,
                };
                let total = report.total_ns();
                out.push(report);
                total
            }
            None => {
                timings.add("tiling_search", solve_s);
                f64::INFINITY
            }
        }
    };

    if !extendable {
        // A non-tilable level mid-chain is folded into the leaf together
        // with everything below it (§3.3); the component is the chain built
        // so far and there is no alternative decomposition.
        return solve_chain(&chain, out, timings);
    }

    if node.children.is_empty() || !node.perfectly_nests() {
        // Leaf of the chain walk: decide between tiling the chain here (the
        // children are folded into the leaf) and recursing into the children.
        let mut parent_branch = Vec::new();
        let parent = solve_chain(&chain, &mut parent_branch, timings);

        if node.children.is_empty() {
            out.append(&mut parent_branch);
            return parent;
        }
        let mut child_branch = Vec::new();
        let mut children = 0.0f64;
        for child in &node.children {
            children += extract_component(
                tree,
                program,
                child,
                Vec::new(),
                strategy,
                &mut child_branch,
                timings,
            );
        }
        // Statements directly in this node's body execute I × span times.
        // They are covered by the parent option's leaf; for the children
        // option they run outside the child components.
        // Their cost is already inside `parent`; add to `children` here.
        children += own_stmt_cost(tree, node, strategy);

        if parent <= children {
            out.append(&mut parent_branch);
            parent
        } else {
            out.append(&mut child_branch);
            children
        }
    } else {
        // Perfect nest onto a single child: extend the chain (Algorithm 2
        // lines 12–13); a non-tilable child folds inside extract_component.
        extract_component(
            tree,
            program,
            &node.children[0],
            chain,
            strategy,
            out,
            timings,
        )
    }
}

/// Sequential cost of statements living directly in `node`'s body when the
/// children-components option is chosen.
fn own_stmt_cost(tree: &LoopTree, node: &LoopTreeNode, strategy: &dyn ComponentStrategy) -> f64 {
    if node.own_stmts.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for &sid in &node.own_stmts {
        let poly = &tree.stmts[sid];
        let instances: u64 = poly.tightened_bounds().iter().map(|b| b.len()).product();
        total += instances as f64 * strategy.stmt_instance_ns(sid);
    }
    total
}

/// The greedy baseline (§6.2, \[29\]): walk levels outermost-first with `K = 1`
/// until a level is found where some tile fits the SPM with all deeper levels
/// untiled; pick the **largest** fitting tile size there. Outer parallel
/// levels are spread across all cores.
pub fn greedy_component(
    component: &Component,
    platform: &Platform,
    exec_model: &crate::timing::ExecModel,
) -> Option<OptimizeOutcome> {
    let depth = component.depth();
    // Thread groups: all cores on the outermost parallel level that can take
    // them.
    let mut r = vec![1i64; depth];
    let mut budget = platform.cores as i64;
    for (j, lv) in component.levels.iter().enumerate() {
        if lv.parallel && budget > 1 {
            let take = budget.min(lv.count);
            r[j] = take;
            budget /= take;
        }
    }

    let mut k: Vec<i64> = component.levels.iter().map(|l| l.count).collect();
    for j in 0..depth {
        if !component.levels[j].tilable {
            // Cannot tile here; keep full and move on (greedy cannot shrink
            // this level).
            continue;
        }
        // Binary search the largest K_j whose working set fits the SPM with
        // deeper levels untiled. Greedy only reasons about the footprint
        // ("the largest tile size that fits", §2.1.2); every other schedule
        // constraint is validated by the final build below.
        let n = component.levels[j].count;
        let fits = |kj: i64, k: &[i64]| -> bool {
            let mut kk = k.to_vec();
            kk[j] = kj;
            crate::tiling::spm_bytes_for(component, &kk) <= platform.spm_bytes
        };
        if fits(n, &k) {
            // Already fits untiled at this level.
            break;
        }
        if fits(1, &k) {
            let (mut lo, mut hi) = (1i64, n);
            while lo < hi {
                let mid = (lo + hi + 1) / 2;
                if fits(mid, &k) {
                    lo = mid;
                } else {
                    hi = mid - 1;
                }
            }
            k[j] = lo;
            break;
        }
        // Even K = 1 does not fit: pin this level to 1 and descend.
        k[j] = 1;
    }

    let solution = Solution { k, r };
    let schedule = build_schedule(component, &solution, platform, exec_model).ok()?;
    let result = evaluate(&schedule);
    let telemetry = SearchTelemetry::single(solution.r.clone(), result.makespan_ns);
    Some(OptimizeOutcome {
        solution,
        result,
        telemetry,
    })
}

/// The ideal single-core baseline (§6.2): unlimited SPM, zero-cost memory
/// phases, no tiling — the pure execution time of the original program.
pub fn ideal_makespan<C: CostProvider>(tree: &LoopTree, cost: &C) -> f64 {
    let mut total = 0.0f64;
    // Per-statement instance cost.
    for poly in &tree.stmts {
        let instances: u64 = poly.tightened_bounds().iter().map(|b| b.len()).product();
        total += instances as f64 * cost.stmt_instance_ns(poly.id);
    }
    // Per-loop iteration overhead: total iterations of each loop = I × N.
    fn walk(nodes: &[LoopTreeNode], acc: &mut f64) {
        for n in nodes {
            *acc += (n.exec_count as f64) * (n.count as f64);
            walk(&n.children, acc);
        }
    }
    let mut iters = 0.0;
    walk(&tree.roots, &mut iters);
    total + iters * cost.loop_iter_ns()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::AnalyticCost;
    use prem_ir::{AssignKind, ElemType, Expr, IdxExpr, ProgramBuilder};

    /// A simple 2-level parallel kernel: y[i][j] += x[i][j] * 2.
    fn simple_kernel(n: i64, m: i64) -> Program {
        let mut b = ProgramBuilder::new("simple");
        let x = b.array("x", vec![n, m], ElemType::F32);
        let y = b.array("y", vec![n, m], ElemType::F32);
        let i = b.begin_loop("i", 0, 1, n);
        let j = b.begin_loop("j", 0, 1, m);
        b.stmt(
            y,
            vec![IdxExpr::var(i), IdxExpr::var(j)],
            AssignKind::AddAssign,
            Expr::mul(
                Expr::load(x, vec![IdxExpr::var(i), IdxExpr::var(j)]),
                Expr::Const(2.0),
            ),
        );
        b.end_loop();
        b.end_loop();
        b.finish()
    }

    #[test]
    fn app_optimizer_finds_feasible_parallel_solution() {
        let program = simple_kernel(256, 256);
        let tree = LoopTree::build(&program).unwrap();
        let cost = AnalyticCost::new(&program);
        let platform = Platform::default();
        let out = optimize_app(
            &tree,
            &program,
            &platform,
            &cost,
            &OptimizerOptions::default(),
        );
        assert_eq!(out.components.len(), 1);
        let c = &out.components[0];
        assert!(out.makespan_ns.is_finite());
        // Should use several cores: i and j are parallel.
        assert!(c.solution.threads() > 1, "solution {}", c.solution);
        // Speedup over single core must be substantial at default bus speed.
        let single = Platform::default().with_cores(1);
        let out1 = optimize_app(
            &tree,
            &program,
            &single,
            &cost,
            &OptimizerOptions::default(),
        );
        assert!(
            out.makespan_ns < out1.makespan_ns / 3.0,
            "8-core {} vs 1-core {}",
            out.makespan_ns,
            out1.makespan_ns
        );
    }

    #[test]
    fn heuristic_beats_or_matches_greedy() {
        let program = simple_kernel(128, 512);
        let tree = LoopTree::build(&program).unwrap();
        let cost = AnalyticCost::new(&program);
        // Slow bus: memory-bound regime where greedy suffers.
        let platform = Platform::default().with_bus_gbytes(1.0 / 32.0);
        let ours = optimize_app(
            &tree,
            &program,
            &platform,
            &cost,
            &OptimizerOptions::default(),
        );
        let greedy = optimize_app_greedy(&tree, &program, &platform, &cost);
        assert!(ours.makespan_ns.is_finite());
        assert!(greedy.makespan_ns.is_finite());
        // On a reuse-free elementwise kernel both move the same bytes; the
        // heuristic must be within a few percent (it wins decisively only
        // when tiling level choice changes data reuse, cf. §6.3.1).
        assert!(
            ours.makespan_ns <= greedy.makespan_ns * 1.05,
            "ours {} vs greedy {}",
            ours.makespan_ns,
            greedy.makespan_ns
        );
    }

    #[test]
    fn ideal_makespan_scales_with_instances() {
        let program = simple_kernel(64, 64);
        let tree = LoopTree::build(&program).unwrap();
        let cost = AnalyticCost::new(&program);
        let ideal = ideal_makespan(&tree, &cost);
        // 64·64 instances × 5 ns + (64 + 64·64) iterations × 2 ns.
        let expected = 4096.0 * 5.0 + (64.0 + 4096.0) * 2.0;
        assert!((ideal - expected).abs() < 1e-6, "ideal {ideal}");
    }

    #[test]
    fn makespan_at_least_ideal() {
        let program = simple_kernel(128, 128);
        let tree = LoopTree::build(&program).unwrap();
        let cost = AnalyticCost::new(&program);
        let single = Platform::default().with_cores(1);
        let out = optimize_app(
            &tree,
            &program,
            &single,
            &cost,
            &OptimizerOptions::default(),
        );
        let ideal = ideal_makespan(&tree, &cost);
        assert!(out.makespan_ns >= ideal * 0.999);
    }
}
