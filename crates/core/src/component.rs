//! Tilable components (§3.4): perfectly nested loop chains extracted from
//! the loop tree, with per-array access summaries used for canonical data
//! element ranges, buffer attributes and SPM sizing.

use crate::looptree::{LoopTree, LoopTreeNode};
use prem_ir::{AssignKind, Program, Statement};
use prem_polyhedral::{DepKind, Dependence, Interval, ReduceOp};
use std::collections::BTreeMap;

/// One tiled level of a component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompLevel {
    /// Loop id in the IR / loop tree.
    pub loop_id: usize,
    /// Source name.
    pub name: String,
    /// Iteration count `N` (counter space `0..N`).
    pub count: i64,
    /// Begin index of the source loop.
    pub begin: i64,
    /// Source stride.
    pub stride: i64,
    /// Whether tiles of this level may run on different thread groups.
    pub parallel: bool,
    /// Whether the level may be tiled with arbitrary tile sizes (`false`
    /// forces a single tile `K = N`).
    pub tilable: bool,
    /// Whether the level is sequential only because of reduction-marked
    /// dependences and becomes parallel once the accumulators are privatized
    /// (see [`Component::privatize_reductions`]). Disjoint from `parallel`.
    pub reduction_parallel: bool,
}

/// R/W attribute of a streaming buffer (§5.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferAttr {
    /// Read-only: loaded, never written back.
    Ro,
    /// Write-only: never loaded, written back.
    Wo,
    /// Read-write: loaded and written back.
    Rw,
}

/// Contribution of one access to one array dimension: coefficients on the
/// component-level counters plus the interval contributed by everything else
/// (constant, fixed outer counters at a representative value, and deeper
/// private counters at their full ranges).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimContrib {
    /// Coefficient per component level (outermost first).
    pub comp_coeffs: Vec<i64>,
    /// Guard-tightened counter bounds of the access's statement at each
    /// component level: the access only happens inside these (e.g. the
    /// `t > 0` guard of the LSTM recurrence, or `p == 0` initializations).
    pub level_bounds: Vec<Interval>,
    /// Base interval from non-component terms.
    pub base: Interval,
}

impl DimContrib {
    /// Index interval of this contribution when the component counters range
    /// over the given per-level intervals; empty if the guards exclude the
    /// whole tile.
    pub fn bounds(&self, level_ranges: &[Interval]) -> Interval {
        let mut acc = self.base;
        for ((c, r), g) in self
            .comp_coeffs
            .iter()
            .zip(level_ranges)
            .zip(&self.level_bounds)
        {
            let clipped = r.intersect(g);
            if clipped.is_empty() {
                return Interval::empty();
            }
            if *c != 0 {
                acc = acc + clipped.scale(*c);
            }
        }
        acc
    }
}

/// Contribution of a fixed outer loop to an array dimension's canonical
/// range: the scheduler pins the loop at its lower bound `lo`; the machine
/// simulator shifts the range by `coeff · (value − lo)` per outer iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OuterTerm {
    /// Outer loop id.
    pub loop_id: usize,
    /// Coefficient of the loop's counter in the index expression.
    pub coeff: i64,
    /// Lower bound the scheduler pinned the counter at.
    pub lo: i64,
}

/// Per-array access summary within a component.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayUse {
    /// Array id in the program.
    pub array: prem_ir::ArrayId,
    /// Array name.
    pub name: String,
    /// Array shape.
    pub dims: Vec<i64>,
    /// Element size in bytes.
    pub elem_bytes: i64,
    /// Buffer attribute.
    pub attr: BufferAttr,
    /// Per array dimension, the contributions of every access.
    pub contribs: Vec<Vec<DimContrib>>,
    /// Component levels whose tile index influences this array's canonical
    /// range (per level: true if some contribution has a non-zero
    /// coefficient there).
    pub affected_by: Vec<bool>,
    /// Per array dimension, the outer-loop terms shared by every access
    /// (ranges shift rigidly with outer iterations).
    pub outer_terms: Vec<Vec<OuterTerm>>,
    /// `false` if accesses disagree on outer-loop coefficients, in which case
    /// canonical ranges are only valid for the scheduler's pinned outer
    /// values and the machine simulator must reject the program.
    pub outer_uniform: bool,
    /// `Some(op)` when the array is a reduction accumulator that each thread
    /// group updates privately; partials are merged with `op` in an explicit
    /// combine phase. Set by [`Component::privatize_reductions`].
    pub privatized: Option<ReduceOp>,
}

impl ArrayUse {
    /// Canonical data element range (§5.3.1) of the array when component
    /// counters range over `level_ranges`: the rectangular hull across all
    /// accesses.
    pub fn canonical_range(&self, level_ranges: &[Interval]) -> Vec<Interval> {
        self.contribs
            .iter()
            .map(|dim| {
                let mut hull = Interval::empty();
                for c in dim {
                    hull = hull.hull(&c.bounds(level_ranges));
                }
                hull
            })
            .collect()
    }
}

/// Per-statement work summary used by analytic execution-cost providers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StmtWork {
    /// Statement id.
    pub stmt: usize,
    /// Worst-case instances of the statement per single iteration of the
    /// innermost component level (product of folded deeper loop spans).
    pub instances_per_iter: u64,
    /// Arithmetic operations per instance.
    pub ops_per_instance: u64,
}

/// A tilable component: the unit the optimizer schedules (§3.4).
#[derive(Debug, Clone)]
pub struct Component {
    /// Kernel name (for diagnostics).
    pub kernel: String,
    /// Tiled levels, outermost first.
    pub levels: Vec<CompLevel>,
    /// Ids of all statements inside the component (including folded loops).
    pub stmts: Vec<usize>,
    /// Execution count `I` of the component (the first level's `l.I`).
    pub exec_count: u64,
    /// Arrays accessed, with canonical-range machinery.
    pub arrays: Vec<ArrayUse>,
    /// Active intra-component dependences, with `shared`-position of each
    /// component level precomputed.
    pub deps: Vec<ComponentDep>,
    /// Work summaries for cost providers.
    pub work: Vec<StmtWork>,
    /// Loop iterations executed by folded (sub-leaf) loops per single
    /// iteration of the innermost component level — their control overhead
    /// belongs to `W`.
    pub folded_iters_per_iter: u64,
}

/// A dependence restricted to a component: the distance interval per
/// component level.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentDep {
    /// Array involved.
    pub array: prem_ir::ArrayId,
    /// Dependence kind.
    pub kind: DepKind,
    /// Distance interval per component level (outermost first); `[0,0]` when
    /// the level is beyond the dependence's shared prefix.
    pub dist: Vec<Interval>,
    /// Reduction marker inherited from the underlying [`Dependence`]: the
    /// dependence only chains associative-commutative updates of the same
    /// accumulator and may be ignored once that accumulator is privatized.
    pub reduction: Option<ReduceOp>,
}

impl ComponentDep {
    /// The outermost component level with a (possibly) non-zero distance, or
    /// `None` when the dependence stays within a single innermost iteration.
    pub fn carry_level(&self) -> Option<usize> {
        self.dist.iter().position(|d| !d.is_zero())
    }
}

impl Component {
    /// Extracts a component from a perfect chain of loop-tree nodes
    /// (outermost first). The chain must be non-empty; everything below the
    /// last node is folded into the leaf.
    ///
    /// # Panics
    ///
    /// Panics if `chain` is empty.
    pub fn extract(tree: &LoopTree, program: &Program, chain: &[&LoopTreeNode]) -> Component {
        assert!(!chain.is_empty(), "component chain must be non-empty");
        let levels: Vec<CompLevel> = chain
            .iter()
            .map(|n| CompLevel {
                loop_id: n.loop_id,
                name: n.name.clone(),
                count: n.count,
                begin: n.begin,
                stride: n.stride,
                parallel: n.parallel,
                tilable: n.tilable,
                reduction_parallel: n.reduction_parallel,
            })
            .collect();
        let stmts = chain.last().unwrap().subtree_stmts();
        let exec_count = chain[0].exec_count;

        // Active dependences restricted to component levels.
        let active = tree.active_deps(chain[0].loop_id, &stmts);
        let deps: Vec<ComponentDep> = active
            .iter()
            .map(|d| ComponentDep {
                array: d.array,
                kind: d.kind,
                reduction: d.reduction,
                dist: levels
                    .iter()
                    .map(|lv| {
                        d.level_of(lv.loop_id)
                            .map(|p| d.dist_at(p))
                            .unwrap_or(Interval::zero())
                    })
                    .collect(),
            })
            .collect();

        let statements = collect_statements(program);
        let arrays = build_array_uses(tree, program, &stmts, &levels, &statements, &active);
        let work = build_work(tree, &stmts, &levels, &statements);
        let mut folded = 0u64;
        fn count_folded(nodes: &[LoopTreeNode], mult: u64, acc: &mut u64) {
            for n in nodes {
                let per_parent = mult.saturating_mul(n.count as u64);
                *acc = acc.saturating_add(per_parent);
                count_folded(&n.children, per_parent, acc);
            }
        }
        count_folded(&chain.last().unwrap().children, 1, &mut folded);

        Component {
            kernel: program.name.clone(),
            levels,
            stmts,
            exec_count,
            arrays,
            deps,
            work,
            folded_iters_per_iter: folded,
        }
    }

    /// Number of levels `L`.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Privatizes reduction accumulators: every `reduction_parallel` level
    /// becomes `parallel`, and the arrays whose reduction-marked dependences
    /// carried at those levels are marked [`ArrayUse::privatized`] with their
    /// combine operator. Returns `true` if anything was privatized.
    ///
    /// Legality rests on the loop-tree analysis: `reduction_parallel` is set
    /// only when *every* dependence blocking the level is reduction-marked.
    /// Callers must then pay for the transformation — per-group private
    /// accumulator copies (SPM space) and an explicit combine phase that
    /// merges the partials with the operator (see `ComponentAnalysis`).
    pub fn privatize_reductions(&mut self) -> bool {
        let red: Vec<usize> = (0..self.levels.len())
            .filter(|&j| self.levels[j].reduction_parallel && !self.levels[j].parallel)
            .collect();
        if red.is_empty() {
            return false;
        }
        let mut ops: BTreeMap<prem_ir::ArrayId, ReduceOp> = BTreeMap::new();
        for d in &self.deps {
            let Some(op) = d.reduction else { continue };
            let Some(c) = d.carry_level() else { continue };
            if !red.contains(&c) {
                continue;
            }
            if let Some(prev) = ops.insert(d.array, op) {
                if prev != op {
                    // Conflicting combine operators on one accumulator: the
                    // partials cannot be merged with a single op — refuse.
                    return false;
                }
            }
        }
        if ops.is_empty() {
            return false;
        }
        for j in red {
            self.levels[j].parallel = true;
        }
        for a in &mut self.arrays {
            if let Some(&op) = ops.get(&a.array) {
                a.privatized = Some(op);
            }
        }
        true
    }

    /// Worst-case arithmetic work per innermost component iteration.
    pub fn ops_per_innermost_iter(&self) -> u64 {
        self.work
            .iter()
            .map(|w| w.instances_per_iter * w.ops_per_instance.max(1))
            .sum()
    }
}

/// Collects statement references indexed by id.
pub(crate) fn collect_statements(program: &Program) -> Vec<Statement> {
    let mut v: Vec<Option<Statement>> = vec![None; program.stmt_count];
    program.visit_statements(|s, _, _| {
        v[s.id] = Some(s.clone());
    });
    v.into_iter()
        .map(|s| s.expect("statement present"))
        .collect()
}

fn build_work(
    tree: &LoopTree,
    stmts: &[usize],
    levels: &[CompLevel],
    statements: &[Statement],
) -> Vec<StmtWork> {
    let innermost = levels.last().expect("non-empty chain").loop_id;
    stmts
        .iter()
        .map(|&sid| {
            let poly = &tree.stmts[sid];
            let inner_pos = poly
                .loops
                .iter()
                .position(|l| l.var == innermost)
                .expect("statement under component levels");
            let bounds = poly.tightened_bounds();
            let mut inst = 1u64;
            for b in &bounds[inner_pos + 1..] {
                inst = inst.saturating_mul(b.len());
            }
            StmtWork {
                stmt: sid,
                instances_per_iter: inst,
                ops_per_instance: statements[sid].op_count(),
            }
        })
        .collect()
}

fn build_array_uses(
    tree: &LoopTree,
    program: &Program,
    stmts: &[usize],
    levels: &[CompLevel],
    statements: &[Statement],
    active: &[&Dependence],
) -> Vec<ArrayUse> {
    #[derive(Default)]
    struct Acc {
        contribs: Vec<Vec<DimContrib>>,
        read: bool,
        written: bool,
        read_hull: Vec<Interval>,
        write_hulls: Vec<(usize, Vec<Interval>)>, // (stmt id, hull)
        outer_terms: Vec<Vec<OuterTerm>>,
        outer_uniform: bool,
        outer_seen: bool,
    }
    let mut per_array: BTreeMap<usize, Acc> = BTreeMap::new();

    for &sid in stmts {
        let poly = &tree.stmts[sid];
        let bounds = poly.tightened_bounds();
        // Position of each component level within this statement's loop list.
        let level_pos: Vec<usize> = levels
            .iter()
            .map(|lv| {
                poly.loops
                    .iter()
                    .position(|l| l.var == lv.loop_id)
                    .expect("component level encloses statement")
            })
            .collect();
        let comp_start_pos = level_pos[0];

        for acc in &poly.accesses {
            let entry = per_array.entry(acc.array).or_default();
            let ndims = acc.indices.len();
            if entry.contribs.is_empty() {
                entry.contribs = vec![Vec::new(); ndims];
                entry.read_hull = vec![Interval::empty(); ndims];
                entry.outer_terms = vec![Vec::new(); ndims];
                entry.outer_uniform = true;
            }
            let level_bounds: Vec<Interval> = level_pos.iter().map(|&lp| bounds[lp]).collect();
            let mut full_hull = Vec::with_capacity(ndims);
            for (d, idx) in acc.indices.iter().enumerate() {
                let mut comp_coeffs = vec![0i64; levels.len()];
                let mut base = Interval::point(idx.constant_term());
                let mut full = base;
                let mut outer = Vec::new();
                for (pos, b) in bounds.iter().enumerate() {
                    let c = idx.coeff(pos);
                    if c == 0 {
                        continue;
                    }
                    if let Some(j) = level_pos.iter().position(|&lp| lp == pos) {
                        comp_coeffs[j] = c;
                        full = full + b.scale(c);
                        continue;
                    }
                    if pos < comp_start_pos {
                        // Fixed outer counter: representative value (shapes
                        // are identical across outer iterations as long as
                        // every access agrees on the coefficient).
                        base = base.shift(c * b.lo);
                        full = full.shift(c * b.lo);
                        outer.push(OuterTerm {
                            loop_id: poly.loops[pos].var,
                            coeff: c,
                            lo: b.lo,
                        });
                    } else {
                        // Deeper (folded / private) counter: full range.
                        base = base + b.scale(c);
                        full = full + b.scale(c);
                    }
                }
                if entry.outer_seen {
                    if entry.outer_terms[d] != outer {
                        entry.outer_uniform = false;
                    }
                } else {
                    entry.outer_terms[d] = outer;
                }
                entry.contribs[d].push(DimContrib {
                    comp_coeffs,
                    level_bounds: level_bounds.clone(),
                    base,
                });
                full_hull.push(full);
            }
            entry.outer_seen = true;
            if acc.is_write {
                entry.written = true;
                entry.write_hulls.push((sid, full_hull));
            } else {
                entry.read = true;
                for (h, f) in entry.read_hull.iter_mut().zip(&full_hull) {
                    *h = h.hull(f);
                }
            }
        }
    }

    per_array
        .into_iter()
        .map(|(array, acc)| {
            let decl = program.array(array);
            let attr = classify(
                array,
                &acc.read_hull,
                &acc.write_hulls,
                acc.read,
                acc.written,
                statements,
                active,
            );
            let affected_by = (0..levels.len())
                .map(|j| {
                    acc.contribs
                        .iter()
                        .any(|dim| dim.iter().any(|c| c.comp_coeffs[j] != 0))
                })
                .collect();
            ArrayUse {
                array,
                name: decl.name.clone(),
                dims: decl.dims.clone(),
                elem_bytes: decl.elem.size_bytes(),
                attr,
                contribs: acc.contribs,
                affected_by,
                outer_terms: acc.outer_terms,
                outer_uniform: acc.outer_uniform,
                privatized: None,
            }
        })
        .collect()
}

/// Buffer attribute classification (§5.3.2): RO if never written; WO if never
/// read, or if a covering first-write exists (an `=` statement whose write
/// hull covers every read and that no read precedes); RW otherwise.
fn classify(
    array: usize,
    read_hull: &[Interval],
    write_hulls: &[(usize, Vec<Interval>)],
    read: bool,
    written: bool,
    statements: &[Statement],
    active: &[&Dependence],
) -> BufferAttr {
    if !written {
        return BufferAttr::Ro;
    }
    if !read {
        return BufferAttr::Wo;
    }
    // Look for a covering Assign statement W.
    for (sid, hull) in write_hulls {
        let stmt = &statements[*sid];
        if stmt.kind != AssignKind::Assign || stmt.target.array != array {
            continue;
        }
        // W must not read the array itself.
        if stmt.rhs.loads().iter().any(|a| a.array == array) {
            continue;
        }
        // Coverage: W's write hull contains the hull of all reads.
        let covers = read_hull
            .iter()
            .zip(hull)
            .all(|(r, w)| r.is_empty() || (w.lo <= r.lo && r.hi <= w.hi));
        if !covers {
            continue;
        }
        // No read of the array may precede W's write of the same element:
        // no active anti dependence on this array into W.
        let preceded = active
            .iter()
            .any(|d| d.array == array && d.kind == DepKind::Anti && d.dst == *sid);
        if !preceded {
            return BufferAttr::Wo;
        }
    }
    BufferAttr::Rw
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_ir::{CmpOp, Cond, ElemType, Expr, IdxExpr, ProgramBuilder};

    /// LSTM-like component kernel:
    /// for t { for s1 { for p { if(p==0) i[s1]=0; i[s1]+=U[s1][p]*inp[t][p] } } }
    fn lstm_component_kernel(nt: i64, ns: i64, np: i64) -> (Program, LoopTree) {
        let mut b = ProgramBuilder::new("lstmish");
        let i_arr = b.array("i", vec![ns], ElemType::F32);
        let u = b.array("U", vec![ns, np], ElemType::F32);
        let inp = b.array("inp", vec![nt, np], ElemType::F32);
        let t = b.begin_loop("t", 0, 1, nt);
        let s1 = b.begin_loop("s1", 0, 1, ns);
        let p = b.begin_loop("p", 0, 1, np);
        b.begin_if(Cond::atom(IdxExpr::var(p), CmpOp::Eq));
        b.stmt(
            i_arr,
            vec![IdxExpr::var(s1)],
            AssignKind::Assign,
            Expr::Const(0.0),
        );
        b.end_if();
        b.stmt(
            i_arr,
            vec![IdxExpr::var(s1)],
            AssignKind::AddAssign,
            Expr::mul(
                Expr::load(u, vec![IdxExpr::var(s1), IdxExpr::var(p)]),
                Expr::load(inp, vec![IdxExpr::var(t), IdxExpr::var(p)]),
            ),
        );
        b.end_loop();
        b.end_loop();
        let _ = t;
        b.end_loop();
        let program = b.finish();
        let tree = LoopTree::build(&program).unwrap();
        (program, tree)
    }

    fn extract_s1_p(program: &Program, tree: &LoopTree) -> Component {
        let t = &tree.roots[0];
        let s1 = &t.children[0];
        let p = &s1.children[0];
        Component::extract(tree, program, &[s1, p])
    }

    #[test]
    fn component_structure() {
        let (program, tree) = lstm_component_kernel(10, 650, 700);
        let comp = extract_s1_p(&program, &tree);
        assert_eq!(comp.depth(), 2);
        assert_eq!(comp.levels[0].name, "s1");
        assert!(comp.levels[0].parallel);
        assert!(!comp.levels[1].parallel);
        // p is blocked by init↔update dependences (the `p == 0` init re-runs
        // at every t, so it is not a pinned init): not reduction-parallel.
        assert!(!comp.levels[1].reduction_parallel);
        assert!(!comp.clone().privatize_reductions());
        assert_eq!(comp.exec_count, 10);
        assert_eq!(comp.stmts, vec![0, 1]);
    }

    /// Row-sum kernel with a pinned init:
    /// for i { for j { if(j==0) acc[i]=0; acc[i] += x[i][j] } }
    #[test]
    fn privatize_reductions_flips_reduction_levels() {
        let mut b = ProgramBuilder::new("rowsum");
        let acc = b.array("acc", vec![64], ElemType::F32);
        let x = b.array("x", vec![64, 128], ElemType::F32);
        let i = b.begin_loop("i", 0, 1, 64);
        let j = b.begin_loop("j", 0, 1, 128);
        b.begin_if(Cond::atom(IdxExpr::var(j), CmpOp::Eq));
        b.stmt(
            acc,
            vec![IdxExpr::var(i)],
            AssignKind::Assign,
            Expr::Const(0.0),
        );
        b.end_if();
        b.stmt(
            acc,
            vec![IdxExpr::var(i)],
            AssignKind::AddAssign,
            Expr::load(x, vec![IdxExpr::var(i), IdxExpr::var(j)]),
        );
        b.end_loop();
        b.end_loop();
        let program = b.finish();
        let tree = LoopTree::build(&program).unwrap();
        let i_node = &tree.roots[0];
        let j_node = &i_node.children[0];
        let mut comp = Component::extract(&tree, &program, &[i_node, j_node]);

        assert!(comp.levels[0].parallel);
        assert!(!comp.levels[1].parallel);
        assert!(comp.levels[1].reduction_parallel);
        assert!(comp.deps.iter().any(|d| d.reduction == Some(ReduceOp::Add)));

        assert!(comp.privatize_reductions());
        assert!(comp.levels[1].parallel);
        let a = comp.arrays.iter().find(|a| a.name == "acc").unwrap();
        assert_eq!(a.privatized, Some(ReduceOp::Add));
        let xs = comp.arrays.iter().find(|a| a.name == "x").unwrap();
        assert_eq!(xs.privatized, None);
    }

    #[test]
    fn buffer_attributes_match_paper() {
        let (program, tree) = lstm_component_kernel(10, 650, 700);
        let comp = extract_s1_p(&program, &tree);
        let by_name = |n: &str| comp.arrays.iter().find(|a| a.name == n).unwrap();
        // i is written first (p == 0) then accumulated: WO per §3.5.
        assert_eq!(by_name("i").attr, BufferAttr::Wo);
        assert_eq!(by_name("U").attr, BufferAttr::Ro);
        assert_eq!(by_name("inp").attr, BufferAttr::Ro);
    }

    #[test]
    fn canonical_ranges_match_listing_3_2() {
        let (program, tree) = lstm_component_kernel(10, 650, 700);
        let comp = extract_s1_p(&program, &tree);
        // Tile s1 ∈ [0,108], p ∈ [0,349] — the seg_{0,1} of Table 3.1.
        let ranges = [Interval::new(0, 108), Interval::new(0, 349)];
        let u = comp.arrays.iter().find(|a| a.name == "U").unwrap();
        assert_eq!(
            u.canonical_range(&ranges),
            vec![Interval::new(0, 108), Interval::new(0, 349)]
        );
        let i = comp.arrays.iter().find(|a| a.name == "i").unwrap();
        assert_eq!(i.canonical_range(&ranges), vec![Interval::new(0, 108)]);
        // inp's first dim is the fixed outer t: extent 1.
        let inp = comp.arrays.iter().find(|a| a.name == "inp").unwrap();
        let r = inp.canonical_range(&ranges);
        assert_eq!(r[0].len(), 1);
        assert_eq!(r[1], Interval::new(0, 349));
    }

    #[test]
    fn affected_by_levels() {
        let (program, tree) = lstm_component_kernel(10, 650, 700);
        let comp = extract_s1_p(&program, &tree);
        let u = comp.arrays.iter().find(|a| a.name == "U").unwrap();
        assert_eq!(u.affected_by, vec![true, true]);
        let i = comp.arrays.iter().find(|a| a.name == "i").unwrap();
        assert_eq!(i.affected_by, vec![true, false]);
        let inp = comp.arrays.iter().find(|a| a.name == "inp").unwrap();
        assert_eq!(inp.affected_by, vec![false, true]);
    }

    #[test]
    fn component_deps_carry_at_p() {
        let (program, tree) = lstm_component_kernel(10, 650, 700);
        let comp = extract_s1_p(&program, &tree);
        assert!(!comp.deps.is_empty());
        for d in &comp.deps {
            assert!(d.dist[0].is_zero(), "all deps keep s1 fixed: {d:?}");
        }
        assert!(comp
            .deps
            .iter()
            .any(|d| d.carry_level() == Some(1) && d.dist[1].lo >= 1));
    }

    #[test]
    fn work_summary() {
        let (program, tree) = lstm_component_kernel(10, 650, 700);
        let comp = extract_s1_p(&program, &tree);
        // Both statements are at the innermost level: one instance per iter.
        for w in &comp.work {
            assert_eq!(w.instances_per_iter, 1);
        }
        // Stmt 1 has mul + implicit add = 2 ops.
        assert_eq!(comp.work[1].ops_per_instance, 2);
    }
}
