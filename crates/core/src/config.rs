//! Platform configuration and PREM API worst-case costs (§6.1, Table 6.1).

/// Worst-case execution times of the PREM API calls, in nanoseconds at 1 GHz
/// (Table 6.1, measured in the RTOS of Soliman et al. and normalized).
#[derive(Debug, Clone, PartialEq)]
pub struct ApiCosts {
    /// `allocate_buffer`
    pub allocate_buffer: f64,
    /// `dispatch`
    pub dispatch: f64,
    /// DMA interrupt handler, charged once per DMA transfer.
    pub dma_int_handler: f64,
    /// `allocate`
    pub allocate: f64,
    /// `end_segment`
    pub end_segment: f64,
    /// `deallocate`
    pub deallocate: f64,
    /// `allocate2d`
    pub allocate2d: f64,
    /// `deallocate_buffer`
    pub deallocate_buffer: f64,
    /// `swap_buffer` (1-D)
    pub swap_buffer: f64,
    /// `swap2d_buffer` — also used for `swapnd_buffer`, which §6.1 assumes
    /// has the same cost due to structural similarity.
    pub swap2d_buffer: f64,
}

impl Default for ApiCosts {
    fn default() -> Self {
        ApiCosts {
            allocate_buffer: 1139.0,
            dispatch: 861.0,
            dma_int_handler: 1187.0,
            allocate: 1503.0,
            end_segment: 1878.0,
            deallocate: 861.0,
            allocate2d: 1103.0,
            deallocate_buffer: 776.0,
            swap_buffer: 1914.0,
            swap2d_buffer: 1248.0,
        }
    }
}

impl ApiCosts {
    /// Cost of a swap call for data of the given array dimensionality
    /// (`swap_buffer` for 1-D, `swap2d_buffer`/`swapnd_buffer` otherwise).
    pub fn swap_cost(&self, ndims: usize) -> f64 {
        if ndims <= 1 {
            self.swap_buffer
        } else {
            self.swap2d_buffer
        }
    }
}

/// Target platform parameters (§6.1 defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Number of processing cores `P`.
    pub cores: usize,
    /// Core frequency in Hz (1 GHz default; times are reported in ns, so one
    /// cycle is one ns at the default frequency).
    pub freq_hz: f64,
    /// Per-core SPM size in bytes (both streaming partitions together).
    pub spm_bytes: i64,
    /// Main-memory data access granularity `sizeof(G)` in bytes (one burst).
    pub granularity_bytes: i64,
    /// DMA per-data-line overhead `T_DMA^overhead` in ns.
    pub dma_line_overhead_ns: f64,
    /// Bus bandwidth in bytes per second.
    pub bus_bytes_per_sec: f64,
    /// API call costs.
    pub api: ApiCosts,
}

impl Default for Platform {
    fn default() -> Self {
        Platform {
            cores: 8,
            freq_hz: 1.0e9,
            spm_bytes: 128 * 1024,
            granularity_bytes: 64,
            dma_line_overhead_ns: 40.0,
            bus_bytes_per_sec: 16.0e9,
            api: ApiCosts::default(),
        }
    }
}

impl Platform {
    /// Returns a copy with the bus speed set in GiB-per-second-style GB/s
    /// (the paper sweeps 1/16 … 16 GByte/s).
    pub fn with_bus_gbytes(mut self, gbytes_per_sec: f64) -> Self {
        self.bus_bytes_per_sec = gbytes_per_sec * 1.0e9;
        self
    }

    /// Returns a copy with the given per-core SPM size in bytes.
    pub fn with_spm_bytes(mut self, bytes: i64) -> Self {
        self.spm_bytes = bytes;
        self
    }

    /// Returns a copy with the given core count.
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Bus time per burst transfer, `T_BUS^overhead · sizeof(G)` in ns.
    pub fn bus_ns_per_burst(&self) -> f64 {
        self.granularity_bytes as f64 / self.bus_bytes_per_sec * 1.0e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = Platform::default();
        assert_eq!(p.cores, 8);
        assert_eq!(p.spm_bytes, 131072);
        assert_eq!(p.granularity_bytes, 64);
        assert_eq!(p.dma_line_overhead_ns, 40.0);
        // 16 GB/s → 0.0625 ns/byte → 4 ns per 64-byte burst.
        assert!((p.bus_ns_per_burst() - 4.0).abs() < 1e-12);
        assert_eq!(p.api.swap_cost(1), 1914.0);
        assert_eq!(p.api.swap_cost(3), 1248.0);
    }

    #[test]
    fn builder_helpers() {
        let p = Platform::default()
            .with_bus_gbytes(0.5)
            .with_spm_bytes(64 * 1024)
            .with_cores(4);
        assert_eq!(p.bus_bytes_per_sec, 0.5e9);
        assert_eq!(p.spm_bytes, 65536);
        assert_eq!(p.cores, 4);
    }
}
