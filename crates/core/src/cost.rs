//! Execution-cost providers.
//!
//! The optimizer needs an [`ExecModel`] per component (§4.2). The paper
//! obtains it by profiling the kernel on gem5 and fitting the analytic model;
//! in this reproduction the `prem-sim` crate plays the role of gem5 and the
//! fitting lives in [`crate::timing::fit_exec_model`]. [`AnalyticCost`] is
//! the deterministic fallback that derives the model directly from the IR's
//! operation counts — handy for tests and for the ideal-case baseline.

use crate::component::Component;
use crate::timing::ExecModel;

/// Supplies execution-time models and per-statement instance costs.
pub trait CostProvider {
    /// The execution model of one component (per-level iteration overheads
    /// and innermost worst-case time, in ns).
    fn exec_model(&self, component: &Component) -> ExecModel;

    /// Worst-case time of a single instance of statement `stmt` in ns (used
    /// for statements outside any tilable component).
    fn stmt_instance_ns(&self, stmt: usize) -> f64;

    /// Control overhead of one loop iteration in ns (used by the ideal
    /// single-core baseline).
    fn loop_iter_ns(&self) -> f64;
}

/// A deterministic cost model derived from IR operation counts: every
/// arithmetic operation costs `ns_per_op`, every statement instance pays
/// `instance_overhead_ns`, every loop iteration pays `loop_overhead_ns`.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticCost {
    /// ns per arithmetic operation (including the implied loads/stores).
    pub ns_per_op: f64,
    /// ns of control overhead per loop iteration at every level.
    pub loop_overhead_ns: f64,
    /// ns of fixed overhead per statement instance.
    pub instance_overhead_ns: f64,
    /// Operation count per statement id.
    ops: Vec<u64>,
}

impl AnalyticCost {
    /// Builds the provider for a program with default in-order-core-like
    /// constants (2 ns/op, 2 ns/iteration, 1 ns/instance at 1 GHz).
    pub fn new(program: &prem_ir::Program) -> Self {
        Self::with_params(program, 2.0, 2.0, 1.0)
    }

    /// Builds the provider with explicit constants.
    pub fn with_params(
        program: &prem_ir::Program,
        ns_per_op: f64,
        loop_overhead_ns: f64,
        instance_overhead_ns: f64,
    ) -> Self {
        let mut ops = vec![0u64; program.stmt_count];
        program.visit_statements(|s, _, _| {
            ops[s.id] = s.op_count();
        });
        AnalyticCost {
            ns_per_op,
            loop_overhead_ns,
            instance_overhead_ns,
            ops,
        }
    }
}

impl CostProvider for AnalyticCost {
    fn exec_model(&self, component: &Component) -> ExecModel {
        let w: f64 = component
            .work
            .iter()
            .map(|wk| {
                wk.instances_per_iter as f64
                    * (wk.ops_per_instance as f64 * self.ns_per_op + self.instance_overhead_ns)
            })
            .sum::<f64>()
            + component.folded_iters_per_iter as f64 * self.loop_overhead_ns;
        ExecModel {
            o: vec![self.loop_overhead_ns; component.depth()],
            w,
        }
    }

    fn stmt_instance_ns(&self, stmt: usize) -> f64 {
        self.ops.get(stmt).copied().unwrap_or(0) as f64 * self.ns_per_op + self.instance_overhead_ns
    }

    fn loop_iter_ns(&self) -> f64 {
        self.loop_overhead_ns
    }
}

/// A cost provider that returns precomputed (e.g. profiled and fitted) models
/// per component, keyed by the component's innermost loop id, with a fallback
/// provider for anything unknown.
#[derive(Debug, Clone)]
pub struct FittedCost<F> {
    /// Map from innermost-level loop id to a fitted model.
    pub models: std::collections::BTreeMap<usize, ExecModel>,
    /// Fallback provider.
    pub fallback: F,
}

impl<F: CostProvider> CostProvider for FittedCost<F> {
    fn exec_model(&self, component: &Component) -> ExecModel {
        let key = component
            .levels
            .last()
            .expect("non-empty component")
            .loop_id;
        match self.models.get(&key) {
            Some(m) if m.o.len() == component.depth() => m.clone(),
            _ => self.fallback.exec_model(component),
        }
    }

    fn stmt_instance_ns(&self, stmt: usize) -> f64 {
        self.fallback.stmt_instance_ns(stmt)
    }

    fn loop_iter_ns(&self) -> f64 {
        self.fallback.loop_iter_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::looptree::LoopTree;
    use prem_ir::{AssignKind, ElemType, Expr, IdxExpr, ProgramBuilder};

    #[test]
    fn analytic_cost_from_ops() {
        let mut b = ProgramBuilder::new("k");
        let a = b.array("a", vec![16, 16], ElemType::F32);
        let x = b.array("x", vec![16, 16], ElemType::F32);
        let i = b.begin_loop("i", 0, 1, 16);
        let j = b.begin_loop("j", 0, 1, 16);
        b.stmt(
            a,
            vec![IdxExpr::var(i), IdxExpr::var(j)],
            AssignKind::AddAssign,
            Expr::mul(
                Expr::load(x, vec![IdxExpr::var(i), IdxExpr::var(j)]),
                Expr::Const(2.0),
            ),
        );
        b.end_loop();
        b.end_loop();
        let program = b.finish();
        let tree = LoopTree::build(&program).unwrap();
        let comp = crate::component::Component::extract(
            &tree,
            &program,
            &[&tree.roots[0], &tree.roots[0].children[0]],
        );
        let cost = AnalyticCost::new(&program);
        let m = cost.exec_model(&comp);
        // 2 ops (mul + implicit add) × 2 ns + 1 ns instance = 5 ns.
        assert!((m.w - 5.0).abs() < 1e-9);
        assert_eq!(m.o, vec![2.0, 2.0]);
        assert!((cost.stmt_instance_ns(0) - 5.0).abs() < 1e-9);
    }
}
