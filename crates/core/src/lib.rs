//! PREM compiler core: the primary contribution of *"Optimizing parallel
//! PREM compilation over nested loop structures"* (Gu & Pellizzoni,
//! DAC 2022).
//!
//! Given a nested-loop kernel in the [`prem_ir`] representation, this crate:
//!
//! 1. builds the **loop tree** application model with `parallel`/`tilable`
//!    legality flags ([`looptree`], §3.3, §5.2.1);
//! 2. extracts **tilable components** with per-array canonical-range
//!    machinery and buffer attributes ([`component`], §3.4, §5.3);
//! 3. lays out the **parallel streaming PREM schedule** — segments,
//!    `SegmentToSwap`, double-buffered memory batches on a round-robin DMA
//!    ([`tiling`], [`segments`], §3.5);
//! 4. evaluates the schedule's **makespan** through a phase-DAG longest path
//!    ([`schedule`], §4.2) with execution/memory **timing models**
//!    ([`timing`]);
//! 5. searches for the best tile sizes and thread-group assignments with the
//!    paper's **heuristic** (Algorithm 1, [`optimizer`]) composed over the
//!    loop tree (Algorithm 2, [`app`]), alongside the **greedy** baseline
//!    and an **exhaustive** validator.
//!
//! # Example
//!
//! ```
//! use prem_core::{ideal_makespan, optimize_app, AnalyticCost, LoopTree, OptimizerOptions, Platform};
//! use prem_ir::{AssignKind, ElemType, Expr, IdxExpr, ProgramBuilder};
//!
//! // y[i][j] += 2 * x[i][j]
//! let mut b = ProgramBuilder::new("scale");
//! let x = b.array("x", vec![128, 128], ElemType::F32);
//! let y = b.array("y", vec![128, 128], ElemType::F32);
//! let i = b.begin_loop("i", 0, 1, 128);
//! let j = b.begin_loop("j", 0, 1, 128);
//! b.stmt(
//!     y,
//!     vec![IdxExpr::var(i), IdxExpr::var(j)],
//!     AssignKind::AddAssign,
//!     Expr::mul(Expr::load(x, vec![IdxExpr::var(i), IdxExpr::var(j)]), Expr::Const(2.0)),
//! );
//! b.end_loop();
//! b.end_loop();
//! let program = b.finish();
//!
//! let tree = LoopTree::build(&program).unwrap();
//! let cost = AnalyticCost::new(&program);
//! let out = optimize_app(&tree, &program, &Platform::default(), &cost, &OptimizerOptions::default());
//! assert!(out.makespan_ns >= ideal_makespan(&tree, &cost) / 8.0);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod app;
pub mod component;
pub mod config;
pub mod cost;
pub mod looptree;
pub mod multilevel;
pub mod multitask;
pub mod optimizer;
pub mod schedule;
pub mod segments;
pub mod tiling;
pub mod timing;

pub use analysis::{
    fast_makespan, makespan_only_batch, AnalysisCache, BatchScratch, CacheAudit, CacheLookup,
    CombineXfer, ComponentAnalysis, CoordinateDelta, CoreAnalysis, FastEval, MakespanScratch,
    ScanStats, SwapEntry, SOA_LANES,
};
pub use app::{
    greedy_component, ideal_makespan, optimize_app, optimize_app_greedy, optimize_app_timed,
    AppOutcome, ComponentReport,
};
pub use component::{
    ArrayUse, BufferAttr, CompLevel, Component, ComponentDep, OuterTerm, StmtWork,
};
pub use config::{ApiCosts, Platform};
pub use cost::{AnalyticCost, CostProvider, FittedCost};
pub use looptree::{LoopTree, LoopTreeNode};
pub use multilevel::{evaluate_two_level, evaluate_two_level_scan, TwoLevelConfig, TwoLevelResult};
pub use multitask::{analyze, PremTask, Schedulability, TaskResponse};
pub use optimizer::{
    find_minimum, nondominated_thread_groups, optimize_component, optimize_exhaustive,
    select_tile_sizes, MakespanEvaluator, OptimizeOutcome, OptimizerOptions, SearchEngine,
};
pub use schedule::{build_dag, evaluate, PhaseDag, PhaseNode, ScheduleResult};
pub use segments::{
    build_schedule, materialize_schedule, Batch, ComponentSchedule, CorePlan, MemOp,
};
pub use tiling::{Infeasible, Solution, TilePlan, SEGMENT_CAP};
pub use timing::{
    fit_exec_model, transfer_time_from_lines, transfer_time_ns, ExecModel, ExecSample,
    TransferShape,
};
