//! The loop tree application model (§3.3).
//!
//! The kernel is modelled as a tree of loops, each annotated with its
//! iteration count `N`, begin index, stride `S`, execution count `I`, and the
//! `parallel`/`tilable` legality flags derived from dependence analysis
//! (§5.2.1). Tilable components (§3.4) are maximal perfectly nested chains of
//! this tree, extracted by the application optimizer.

use prem_ir::{guarded_span, Cond, Node, Program};
use prem_polyhedral::{Dependence, StmtPoly};

/// One loop of the loop tree with the paper's annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopTreeNode {
    /// Global loop id (matches the IR loop id).
    pub loop_id: usize,
    /// Source name.
    pub name: String,
    /// Begin index `l.begin`.
    pub begin: i64,
    /// Stride `l.S`.
    pub stride: i64,
    /// Iteration count `l.N`.
    pub count: i64,
    /// Execution count `l.I` — how many times the loop (as a whole) runs.
    pub exec_count: u64,
    /// `l.parallel`: tiles over different iteration ranges may run on
    /// different threads.
    pub parallel: bool,
    /// Whether a rectangular band ending at this level may be tiled with
    /// arbitrary tile sizes (per-level distance non-negativity, §5.2.1).
    pub tilable: bool,
    /// The level is *not* parallel under the paper's rule, but every
    /// blocking dependence is reduction-marked: privatizing the accumulator
    /// per thread group (and combining partials afterwards) would make it
    /// parallel. Always computed; only acted on when the optimizer runs
    /// with `OptimizerOptions::reductions`. Disjoint from `parallel`.
    pub reduction_parallel: bool,
    /// Child loops.
    pub children: Vec<LoopTreeNode>,
    /// Statements whose innermost enclosing loop is this one (they live in
    /// this loop's body outside any child loop).
    pub own_stmts: Vec<usize>,
}

impl LoopTreeNode {
    /// All statement ids in this subtree.
    pub fn subtree_stmts(&self) -> Vec<usize> {
        let mut out = self.own_stmts.clone();
        for c in &self.children {
            out.extend(c.subtree_stmts());
        }
        out.sort_unstable();
        out
    }

    /// Returns `true` if the loop is perfectly nested onto its single child:
    /// exactly one child loop and no statements of its own.
    pub fn perfectly_nests(&self) -> bool {
        self.children.len() == 1 && self.own_stmts.is_empty()
    }
}

/// The loop tree of a kernel plus the analysis artifacts it was built from.
#[derive(Debug, Clone)]
pub struct LoopTree {
    /// Top-level loops, in textual order (`root(T)`).
    pub roots: Vec<LoopTreeNode>,
    /// Statements at the top level, outside any loop.
    pub root_stmts: Vec<usize>,
    /// Polyhedral statement summaries (indexed by statement id).
    pub stmts: Vec<StmtPoly>,
    /// All dependences of the kernel.
    pub deps: Vec<Dependence>,
}

impl LoopTree {
    /// Builds the loop tree for a program: structure and `I` from the IR,
    /// `parallel`/`tilable` flags from dependence analysis.
    ///
    /// # Errors
    ///
    /// Propagates [`prem_ir::LowerError`] if the program is malformed.
    pub fn build(program: &Program) -> Result<LoopTree, prem_ir::LowerError> {
        let stmts = prem_ir::lower(program)?;
        let hints = prem_ir::reduction_hints(program);
        let deps = prem_polyhedral::analyze_dependences_with(&stmts, &hints);
        Ok(Self::build_with(program, stmts, deps))
    }

    /// Builds the tree from precomputed analysis results.
    pub fn build_with(program: &Program, stmts: Vec<StmtPoly>, deps: Vec<Dependence>) -> LoopTree {
        let mut roots = Vec::new();
        let mut root_stmts = Vec::new();
        build_nodes(&program.body, &mut roots, &mut root_stmts);

        let mut tree = LoopTree {
            roots,
            root_stmts,
            stmts,
            deps,
        };
        // Annotate flags: walk each root chain tracking the current
        // component start (the topmost loop of the perfect chain containing
        // each node).
        let mut annotated = std::mem::take(&mut tree.roots);
        for r in &mut annotated {
            annotate(r, r.loop_id, &tree.deps);
        }
        tree.roots = annotated;
        tree
    }

    /// Finds a node by loop id.
    pub fn find(&self, loop_id: usize) -> Option<&LoopTreeNode> {
        fn walk(nodes: &[LoopTreeNode], id: usize) -> Option<&LoopTreeNode> {
            for n in nodes {
                if n.loop_id == id {
                    return Some(n);
                }
                if let Some(x) = walk(&n.children, id) {
                    return Some(x);
                }
            }
            None
        }
        walk(&self.roots, loop_id)
    }

    /// Dependences relevant *within one execution* of a component rooted at
    /// `component_start_loop`: both endpoints inside the component's subtree,
    /// and not carried strictly above the component (outer-carried
    /// dependences are barrier-separated between component executions).
    pub fn active_deps(
        &self,
        component_start_loop: usize,
        subtree_stmts: &[usize],
    ) -> Vec<&Dependence> {
        self.deps
            .iter()
            .filter(|d| {
                if !subtree_stmts.contains(&d.src) || !subtree_stmts.contains(&d.dst) {
                    return false;
                }
                let Some(start) = d.level_of(component_start_loop) else {
                    return false; // component loop not shared: defensive
                };
                prem_polyhedral::is_active_within(d, start)
            })
            .collect()
    }
}

/// Structural pass: builds nodes and computes `I` via guard-tightened spans
/// of enclosing loops. Guards met on the path restrict the spans of the
/// *enclosing* loops they reference (e.g. `if (t > 0)` makes `I = NT - 1`,
/// matching Figure 3.2).
fn build_nodes(nodes: &[Node], out: &mut Vec<LoopTreeNode>, out_stmts: &mut Vec<usize>) {
    fn walk(
        nodes: &[Node],
        conds: &mut Vec<Cond>,
        enclosing: &mut Vec<prem_ir::Loop>,
        path_conds: &mut Vec<Cond>,
        out: &mut Vec<LoopTreeNode>,
        out_stmts: &mut Vec<usize>,
    ) {
        for n in nodes {
            match n {
                Node::Loop(l) => {
                    // I of this loop = product of enclosing-loop spans
                    // tightened by every guard on the whole path.
                    let mut all_conds: Vec<&Cond> = path_conds.iter().collect();
                    all_conds.extend(conds.iter());
                    let mut exec_count = 1u64;
                    for el in enclosing.iter() {
                        exec_count = exec_count.saturating_mul(guarded_span(el, &all_conds));
                    }
                    let mut node = LoopTreeNode {
                        loop_id: l.id,
                        name: l.name.clone(),
                        begin: l.begin,
                        stride: l.stride,
                        count: l.count,
                        exec_count,
                        parallel: false,
                        tilable: false,
                        reduction_parallel: false,
                        children: Vec::new(),
                        own_stmts: Vec::new(),
                    };
                    enclosing.push(l.clone());
                    let saved: Vec<Cond> = std::mem::take(conds);
                    path_conds.extend(saved.iter().cloned());
                    let n_added = saved.len();
                    walk(
                        &l.body,
                        conds,
                        enclosing,
                        path_conds,
                        &mut node.children,
                        &mut node.own_stmts,
                    );
                    path_conds.truncate(path_conds.len() - n_added);
                    *conds = saved;
                    enclosing.pop();
                    out.push(node);
                }
                Node::If(i) => {
                    conds.push(i.cond.clone());
                    walk(&i.body, conds, enclosing, path_conds, out, out_stmts);
                    conds.pop();
                }
                Node::Stmt(s) => out_stmts.push(s.id),
            }
        }
    }
    let mut conds = Vec::new();
    let mut enclosing = Vec::new();
    let mut path_conds = Vec::new();
    walk(
        nodes,
        &mut conds,
        &mut enclosing,
        &mut path_conds,
        out,
        out_stmts,
    );
}

/// Flag pass: computes `parallel` and `tilable` per node. `comp_start` is the
/// loop id of the topmost loop of the perfect chain this node belongs to.
fn annotate(node: &mut LoopTreeNode, comp_start: usize, deps: &[Dependence]) {
    let subtree = node.subtree_stmts();
    let relevant: Vec<&Dependence> = deps
        .iter()
        .filter(|d| {
            subtree.contains(&d.src)
                && subtree.contains(&d.dst)
                && d.level_of(node.loop_id).is_some()
                // A dependence whose shared prefix does not reach the
                // component-start loop cannot be classified active or
                // inactive within one component execution, so it is
                // *excluded* from the legality filter (`false`, i.e. it
                // constrains nothing). For `lower`-produced inputs this is
                // unreachable: both endpoints live under `node`, hence both
                // loop chains contain the path root → comp_start → node and
                // the shared prefix includes comp_start. The fallback only
                // decides the behavior for hand-built dependence lists fed
                // through `build_with` — pinned by
                // `malformed_shared_prefix_dep_is_ignored`.
                && d.level_of(comp_start)
                    .map(|start| prem_polyhedral::is_active_within(d, start))
                    .unwrap_or(false)
        })
        .collect();

    let lvl_of = |d: &Dependence| d.level_of(node.loop_id).expect("filtered");
    node.tilable = relevant.iter().all(|d| {
        let iv = d.dist_at(lvl_of(d));
        iv.is_empty() || iv.lo >= 0
    });
    node.parallel = node.tilable
        && relevant.iter().all(|d| {
            let iv = d.dist_at(lvl_of(d));
            iv.is_empty() || iv.is_zero()
        });
    // Reduction-aware variant of the parallel rule: the level fails the
    // paper's zero-distance test, but only because of reduction-marked
    // dependences — every unmarked dependence is still zero/empty there.
    // Such a level becomes parallel once the accumulator is privatized
    // (`Component::privatize_reductions`). Computed unconditionally; inert
    // unless the optimizer opts in.
    node.reduction_parallel = node.tilable
        && !node.parallel
        && relevant.iter().all(|d| {
            let iv = d.dist_at(lvl_of(d));
            iv.is_empty() || iv.is_zero() || d.reduction.is_some()
        });
    // If the perfect nest continues into a single child, the child belongs
    // to the same component (same start); otherwise each child starts its
    // own component.
    let single_perfect = node.perfectly_nests();
    for child in &mut node.children {
        let start = if single_perfect {
            comp_start
        } else {
            child.loop_id
        };
        annotate(child, start, deps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_ir::{AssignKind, CmpOp, ElemType, Expr, IdxExpr, ProgramBuilder};
    use prem_polyhedral::Carry;

    /// Simplified LSTM-shaped kernel:
    /// for t { for s1 { for p { i[s1] (+)= U[s1][p]*inp[t][p] } }
    ///         if (t>0) { for b { c[t][b] = c[t-1][b] * i[b] } } }
    fn lstmish(nt: i64, ns: i64, np: i64) -> prem_ir::Program {
        let mut b = ProgramBuilder::new("lstmish");
        let i_arr = b.array("i", vec![ns], ElemType::F32);
        let u = b.array("U", vec![ns, np], ElemType::F32);
        let inp = b.array("inp", vec![nt, np], ElemType::F32);
        let c = b.array("c", vec![nt, ns], ElemType::F32);
        let t = b.begin_loop("t", 0, 1, nt);
        let s1 = b.begin_loop("s1", 0, 1, ns);
        let p = b.begin_loop("p", 0, 1, np);
        b.begin_if(prem_ir::Cond::atom(IdxExpr::var(p), CmpOp::Eq));
        b.stmt(
            i_arr,
            vec![IdxExpr::var(s1)],
            AssignKind::Assign,
            Expr::Const(0.0),
        );
        b.end_if();
        b.stmt(
            i_arr,
            vec![IdxExpr::var(s1)],
            AssignKind::AddAssign,
            Expr::mul(
                Expr::load(u, vec![IdxExpr::var(s1), IdxExpr::var(p)]),
                Expr::load(inp, vec![IdxExpr::var(t), IdxExpr::var(p)]),
            ),
        );
        b.end_loop();
        b.end_loop();
        b.begin_if(prem_ir::Cond::atom(IdxExpr::var(t), CmpOp::Gt));
        let bb = b.begin_loop("b", 0, 1, ns);
        b.stmt(
            c,
            vec![IdxExpr::var(t), IdxExpr::var(bb)],
            AssignKind::Assign,
            Expr::mul(
                Expr::load(c, vec![IdxExpr::var(t).plus_const(-1), IdxExpr::var(bb)]),
                Expr::load(i_arr, vec![IdxExpr::var(bb)]),
            ),
        );
        b.end_loop();
        b.end_if();
        b.end_loop();
        b.finish()
    }

    #[test]
    fn structure_and_exec_counts() {
        let p = lstmish(10, 6, 7);
        let tree = LoopTree::build(&p).unwrap();
        assert_eq!(tree.roots.len(), 1);
        let t = &tree.roots[0];
        assert_eq!(t.name, "t");
        assert_eq!(t.exec_count, 1);
        assert_eq!(t.children.len(), 2);
        let s1 = &t.children[0];
        assert_eq!(s1.name, "s1");
        assert_eq!(s1.exec_count, 10); // runs once per t
        let b = &t.children[1];
        assert_eq!(b.name, "b");
        // guarded by t > 0 → NT - 1 executions (the thesis' l_b.I).
        assert_eq!(b.exec_count, 9);
    }

    #[test]
    fn parallel_flags_match_paper() {
        let p = lstmish(10, 6, 7);
        let tree = LoopTree::build(&p).unwrap();
        let t = &tree.roots[0];
        let s1 = &t.children[0];
        let pl = &s1.children[0];
        // t carries c[t] ← c[t-1] and the i accumulation: not parallel.
        assert!(!t.parallel, "t must not be parallel");
        // s1 is parallel (matches Figure 3.2).
        assert!(s1.parallel, "s1 must be parallel");
        assert!(s1.tilable);
        // p carries the reduction into i[s1]: tilable but not parallel.
        assert!(pl.tilable, "p must be tilable");
        assert!(!pl.parallel, "p must not be parallel");
        // p is not even reduction-parallel: the i[s1] = 0 initializer runs
        // at every t, so init↔update dependences carried at p stay unmarked
        // (the pinned-initializer rule requires bounds [0,0] along every
        // loop the update's write does not index — t is not). Conservative
        // by design; the pool kernels' r==0 && s==0 guards do qualify.
        assert!(!pl.reduction_parallel, "p reduction-parallelism is blocked");
        assert!(!s1.reduction_parallel, "parallel levels are not re-flagged");
        // b is parallel within its component.
        let b = &t.children[1];
        assert!(
            b.parallel,
            "b must be parallel (deps carried at t are barriers)"
        );
    }

    #[test]
    fn perfect_nesting_detection() {
        let p = lstmish(10, 6, 7);
        let tree = LoopTree::build(&p).unwrap();
        let t = &tree.roots[0];
        assert!(!t.perfectly_nests()); // two children
        assert!(t.children[0].perfectly_nests()); // s1 → p
        assert!(!t.children[0].children[0].perfectly_nests()); // p is a leaf
    }

    #[test]
    fn subtree_stmts_collects_all() {
        let p = lstmish(4, 3, 3);
        let tree = LoopTree::build(&p).unwrap();
        assert_eq!(tree.roots[0].subtree_stmts(), vec![0, 1, 2]);
        assert_eq!(tree.roots[0].children[0].subtree_stmts(), vec![0, 1]);
    }

    #[test]
    fn malformed_shared_prefix_dep_is_ignored() {
        // Pins the defensive `.unwrap_or(false)` in `annotate`'s relevance
        // filter: a dependence that names the node's loop in its shared
        // prefix but NOT the component-start loop cannot be classified, so
        // it must be excluded — the flags come out as if it did not exist.
        // `lower` can never produce such a dependence (both endpoints'
        // chains contain the whole root→node path); only a hand-built list
        // through `build_with` reaches this.
        use prem_polyhedral::{Carry, DepKind, Interval};
        let p = lstmish(10, 6, 7);
        let stmts = prem_ir::lower(&p).unwrap();
        let baseline = LoopTree::build_with(&p, stmts.clone(), vec![]);

        // Loop ids: t=0, s1=1, p=2, b=3. The p node's component starts at
        // s1 (s1 perfectly nests into p). This dependence's shared prefix
        // claims only p — missing s1 — with a negative distance that would
        // kill p's tilable flag if it were honored.
        let malformed = prem_polyhedral::Dependence {
            src: 1,
            dst: 1,
            array: 0,
            src_access: 0,
            dst_access: 0,
            kind: DepKind::Flow,
            carry: Carry::Level(0),
            dist: vec![Interval::point(-1)],
            shared: vec![2],
            reduction: None,
        };
        let tree = LoopTree::build_with(&p, stmts, vec![malformed]);
        let flags = |t: &LoopTree| {
            let pl = &t.roots[0].children[0].children[0];
            (pl.parallel, pl.tilable, pl.reduction_parallel)
        };
        assert_eq!(flags(&tree), flags(&baseline));
        assert!(flags(&tree).1, "p stays tilable");
    }

    #[test]
    fn active_deps_filters_outer_carried() {
        let p = lstmish(10, 6, 7);
        let tree = LoopTree::build(&p).unwrap();
        let s1 = &tree.roots[0].children[0];
        let subtree = s1.subtree_stmts();
        let active = tree.active_deps(s1.loop_id, &subtree);
        // All active deps keep s1 fixed (that is why s1 is parallel).
        for d in &active {
            let lv = d.level_of(s1.loop_id).unwrap();
            assert!(d.dist_at(lv).is_zero(), "{d}");
        }
        // And none of them is carried at t.
        for d in &active {
            assert!(!matches!(d.carry, Carry::Level(0)), "{d}");
        }
    }
}
