//! Two-level SPM hierarchy prototype (Chapter 7, future work).
//!
//! The thesis proposes inserting a larger, platform-level L2 SPM between
//! main memory and the per-core L1 SPMs: *"the required data of multiple
//! segments can be loaded into L2 SPM at once and later again load into L1
//! SPM when the data is required"*, hiding the main-memory transfer time
//! behind the execution of whole blocks of segments.
//!
//! This module evaluates a standard single-level [`ComponentSchedule`] under
//! that hierarchy:
//!
//! * per core, consecutive segments are greedily grouped into **blocks**
//!   whose transferred bytes fit one L2 partition (the L2 is double-buffered
//!   like the L1s);
//! * one bulk DRAM→L2 transfer per block runs on the main-memory bus and is
//!   pipelined with the execution of the previous block (blocks of all cores
//!   are serialized round-robin on the single DRAM channel);
//! * the per-segment L1 batches are re-timed against the faster L2→L1 bus.
//!
//! The makespan recurrence extends the single-level one with the extra
//! "block transferred" gate on the first segment of each block.

use crate::config::Platform;
use crate::segments::ComponentSchedule;
use crate::timing::transfer_time_ns;

/// Configuration of the two-level hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoLevelConfig {
    /// L2 SPM size in bytes (both double-buffer partitions together).
    pub l2_bytes: i64,
    /// L2 → L1 bandwidth in bytes per second (typically ≫ DRAM bandwidth).
    pub l2_bus_bytes_per_sec: f64,
    /// Per-line overhead of the L2-side DMA in ns.
    pub l2_line_overhead_ns: f64,
}

impl Default for TwoLevelConfig {
    fn default() -> Self {
        TwoLevelConfig {
            l2_bytes: 2 << 20,
            l2_bus_bytes_per_sec: 64.0e9,
            l2_line_overhead_ns: 10.0,
        }
    }
}

/// Result of the two-level evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoLevelResult {
    /// Makespan of one component execution in ns.
    pub makespan_ns: f64,
    /// Blocks per core.
    pub blocks_per_core: Vec<usize>,
    /// Total bytes staged through the L2.
    pub staged_bytes: i64,
}

/// Evaluates a component schedule on the two-level hierarchy.
///
/// The same schedule (tiling, swaps, batch structure) is reused; only the
/// timing of memory phases changes. Returns `None` when a single segment's
/// working set exceeds an L2 partition (the hierarchy cannot stage it).
///
/// Degenerate schedules evaluate instead of panicking: an empty schedule
/// (no cores, or cores without segments and without batches) has nothing to
/// stage or execute and reports makespan `0.0`; a hand-built core whose
/// batch list is missing still gets its execution chain timed through a
/// synthesized zero-byte block rather than being silently dropped.
pub fn evaluate_two_level(
    schedule: &ComponentSchedule,
    platform: &Platform,
    cfg: &TwoLevelConfig,
) -> Option<TwoLevelResult> {
    evaluate_two_level_scan(schedule, platform, std::slice::from_ref(cfg))
        .pop()
        .expect("one config, one result")
}

/// Batched sweep evaluation: re-times one schedule under every config of a
/// capacity sweep in a single pass, hoisting the config-invariant L1
/// re-timing — it depends only on the L2 *bus* parameters, not `l2_bytes` —
/// out of the per-config loop (recomputed only when consecutive configs
/// change the bus). Each element is exactly what [`evaluate_two_level`]
/// returns for that config.
pub fn evaluate_two_level_scan(
    schedule: &ComponentSchedule,
    platform: &Platform,
    cfgs: &[TwoLevelConfig],
) -> Vec<Option<TwoLevelResult>> {
    /// Cached L1 re-timing, keyed by the L2 bus parameters (as bits).
    type CachedL1 = ((u64, u64), Vec<Vec<f64>>);
    // Config-invariant per-batch columns, hoisted once per scan: the block
    // decomposition and DRAM pricing below walk these flat columns instead
    // of pointer-chasing the batch structs for every config of the sweep
    // (same values, same order — results are bitwise identical).
    let cols = BatchColumns::new(schedule);
    let mut out = Vec::with_capacity(cfgs.len());
    let mut l1: Option<CachedL1> = None;
    for cfg in cfgs {
        let key = (
            cfg.l2_bus_bytes_per_sec.to_bits(),
            cfg.l2_line_overhead_ns.to_bits(),
        );
        if l1.as_ref().is_none_or(|(k, _)| *k != key) {
            let l2_platform = Platform {
                bus_bytes_per_sec: cfg.l2_bus_bytes_per_sec,
                dma_line_overhead_ns: cfg.l2_line_overhead_ns,
                ..platform.clone()
            };
            l1 = Some((key, l1_batch_times(schedule, &l2_platform)));
        }
        let (_, l1_time) = l1.as_ref().expect("computed above");
        out.push(evaluate_one(schedule, platform, cfg, &cols, l1_time));
    }
    out
}

/// Flat SoA columns over (core, batch) for the two-level sweep: everything
/// `evaluate_one` reads from [`crate::segments::Batch`] that does not depend
/// on the config, in batch-index order per core.
struct BatchColumns {
    /// Bytes moved per batch (block decomposition input).
    bytes: Vec<Vec<i64>>,
    /// DMA lines (ops) per batch as `f64` (DRAM pricing input).
    lines: Vec<Vec<f64>>,
    /// Whether the batch has any op (the L1-gate predicate).
    nonempty: Vec<Vec<bool>>,
}

impl BatchColumns {
    fn new(schedule: &ComponentSchedule) -> Self {
        let mut cols = BatchColumns {
            bytes: Vec::with_capacity(schedule.cores.len()),
            lines: Vec::with_capacity(schedule.cores.len()),
            nonempty: Vec::with_capacity(schedule.cores.len()),
        };
        for core in &schedule.cores {
            cols.bytes
                .push(core.batches.iter().map(|b| b.bytes).collect());
            cols.lines
                .push(core.batches.iter().map(|b| b.ops.len() as f64).collect());
            cols.nonempty
                .push(core.batches.iter().map(|b| !b.is_empty()).collect());
        }
        cols
    }
}

/// Per-(core, batch) L1 transfer times against the L2-side bus.
fn l1_batch_times(schedule: &ComponentSchedule, l2_platform: &Platform) -> Vec<Vec<f64>> {
    schedule
        .cores
        .iter()
        .map(|core| {
            core.batches
                .iter()
                .map(|b| {
                    b.ops
                        .iter()
                        .map(|op| {
                            transfer_time_ns(&op.shape, l2_platform)
                                + l2_platform.api.dma_int_handler
                        })
                        .sum()
                })
                .collect()
        })
        .collect()
}

/// One config's evaluation over precomputed L1 batch times (see
/// [`evaluate_two_level_scan`]).
fn evaluate_one(
    schedule: &ComponentSchedule,
    platform: &Platform,
    cfg: &TwoLevelConfig,
    cols: &BatchColumns,
    l1_time: &[Vec<f64>],
) -> Option<TwoLevelResult> {
    let l2_partition = cfg.l2_bytes / 2;

    let cores = &schedule.cores;
    let ncores = cores.len();

    // Block decomposition per core: greedy over the flat byte column.
    // blocks[i] = list of (first_batch, last_batch, dram_bytes, dram_time).
    let mut blocks: Vec<Vec<(usize, usize, i64)>> = Vec::with_capacity(ncores);
    let mut staged_bytes = 0i64;
    for (core, bytes) in cores.iter().zip(&cols.bytes) {
        let nbatches = bytes.len();
        let mut core_blocks = Vec::new();
        let mut start = 1usize;
        let mut acc = 0i64;
        for (j, &b) in bytes.iter().enumerate().skip(1) {
            if b > l2_partition {
                return None; // one segment's traffic exceeds an L2 partition
            }
            if acc + b > l2_partition && acc > 0 {
                core_blocks.push((start, j - 1, acc));
                start = j;
                acc = 0;
            }
            acc += b;
        }
        if start < nbatches {
            core_blocks.push((start, nbatches - 1, acc));
        }
        if core_blocks.is_empty() && core.nseg() > 0 {
            // A core with segments but no (or only an initial) batch — e.g.
            // a hand-built schedule — produced no block, which used to drop
            // its whole execution chain from the recurrence. Synthesize one
            // zero-byte block covering every segment so execution is timed.
            core_blocks.push((1, core.nseg() + 1, 0));
        }
        staged_bytes += core_blocks.iter().map(|b| b.2).sum::<i64>();
        blocks.push(core_blocks);
    }

    // DRAM block-transfer times: bulk, one line per contiguous array slice
    // approximated as bytes/bandwidth + a single line overhead per batch in
    // the block.
    let dram_time = |core: usize, blk: &(usize, usize, i64)| -> f64 {
        // The range clamp tolerates synthesized blocks that cover more
        // segments than the (possibly truncated) batch list describes.
        let lines = &cols.lines[core];
        let nlines: f64 = lines[blk.0.min(lines.len())..(blk.1 + 1).min(lines.len())]
            .iter()
            .sum();
        blk.2 as f64 / platform.bus_bytes_per_sec * 1.0e9 + nlines * platform.dma_line_overhead_ns
    };

    // Recurrence. DRAM engine: serialize blocks round-robin by (block level,
    // core); block b of a core may start once block b-2 of the same core has
    // been fully consumed (L2 double buffering) — approximated by gating on
    // the execution finish of block b-2's last segment.
    let max_blocks = blocks.iter().map(Vec::len).max().unwrap_or(0);
    let mut dram_fin: Vec<Vec<f64>> = blocks.iter().map(|b| vec![0.0; b.len()]).collect();
    let mut dram_free = 0.0f64;

    let mut exec_fin: Vec<Vec<f64>> = cores
        .iter()
        .map(|c| {
            let mut v = vec![0.0; c.nseg() + 1];
            v[0] = c.init_api_ns;
            v
        })
        .collect();
    let mut mem_fin: Vec<Vec<f64>> = cores.iter().map(|c| vec![0.0; c.nseg() + 2]).collect();
    let mut makespan = 0.0f64;

    // Process block levels then, inside each, the per-segment recurrence.
    // Simplification: DRAM transfers for block level L are issued before the
    // execution of that level's segments (they were released when block L-2
    // finished, which the per-core sequential chain guarantees).
    for lvl in 0..max_blocks {
        for i in 0..ncores {
            let Some(blk) = blocks[i].get(lvl) else {
                continue;
            };
            // Double-buffered L2: wait for block lvl-2's consumption.
            let gate = if lvl >= 2 {
                let prev = blocks[i][lvl - 2];
                let last_seg = prev.1.min(cores[i].nseg());
                exec_fin[i][last_seg]
            } else {
                0.0
            };
            let start = dram_free.max(gate);
            let fin = start + dram_time(i, blk);
            dram_free = fin;
            dram_fin[i][lvl] = fin;
            makespan = makespan.max(fin);
        }

        // L1 batches + executions of this block level (the per-core L1 DMA
        // is local, so cores do not contend on it).
        for i in 0..ncores {
            let Some(&(first, last, _)) = blocks[i].get(lvl) else {
                continue;
            };
            let nseg = cores[i].nseg();
            for j in first..=last {
                if j > nseg + 1 {
                    break;
                }
                if cols.nonempty[i].get(j).copied().unwrap_or(false) {
                    let gate = if j == nseg + 1 {
                        exec_fin[i][nseg]
                    } else {
                        exec_fin[i][j.saturating_sub(2)]
                    };
                    let start = gate
                        .max(dram_fin[i][lvl])
                        .max(mem_fin[i][j.saturating_sub(1)]);
                    mem_fin[i][j] = start + l1_time[i][j];
                    makespan = makespan.max(mem_fin[i][j]);
                }
                if j <= nseg && j >= 1 {
                    let start = exec_fin[i][j - 1].max(mem_fin[i][j]);
                    exec_fin[i][j] = start + cores[i].exec_ns[j - 1] + cores[i].api_ns[j - 1];
                    makespan = makespan.max(exec_fin[i][j]);
                }
            }
        }
    }

    Some(TwoLevelResult {
        makespan_ns: makespan,
        blocks_per_core: blocks.iter().map(Vec::len).collect(),
        staged_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{AnalyticCost, CostProvider};
    use crate::looptree::LoopTree;
    use crate::segments::build_schedule;
    use crate::tiling::Solution;
    use prem_ir::{AssignKind, ElemType, Expr, IdxExpr, ProgramBuilder};

    fn streaming_kernel(n: i64, m: i64) -> (prem_ir::Program, crate::component::Component) {
        let mut b = ProgramBuilder::new("stream");
        let x = b.array("x", vec![n, m], ElemType::F32);
        let y = b.array("y", vec![n, m], ElemType::F32);
        let i = b.begin_loop("i", 0, 1, n);
        let j = b.begin_loop("j", 0, 1, m);
        b.stmt(
            y,
            vec![IdxExpr::var(i), IdxExpr::var(j)],
            AssignKind::AddAssign,
            Expr::mul(
                Expr::load(x, vec![IdxExpr::var(i), IdxExpr::var(j)]),
                Expr::Const(3.0),
            ),
        );
        b.end_loop();
        b.end_loop();
        let program = b.finish();
        let tree = LoopTree::build(&program).unwrap();
        let comp = crate::component::Component::extract(
            &tree,
            &program,
            &[&tree.roots[0], &tree.roots[0].children[0]],
        );
        (program, comp)
    }

    #[test]
    fn two_level_helps_when_dram_is_slow() {
        let (program, comp) = streaming_kernel(256, 256);
        let cost = AnalyticCost::new(&program);
        let model = cost.exec_model(&comp);
        let platform = Platform::default().with_bus_gbytes(1.0 / 16.0);
        let sol = Solution {
            k: vec![8, 256],
            r: vec![8, 1],
        };
        let sched = build_schedule(&comp, &sol, &platform, &model).unwrap();
        let single = crate::schedule::evaluate(&sched).makespan_ns;
        let two = evaluate_two_level(&sched, &platform, &TwoLevelConfig::default()).unwrap();
        // The L1 fills now run at 64 GB/s; DRAM still limits throughput but
        // bulk block transfers amortize line overheads, so the two-level
        // makespan must not exceed the single-level one (and typically wins).
        assert!(
            two.makespan_ns <= single * 1.001,
            "two-level {} vs single {single}",
            two.makespan_ns
        );
        assert!(two.blocks_per_core.iter().any(|&b| b >= 1));
    }

    #[test]
    fn degenerate_l2_equals_dram_speed_is_no_better() {
        let (program, comp) = streaming_kernel(128, 128);
        let cost = AnalyticCost::new(&program);
        let model = cost.exec_model(&comp);
        let platform = Platform::default().with_bus_gbytes(16.0);
        let sol = Solution {
            k: vec![16, 128],
            r: vec![4, 1],
        };
        let sched = build_schedule(&comp, &sol, &platform, &model).unwrap();
        let cfg = TwoLevelConfig {
            l2_bytes: 2 << 20,
            l2_bus_bytes_per_sec: platform.bus_bytes_per_sec,
            l2_line_overhead_ns: platform.dma_line_overhead_ns,
        };
        let two = evaluate_two_level(&sched, &platform, &cfg).unwrap();
        // Staging through an equal-speed L2 adds the DRAM block time on top:
        // it cannot beat the direct single-level schedule by construction.
        let single = crate::schedule::evaluate(&sched).makespan_ns;
        assert!(two.makespan_ns >= single * 0.5);
        assert!(two.staged_bytes > 0);
    }

    #[test]
    fn empty_schedule_evaluates_to_zero() {
        // No cores at all: nothing to stage, nothing to execute.
        let sched = crate::segments::ComponentSchedule {
            solution: Solution {
                k: vec![],
                r: vec![],
            },
            cores: vec![],
            bounding_boxes: vec![],
            spm_bytes_needed: 0,
            total_bytes: 0,
            total_ops: 0,
            combine_ns: 0.0,
            combine_phase_ns: 0.0,
        };
        let out = evaluate_two_level(&sched, &Platform::default(), &TwoLevelConfig::default())
            .expect("empty schedule is trivially feasible");
        assert_eq!(out.makespan_ns, 0.0);
        assert_eq!(out.staged_bytes, 0);
        assert!(out.blocks_per_core.is_empty());
    }

    #[test]
    fn segmentless_cores_evaluate_to_zero() {
        // Cores exist but own no segments and no batches: makespan 0.0, not
        // a panic or a bogus block.
        let sched = crate::segments::ComponentSchedule {
            solution: Solution {
                k: vec![1],
                r: vec![2],
            },
            cores: vec![crate::segments::CorePlan::default(); 2],
            bounding_boxes: vec![],
            spm_bytes_needed: 0,
            total_bytes: 0,
            total_ops: 0,
            combine_ns: 0.0,
            combine_phase_ns: 0.0,
        };
        let out = evaluate_two_level(&sched, &Platform::default(), &TwoLevelConfig::default())
            .expect("segmentless schedule is trivially feasible");
        assert_eq!(out.makespan_ns, 0.0);
        assert_eq!(out.blocks_per_core, vec![0, 0]);
    }

    #[test]
    fn blockless_core_still_times_execution() {
        // A hand-built core with segments but an empty batch list used to
        // fall out of the block loop entirely — its execution chain was
        // silently dropped from the makespan (and indexing the missing
        // batches could panic). It must now be timed via a synthesized
        // zero-byte block.
        let core = crate::segments::CorePlan {
            nseg: 2,
            exec_ns: vec![10.0, 10.0],
            api_ns: vec![1.0, 1.0],
            init_api_ns: 5.0,
            batches: vec![],
        };
        let sched = crate::segments::ComponentSchedule {
            solution: Solution {
                k: vec![1],
                r: vec![1],
            },
            cores: vec![core],
            bounding_boxes: vec![],
            spm_bytes_needed: 0,
            total_bytes: 0,
            total_ops: 0,
            combine_ns: 0.0,
            combine_phase_ns: 0.0,
        };
        let out = evaluate_two_level(&sched, &Platform::default(), &TwoLevelConfig::default())
            .expect("no segment exceeds the partition");
        // init (5) → seg 1 (10 + 1) → seg 2 (10 + 1) = 27 ns, serial chain.
        assert_eq!(out.makespan_ns, 27.0);
        assert_eq!(out.blocks_per_core, vec![1]);
        assert_eq!(out.staged_bytes, 0);
    }

    #[test]
    fn sweep_scan_matches_per_config_evaluation() {
        // The batched sweep (hoisted L1 re-timing) must be bitwise identical
        // to calling evaluate_two_level per config — across capacity-only
        // changes (L1 reused), bus changes (L1 recomputed) and an infeasible
        // capacity (None propagated in place).
        let (program, comp) = streaming_kernel(128, 128);
        let cost = AnalyticCost::new(&program);
        let model = cost.exec_model(&comp);
        let platform = Platform::default().with_bus_gbytes(1.0);
        let sol = Solution {
            k: vec![16, 128],
            r: vec![4, 1],
        };
        let sched = build_schedule(&comp, &sol, &platform, &model).unwrap();
        let cfgs: Vec<TwoLevelConfig> = vec![
            TwoLevelConfig {
                l2_bytes: 1 << 20,
                ..TwoLevelConfig::default()
            },
            TwoLevelConfig {
                l2_bytes: 2 << 20,
                ..TwoLevelConfig::default()
            },
            TwoLevelConfig {
                l2_bytes: 1024, // infeasible: one segment exceeds a partition
                ..TwoLevelConfig::default()
            },
            TwoLevelConfig {
                l2_bytes: 8 << 20,
                l2_bus_bytes_per_sec: platform.bus_bytes_per_sec,
                l2_line_overhead_ns: platform.dma_line_overhead_ns,
            },
        ];
        let batched = evaluate_two_level_scan(&sched, &platform, &cfgs);
        assert_eq!(batched.len(), cfgs.len());
        for (cfg, got) in cfgs.iter().zip(&batched) {
            let want = evaluate_two_level(&sched, &platform, cfg);
            match (&want, got) {
                (None, None) => {}
                (Some(w), Some(g)) => {
                    assert_eq!(w.makespan_ns.to_bits(), g.makespan_ns.to_bits());
                    assert_eq!(w.blocks_per_core, g.blocks_per_core);
                    assert_eq!(w.staged_bytes, g.staged_bytes);
                }
                _ => panic!("feasibility mismatch for {cfg:?}"),
            }
        }
        assert!(batched[2].is_none());
        assert!(batched[0].is_some());
    }

    #[test]
    fn oversized_segment_is_rejected() {
        let (program, comp) = streaming_kernel(64, 64);
        let cost = AnalyticCost::new(&program);
        let model = cost.exec_model(&comp);
        let platform = Platform::default();
        let sol = Solution {
            k: vec![32, 64],
            r: vec![1, 1],
        };
        let sched = build_schedule(&comp, &sol, &platform, &model).unwrap();
        let cfg = TwoLevelConfig {
            l2_bytes: 1024, // absurdly small
            ..TwoLevelConfig::default()
        };
        assert!(evaluate_two_level(&sched, &platform, &cfg).is_none());
    }
}
