//! Fixed-priority multitasking schedulability for PREM task sets.
//!
//! The paper compiles a *single* application; the multitasking PREM systems
//! it compares against (Table 2.2: Soliman & Pellizzoni \[37\], Forsberg et
//! al. \[16\]) schedule several compiled tasks on one core under fixed
//! priorities, with **non-preemptive** phases: a long execution or memory
//! phase of a low-priority task blocks every higher-priority release. That
//! is precisely why those works shrink tile sizes — and this module closes
//! the loop by (a) deriving a three-phase task model from a compiled
//! schedule, (b) running the classic response-time analysis with
//! non-preemptive blocking, and (c) driving the component optimizer with a
//! phase-length cap ([`crate::optimizer::OptimizerOptions::max_phase_ns`])
//! so a kernel can be *re-segmented* until a task set becomes schedulable.

use crate::schedule::ScheduleResult;
use std::fmt;

/// A periodic PREM task compiled to a sequence of non-preemptive phases.
#[derive(Debug, Clone, PartialEq)]
pub struct PremTask {
    /// Task name.
    pub name: String,
    /// Period in ns.
    pub period_ns: f64,
    /// Relative deadline in ns (constrained: `<= period`).
    pub deadline_ns: f64,
    /// Total worst-case execution demand per job in ns (all phases).
    pub wcet_ns: f64,
    /// Longest single non-preemptive phase in ns.
    pub max_phase_ns: f64,
}

impl PremTask {
    /// Builds a task from a compiled component schedule: the job demand is
    /// the single-job makespan, the blocking granularity its longest phase.
    pub fn from_schedule(
        name: impl Into<String>,
        result: &ScheduleResult,
        executions_per_job: u64,
        period_ns: f64,
        deadline_ns: f64,
    ) -> Self {
        PremTask {
            name: name.into(),
            period_ns,
            deadline_ns,
            wcet_ns: result.makespan_ns * executions_per_job as f64,
            max_phase_ns: result.max_phase_ns,
        }
    }

    /// Utilization `C/T`.
    pub fn utilization(&self) -> f64 {
        self.wcet_ns / self.period_ns
    }
}

/// Per-task verdict of the analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskResponse {
    /// Task name.
    pub name: String,
    /// Worst-case response time in ns (`+∞` when unbounded/over deadline).
    pub response_ns: f64,
    /// Blocking term from lower-priority non-preemptive phases.
    pub blocking_ns: f64,
    /// Whether `response <= deadline`.
    pub schedulable: bool,
}

/// Result of analyzing a task set.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedulability {
    /// Per-task responses, highest priority first.
    pub tasks: Vec<TaskResponse>,
    /// Total utilization.
    pub utilization: f64,
}

impl Schedulability {
    /// Whether every task meets its deadline.
    pub fn schedulable(&self) -> bool {
        self.tasks.iter().all(|t| t.schedulable)
    }
}

impl fmt::Display for Schedulability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "U = {:.3}", self.utilization)?;
        for t in &self.tasks {
            writeln!(
                f,
                "  {:<12} R = {:>12.0} ns  (blocking {:>10.0})  {}",
                t.name,
                t.response_ns,
                t.blocking_ns,
                if t.schedulable { "OK" } else { "MISS" }
            )?;
        }
        Ok(())
    }
}

/// Fixed-priority response-time analysis with non-preemptive blocking.
///
/// `tasks` must be ordered highest priority first. The standard recurrence
/// with a blocking term:
///
/// ```text
/// R_i = C_i + B_i + Σ_{j < i} ⌈R_i / T_j⌉ · C_j,
/// B_i = max phase length over tasks with lower priority than i
/// ```
///
/// iterated to a fixpoint (or declared unschedulable past the deadline).
/// This is the classic analysis the multitasking PREM compilers build on;
/// memory-phase arbitration beyond the blocking term (TDMA slots in \[36\]) is
/// intentionally folded into the phase lengths.
pub fn analyze(tasks: &[PremTask]) -> Schedulability {
    let utilization = tasks.iter().map(PremTask::utilization).sum();
    let mut out = Vec::with_capacity(tasks.len());
    for (i, t) in tasks.iter().enumerate() {
        let blocking = tasks[i + 1..]
            .iter()
            .map(|l| l.max_phase_ns)
            .fold(0.0f64, f64::max);
        let mut r = t.wcet_ns + blocking;
        let mut schedulable = true;
        loop {
            let mut next = t.wcet_ns + blocking;
            for h in &tasks[..i] {
                next += (r / h.period_ns).ceil() * h.wcet_ns;
            }
            if next > t.deadline_ns {
                r = f64::INFINITY;
                schedulable = false;
                break;
            }
            if (next - r).abs() <= 1e-9 {
                r = next;
                break;
            }
            r = next;
        }
        out.push(TaskResponse {
            name: t.name.clone(),
            response_ns: r,
            blocking_ns: blocking,
            schedulable,
        });
    }
    Schedulability {
        tasks: out,
        utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{AnalyticCost, CostProvider};
    use crate::looptree::LoopTree;
    use crate::optimizer::{optimize_component, OptimizerOptions};
    use crate::Platform;

    fn task(name: &str, c: f64, t: f64, max_phase: f64) -> PremTask {
        PremTask {
            name: name.into(),
            period_ns: t,
            deadline_ns: t,
            wcet_ns: c,
            max_phase_ns: max_phase,
        }
    }

    #[test]
    fn classic_rta_fixpoint() {
        // C = (1, 2, 3), T = (4, 8, 16), no blocking: R = (1, 3, 10).
        let tasks = vec![
            task("hi", 1.0, 4.0, 0.0),
            task("mid", 2.0, 8.0, 0.0),
            task("lo", 3.0, 16.0, 0.0),
        ];
        let s = analyze(&tasks);
        assert!(s.schedulable());
        assert_eq!(s.tasks[0].response_ns, 1.0);
        assert_eq!(s.tasks[1].response_ns, 3.0);
        assert_eq!(s.tasks[2].response_ns, 7.0);
    }

    #[test]
    fn blocking_can_break_high_priority() {
        // A tight high-priority task misses only because of low-priority
        // non-preemptive blocking.
        let ok = analyze(&[task("hi", 2.0, 5.0, 0.0), task("lo", 10.0, 100.0, 2.0)]);
        assert!(ok.schedulable());
        let bad = analyze(&[task("hi", 2.0, 5.0, 0.0), task("lo", 10.0, 100.0, 4.0)]);
        assert!(!bad.tasks[0].schedulable);
        assert_eq!(bad.tasks[0].blocking_ns, 4.0);
    }

    #[test]
    fn unschedulable_overload() {
        let s = analyze(&[task("a", 3.0, 4.0, 0.0), task("b", 3.0, 4.0, 0.0)]);
        assert!(!s.schedulable());
        assert!(s.utilization > 1.0);
    }

    /// The §2.1.2 motivation end to end: shrinking tile sizes via the phase
    /// cap turns an unschedulable set schedulable.
    #[test]
    fn phase_cap_restores_schedulability() {
        // Low-priority kernel: a single-core elementwise component large
        // enough that its unconstrained phases dwarf the init segment.
        let program = prem_kernels_stub(256, 256);
        let tree = LoopTree::build(&program).unwrap();
        let comp = crate::component::Component::extract(
            &tree,
            &program,
            &[&tree.roots[0], &tree.roots[0].children[0]],
        );
        let cost = AnalyticCost::new(&program);
        let model = cost.exec_model(&comp);
        let platform = Platform::default().with_cores(1);

        let free = optimize_component(&comp, &platform, &model, &OptimizerOptions::default())
            .expect("feasible");
        // A high-priority task with a deadline shorter than the free
        // solution's longest phase.
        let hi = task("hi", 4_000.0, free.result.max_phase_ns * 0.5, 0.0);
        let lo_free = PremTask::from_schedule("lo", &free.result, 1, 1e9, 1e9);
        assert!(
            !analyze(&[hi.clone(), lo_free]).tasks[0].schedulable,
            "expected blocking-induced miss"
        );

        // Re-segment with a phase cap below the high task's slack.
        let cap = hi.deadline_ns - hi.wcet_ns;
        let capped = optimize_component(
            &comp,
            &platform,
            &model,
            &OptimizerOptions {
                max_phase_ns: Some(cap),
                ..OptimizerOptions::default()
            },
        )
        .expect("cap satisfiable");
        assert!(capped.result.max_phase_ns <= cap);
        let lo_capped = PremTask::from_schedule("lo", &capped.result, 1, 1e9, 1e9);
        let verdict = analyze(&[hi, lo_capped]);
        assert!(verdict.tasks[0].schedulable, "{verdict}");
        // Re-segmentation costs some makespan, but only moderately.
        assert!(capped.result.makespan_ns <= free.result.makespan_ns * 2.0);
    }

    /// Local matmul-ish program builder to avoid a circular dev-dependency
    /// on prem-kernels.
    fn prem_kernels_stub(n: i64, m: i64) -> prem_ir::Program {
        use prem_ir::{AssignKind, ElemType, Expr, IdxExpr, ProgramBuilder};
        let mut b = ProgramBuilder::new("lo_kernel");
        let x = b.array("x", vec![n, m], ElemType::F32);
        let y = b.array("y", vec![n, m], ElemType::F32);
        let i = b.begin_loop("i", 0, 1, n);
        let j = b.begin_loop("j", 0, 1, m);
        b.stmt(
            y,
            vec![IdxExpr::var(i), IdxExpr::var(j)],
            AssignKind::AddAssign,
            Expr::mul(
                Expr::load(x, vec![IdxExpr::var(i), IdxExpr::var(j)]),
                Expr::Const(2.0),
            ),
        );
        b.end_loop();
        b.end_loop();
        b.finish()
    }
}
