//! Tiling-component schedule optimization — Algorithm 1 of the paper (§4.3).
//!
//! For a tilable component, the heuristic enumerates the non-dominated
//! thread-group assignments, derives the load-balanced candidate tile sizes
//! per level (`select_tile_sizes`), and runs a coordinate-descent search
//! (`max_iter` sweeps) that exploits the empirical convexity of the makespan
//! in each tile size. An exhaustive optimizer is provided for validation on
//! small components.

use crate::analysis::{
    makespan_only_batch, AnalysisCache, BatchScratch, ComponentAnalysis, CoordinateDelta,
    MakespanScratch, SOA_LANES,
};
use crate::component::Component;
use crate::config::Platform;
use crate::schedule::{evaluate, ScheduleResult};
use crate::segments::build_schedule;
use crate::tiling::Solution;
use crate::timing::ExecModel;
use prem_obs::{AssignmentTelemetry, SearchTelemetry};
use prem_polyhedral::div_ceil;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Options controlling the heuristic search.
#[derive(Debug, Clone)]
pub struct OptimizerOptions {
    /// Coordinate-descent sweeps (`max_iter`, the paper uses 3).
    pub max_iter: usize,
    /// Seed of the deterministic RNG picking the initial solution.
    pub seed: u64,
    /// Use golden-section-style convex search inside `find_minimum` instead
    /// of a full scan (the paper's convexity assumption).
    pub convex_search: bool,
    /// Optional cap on the longest single phase: solutions whose execution
    /// or memory phases exceed it are infeasible. Used when compiling for a
    /// multitasking system where non-preemptive phases block higher-priority
    /// tasks (§2.1.2, `multitask`).
    pub max_phase_ns: Option<f64>,
    /// Shared [`AnalysisCache`] keyed on structure only: sweeps that vary
    /// platform timing scalars (bus speed, API costs) across optimizer runs
    /// reuse every tile enumeration. `None` disables cross-run reuse.
    pub analysis_cache: Option<Arc<AnalysisCache>>,
    /// Use [`CoordinateDelta`] incremental rebuilds inside single-coordinate
    /// scans (bitwise-equivalent to full builds; off mainly for A/B tests).
    pub incremental: bool,
    /// Serve each single-coordinate scan from one batched landscape rebuild
    /// ([`CoordinateDelta::rebuild_scan`]): the whole sorted candidate list
    /// is analyzed in a single pass and `find_minimum` replays its
    /// bracketing over the precomputed points, so the adaptive curvature
    /// windows consume landscape values instead of re-probing. Selections
    /// and makespans are bitwise identical to the per-candidate path.
    /// Requires `incremental`; falls back silently without it. Off by
    /// default like `adaptive` — the benches enable it (`PREM_BATCHED=0`
    /// restores the per-candidate path).
    pub batched: bool,
    /// Telemetry-driven adaptive search control: convergence-based early
    /// stopping of the sweep loop (the `max_iter` ceiling is kept as a
    /// safety bound) and curvature-sized candidate windows after the first
    /// sweep. Off by default — the fixed-constant path stays the reference
    /// for `optimize_exhaustive` validation and its selections are bitwise
    /// reproducible across versions.
    pub adaptive: bool,
    /// Relative sweep-over-sweep makespan improvement below which the
    /// descent is considered converged (adaptive mode only). Also the bound
    /// the adaptive A/B tests hold selections to.
    pub convergence_eps: f64,
    /// Reduction-aware legality: privatize accumulators so that levels whose
    /// only blocking dependences are associative-commutative reduction
    /// chains (`+=`, `max=`, `min=`) may run on multiple thread groups, at
    /// the cost of per-group accumulator copies in SPM and an explicit
    /// combine phase merging the partials. Off by default — selections and
    /// makespans are bitwise identical to the reduction-oblivious path
    /// (`PREM_REDUCTIONS=1` enables it in the benches).
    pub reductions: bool,
    /// Structure-of-arrays landscape evaluation: batched scans walk the
    /// frozen-delta SoA columns [`crate::analysis::SOA_LANES`] candidates at
    /// a time and fold their makespans through the chunked
    /// [`crate::analysis::makespan_only_batch`]. Off by default — selections,
    /// makespans and schedules are bitwise identical either way
    /// (`PREM_SOA=0` restores the scalar path in the benches); requires
    /// `batched` to have any effect.
    pub soa: bool,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            max_iter: 3,
            seed: 0x5eed,
            convex_search: true,
            max_phase_ns: None,
            analysis_cache: None,
            incremental: true,
            batched: false,
            adaptive: false,
            convergence_eps: 1e-6,
            reductions: false,
            soa: false,
        }
    }
}

impl PartialEq for OptimizerOptions {
    fn eq(&self, other: &Self) -> bool {
        self.max_iter == other.max_iter
            && self.seed == other.seed
            && self.convex_search == other.convex_search
            && self.max_phase_ns == other.max_phase_ns
            && self.incremental == other.incremental
            && self.batched == other.batched
            && self.adaptive == other.adaptive
            && self.reductions == other.reductions
            && self.soa == other.soa
            && self.convergence_eps.to_bits() == other.convergence_eps.to_bits()
            && match (&self.analysis_cache, &other.analysis_cache) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
    }
}

/// Outcome of optimizing one component.
#[derive(Debug, Clone)]
pub struct OptimizeOutcome {
    /// Best solution found.
    pub solution: Solution,
    /// Schedule evaluation of the best solution (one component execution).
    pub result: ScheduleResult,
    /// Structured search telemetry: per-assignment eval counts, memo-cache
    /// hit rates, tier-level counters and per-sweep convergence (see
    /// [`SearchTelemetry`]).
    pub telemetry: SearchTelemetry,
}

impl OptimizeOutcome {
    /// Number of makespan evaluations performed — derived from the
    /// telemetry so the two can never diverge.
    pub fn evals(&self) -> usize {
        self.telemetry.evals
    }
}

/// All valid, non-dominated thread-group assignments for a component on `p`
/// cores (§4.3). Assignment `r'` dominates `r` if `r'_j ≥ r_j` everywhere;
/// dominated assignments never need to be checked.
///
/// Privatized reduction levels are the exception to the paper's rule: extra
/// thread groups there are *not* free — each split multiplies the combine
/// rounds the schedule must pay — so domination additionally requires the
/// two assignments to agree on every reduction-parallel level. Without
/// privatization those levels are sequential (`r_j = 1` in every candidate)
/// and the filter reduces bitwise to the paper's.
pub fn nondominated_thread_groups(component: &Component, p: usize) -> Vec<Vec<i64>> {
    let depth = component.depth();
    let mut all: Vec<Vec<i64>> = Vec::new();
    let mut cur = vec![1i64; depth];
    fn rec(
        component: &Component,
        p: i64,
        j: usize,
        used: i64,
        cur: &mut Vec<i64>,
        all: &mut Vec<Vec<i64>>,
    ) {
        if j == component.depth() {
            all.push(cur.clone());
            return;
        }
        let lv = &component.levels[j];
        let max_r = if lv.parallel {
            (p / used).min(lv.count).max(1)
        } else {
            1
        };
        for r in 1..=max_r {
            cur[j] = r;
            rec(component, p, j + 1, used * r, cur, all);
        }
        cur[j] = 1;
    }
    rec(component, p as i64, 0, 1, &mut cur, &mut all);
    // Keep only non-dominated assignments.
    let mut keep = Vec::new();
    'outer: for (i, r) in all.iter().enumerate() {
        for (i2, r2) in all.iter().enumerate() {
            if i2 != i
                && r2.iter().zip(r).all(|(a, b)| a >= b)
                && r2.iter().zip(r).any(|(a, b)| a > b)
                && component
                    .levels
                    .iter()
                    .zip(r2.iter().zip(r))
                    .all(|(lv, (a, b))| !lv.reduction_parallel || a == b)
            {
                continue 'outer;
            }
        }
        keep.push(r.clone());
    }
    keep
}

/// Candidate tile sizes for level `j` under `r` thread groups
/// (`select_tile_sizes`, Algorithm 1): the smallest `K` for every achievable
/// number `Z` of iteration ranges per thread group. Non-tilable levels get
/// the single candidate `K = N`.
pub fn select_tile_sizes(component: &Component, j: usize, r: i64) -> Vec<i64> {
    let lv = &component.levels[j];
    if !lv.tilable {
        return vec![lv.count];
    }
    let n = lv.count;
    let mut out = Vec::new();
    let mut prev_z = i64::MAX;
    for k in 1..=n {
        let m = div_ceil(n, k);
        let z = div_ceil(m, r);
        if z < prev_z {
            out.push(k);
            prev_z = z;
        }
    }
    out
}

/// A memoizing makespan evaluator for one component.
///
/// Candidate queries go through the fast tier
/// ([`ComponentAnalysis::makespan_only`]) over reused scratch buffers; the
/// materializing tier runs only for [`MakespanEvaluator::full`] (the search
/// winner) and, in debug builds, as a sampled differential check of the
/// fast tier.
pub struct MakespanEvaluator<'a> {
    component: &'a Component,
    platform: &'a Platform,
    exec_model: &'a ExecModel,
    cache: HashMap<Solution, f64>,
    analysis_cache: Option<Arc<AnalysisCache>>,
    scratch: MakespanScratch,
    batch_scratch: BatchScratch,
    /// Active single-coordinate scan, if any (see
    /// [`MakespanEvaluator::begin_coordinate`]).
    coordinate: Option<CoordinateScan>,
    /// Whether single-coordinate scans may use incremental rebuilds.
    incremental: bool,
    /// Whether batched scans use the SoA lane walk and the chunked batch
    /// fold (see [`OptimizerOptions::soa`]).
    soa: bool,
    #[cfg(debug_assertions)]
    rebuild_checks: usize,
    /// Optional cap on the longest phase (see [`OptimizerOptions`]).
    pub max_phase_ns: Option<f64>,
    /// Number of (uncached) makespan evaluations.
    pub evals: usize,
    /// Number of lookups answered from the memo cache.
    pub cache_hits: usize,
    /// Evaluations answered by the fast tier (reached the fold, i.e. passed
    /// the analytic SPM pre-gate and the structural feasibility checks).
    pub fast_evals: usize,
    /// Analyses answered by the shared [`AnalysisCache`] instead of being
    /// rebuilt.
    pub analysis_reuses: usize,
    /// Analyses produced by [`CoordinateDelta::rebuild`] instead of a full
    /// [`ComponentAnalysis::build`].
    pub incremental_rebuilds: usize,
    /// Shared-cache entries evicted by this evaluator's insertions.
    pub evictions: usize,
    /// Shared-cache insertions declined by the frequency-based admission
    /// filter (the candidate was colder than the eviction victim).
    pub admission_rejects: usize,
    /// Coordinate scans where [`CoordinateDelta::new`] declined construction
    /// (context unrepresentable even rank-reduced) and the scan fell back to
    /// full builds. Should be 0 on the real kernel suite.
    pub delta_declines: usize,
    /// Single-coordinate scans served by a batched
    /// [`CoordinateDelta::rebuild_scan`] landscape.
    pub batched_scans: usize,
    /// Batched-scan candidates answered by the monotone segment-cap
    /// shortcut without walking any tiles.
    pub scan_truncations: usize,
    /// Batched scans whose rebuild walked the frozen SoA columns with at
    /// least one multi-candidate lane group.
    pub soa_scans: usize,
    /// Chunked batch folds that actually interleaved ≥ 2 landscape points
    /// through [`makespan_only_batch`].
    pub simd_batches: usize,
    /// Scans (or individual oversized candidates) that requested SoA but
    /// fell back to the scalar replay — rank-reduced contexts, depth over
    /// the lane cap, or j-term columns past the arena budget.
    pub soa_fallbacks: usize,
}

/// One single-coordinate scan: solutions equal to `base` except at
/// coordinate `j` may be analyzed incrementally. The delta context is built
/// lazily on the first actual analysis construction — a scan whose every
/// probe hits the memo or the shared cache never pays for it.
struct CoordinateScan {
    base: Solution,
    j: usize,
    /// `None` — not yet attempted; `Some(None)` — construction declined
    /// (context too large), fall back to full builds for this scan.
    delta: Option<Option<CoordinateDelta>>,
}

impl CoordinateScan {
    fn covers(&self, solution: &Solution) -> bool {
        solution.r == self.base.r
            && solution.k.len() == self.base.k.len()
            && solution
                .k
                .iter()
                .zip(&self.base.k)
                .enumerate()
                .all(|(i, (a, b))| i == self.j || a == b)
    }
}

impl<'a> MakespanEvaluator<'a> {
    /// Creates an evaluator.
    pub fn new(
        component: &'a Component,
        platform: &'a Platform,
        exec_model: &'a ExecModel,
    ) -> Self {
        MakespanEvaluator {
            component,
            platform,
            exec_model,
            cache: HashMap::new(),
            analysis_cache: None,
            scratch: MakespanScratch::default(),
            batch_scratch: BatchScratch::default(),
            coordinate: None,
            incremental: true,
            soa: false,
            #[cfg(debug_assertions)]
            rebuild_checks: 0,
            max_phase_ns: None,
            evals: 0,
            cache_hits: 0,
            fast_evals: 0,
            analysis_reuses: 0,
            incremental_rebuilds: 0,
            evictions: 0,
            admission_rejects: 0,
            delta_declines: 0,
            batched_scans: 0,
            scan_truncations: 0,
            soa_scans: 0,
            simd_batches: 0,
            soa_fallbacks: 0,
        }
    }

    /// Attaches a shared [`AnalysisCache`] for cross-run precompute reuse.
    pub fn with_analysis_cache(mut self, cache: Option<Arc<AnalysisCache>>) -> Self {
        self.analysis_cache = cache;
        self
    }

    /// Enables or disables incremental rebuilds (on by default; off mainly
    /// for A/B equivalence tests).
    pub fn with_incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// Enables or disables the SoA lane walk + chunked batch fold inside
    /// batched scans (off by default; bitwise-equivalent either way).
    pub fn with_soa(mut self, on: bool) -> Self {
        self.soa = on;
        self
    }

    /// Declares that until [`MakespanEvaluator::end_coordinate`], queried
    /// solutions differ from `base` only at coordinate `j` — the evaluator
    /// may then serve analysis builds with [`CoordinateDelta::rebuild`].
    /// `base.k[j]` itself is irrelevant. Solutions outside the scan shape
    /// are still handled correctly (full build); a new `begin_coordinate`
    /// replaces any active scan.
    pub fn begin_coordinate(&mut self, base: &Solution, j: usize) {
        self.coordinate = if self.incremental {
            Some(CoordinateScan {
                base: base.clone(),
                j,
                delta: None,
            })
        } else {
            None
        };
    }

    /// Ends the active single-coordinate scan, if any.
    pub fn end_coordinate(&mut self) {
        self.coordinate = None;
    }

    /// Makespan of a solution in ns (`+∞` when infeasible).
    pub fn makespan(&mut self, solution: &Solution) -> f64 {
        if let Some(&v) = self.cache.get(solution) {
            self.cache_hits += 1;
            return v;
        }
        self.evals += 1;
        let v = self.fast_makespan(solution);
        #[cfg(debug_assertions)]
        if self.evals <= 2
            || self
                .evals
                .is_multiple_of(if crate::analysis::heavy_checks() {
                    101
                } else {
                    1021
                })
        {
            self.check_differential(solution, v);
        }
        self.cache.insert(solution.clone(), v);
        v
    }

    /// Builds the structure analysis for one solution (no retained ranges),
    /// incrementally when an active coordinate scan covers it. A sampled
    /// debug assert keeps the incremental path honest against the
    /// from-scratch build (densely under `PREM_CHECK_HEAVY=1`); the
    /// dedicated `incremental_differential` suite is the exhaustive check.
    fn build_analysis(
        &mut self,
        solution: &Solution,
    ) -> Result<Arc<ComponentAnalysis>, crate::tiling::Infeasible> {
        let component = self.component;
        let cores = self.platform.cores;
        let exec_model = self.exec_model;
        if let Some(scan) = &mut self.coordinate {
            if scan.covers(solution) {
                if scan.delta.is_none() {
                    scan.delta = Some(CoordinateDelta::new(component, &scan.base, scan.j, cores));
                    if matches!(scan.delta, Some(None)) {
                        self.delta_declines += 1;
                    }
                }
                if let Some(Some(delta)) = &mut scan.delta {
                    // Under SoA the single rebuild rides the lane walk as a
                    // scan of one candidate — same bits (pinned by the
                    // scan-of-one differential), but the moving-coordinate
                    // terms come from precomputed columns and tile times
                    // from the extent-class table instead of hashing extent
                    // vectors per tile.
                    let built = if self.soa {
                        let kj = solution.k[delta.coordinate()];
                        let (mut v, stats) = delta.rebuild_scan(component, &[kj], exec_model, true);
                        self.soa_scans += usize::from(stats.soa);
                        self.soa_fallbacks += usize::from(stats.fallback);
                        v.pop().expect("one candidate in, one result out")
                    } else {
                        delta.rebuild(component, solution.k[delta.coordinate()], exec_model)
                    };
                    self.incremental_rebuilds += 1;
                    #[cfg(debug_assertions)]
                    {
                        self.rebuild_checks += 1;
                        let stride = if crate::analysis::heavy_checks() {
                            29
                        } else {
                            257
                        };
                        if self.rebuild_checks == 1 || self.rebuild_checks.is_multiple_of(stride) {
                            let full = ComponentAnalysis::build(
                                component, solution, cores, exec_model, false,
                            );
                            match (&built, &full) {
                                (Ok(a), Ok(b)) => debug_assert!(
                                    a.bitwise_eq(b),
                                    "incremental rebuild diverges for {solution}"
                                ),
                                (Err(a), Err(b)) => debug_assert_eq!(
                                    a, b,
                                    "incremental rebuild error diverges for {solution}"
                                ),
                                _ => panic!(
                                    "incremental rebuild feasibility diverges for {solution}"
                                ),
                            }
                        }
                    }
                    return built.map(Arc::new);
                }
            }
        }
        ComponentAnalysis::build(component, solution, cores, exec_model, false).map(Arc::new)
    }

    /// Serves one contiguous stretch of a single-coordinate scan from a
    /// batched landscape: every candidate is answered from the memo, the
    /// shared cache, or one [`CoordinateDelta::rebuild_scan`] pass over the
    /// misses. The values
    /// are exactly what [`MakespanEvaluator::makespan`] would return — the
    /// same fast-tier fold over bitwise-identical analyses — and every
    /// candidate lands in the memo, so later probes of the scan are free.
    /// Returns `None` when no incremental scan is active or the delta
    /// context declined construction; the caller then falls back to
    /// per-candidate probing.
    pub fn scan_landscape(&mut self, candidates: &[i64]) -> Option<Vec<f64>> {
        let mut scan = self.coordinate.take()?;
        let values = self.scan_landscape_with(&mut scan, candidates);
        self.coordinate = Some(scan);
        values
    }

    fn scan_landscape_with(
        &mut self,
        scan: &mut CoordinateScan,
        candidates: &[i64],
    ) -> Option<Vec<f64>> {
        let component = self.component;
        let cores = self.platform.cores;
        let exec_model = self.exec_model;
        let j = scan.j;
        let soa = self.soa;
        let mut values = vec![f64::INFINITY; candidates.len()];
        // Candidates the batched rebuild must actually analyze: neither the
        // memo, the SPM pre-gate nor the shared cache answered them.
        let mut need: Vec<(usize, i64)> = Vec::new();
        // Analyses awaiting the recurrence fold. Under `soa` they accumulate
        // here (cache probes and fresh rebuilds alike) and run lane-batched
        // through [`makespan_only_batch`] after the rebuild pass; otherwise
        // each is folded where it appears. Both orders produce bitwise-equal
        // values and identical counter totals.
        let mut pending: Vec<(usize, i64, Arc<ComponentAnalysis>)> = Vec::new();
        let mut sol = scan.base.clone();
        for (i, &kj) in candidates.iter().enumerate() {
            sol.k[j] = kj;
            if let Some(&v) = self.cache.get(&sol) {
                self.cache_hits += 1;
                values[i] = v;
                continue;
            }
            // Mirrors `fast_makespan`'s analytic SPM pre-gate.
            if crate::tiling::spm_bytes_for(component, &sol.k) > self.platform.spm_bytes {
                self.record_scan_value(&sol, f64::INFINITY, i, &mut values);
                continue;
            }
            if let Some(entry) = self
                .analysis_cache
                .as_ref()
                .and_then(|c| c.probe(component, &sol, cores, exec_model))
            {
                self.analysis_reuses += 1;
                match entry {
                    Ok(a) if soa => pending.push((i, kj, a)),
                    Ok(a) => {
                        let v = self.fold_analysis(&a);
                        self.record_scan_value(&sol, v, i, &mut values);
                    }
                    Err(_) => self.record_scan_value(&sol, f64::INFINITY, i, &mut values),
                }
                continue;
            }
            need.push((i, kj));
        }

        if !need.is_empty() {
            // Only a miss pays for the delta context: stable scans — every
            // candidate memoized or cached — never build the frozen arena,
            // mirroring the per-candidate path's lazy construction.
            if scan.delta.is_none() {
                scan.delta = Some(CoordinateDelta::new(component, &scan.base, scan.j, cores));
                if matches!(scan.delta, Some(None)) {
                    self.delta_declines += 1;
                }
            }
            let Some(Some(delta)) = &mut scan.delta else {
                return None;
            };
            let kjs: Vec<i64> = need.iter().map(|&(_, kj)| kj).collect();
            let (built, stats) = delta.rebuild_scan(component, &kjs, exec_model, soa);
            self.scan_truncations += stats.truncations;
            self.soa_scans += usize::from(stats.soa);
            self.soa_fallbacks += usize::from(stats.fallback);
            debug_assert_eq!(built.len(), need.len());
            for (&(i, kj), b) in need.iter().zip(built) {
                self.incremental_rebuilds += 1;
                sol.k[j] = kj;
                let entry = b.map(Arc::new);
                if let Some(cache) = self.analysis_cache.clone() {
                    let (evicted, rejected) =
                        cache.admit(component, &sol, cores, exec_model, entry.clone());
                    self.evictions += evicted;
                    self.admission_rejects += usize::from(rejected);
                }
                match entry {
                    Ok(a) if soa => pending.push((i, kj, a)),
                    Ok(a) => {
                        let v = self.fold_analysis(&a);
                        self.record_scan_value(&sol, v, i, &mut values);
                    }
                    Err(_) => self.record_scan_value(&sol, f64::INFINITY, i, &mut values),
                }
            }
        }
        // SoA fold: the surviving landscape points run through the chunked
        // batch recurrence `SOA_LANES` at a time — the lane-interleaved fold
        // executes each point's exact scalar operation sequence, so every
        // value is bitwise what `fold_analysis` would have produced.
        for chunk in pending.chunks(SOA_LANES) {
            self.simd_batches += usize::from(chunk.len() >= 2);
            let refs: Vec<&ComponentAnalysis> = chunk.iter().map(|(_, _, a)| a.as_ref()).collect();
            let folded = makespan_only_batch(&refs, self.platform, &mut self.batch_scratch);
            debug_assert_eq!(folded.len(), chunk.len());
            for (&(i, kj, _), res) in chunk.iter().zip(&folded) {
                self.fast_evals += 1;
                let v = match res {
                    Ok(fast) => match self.max_phase_ns {
                        Some(cap) if fast.max_phase_ns > cap => f64::INFINITY,
                        _ => fast.makespan_ns,
                    },
                    Err(_) => f64::INFINITY,
                };
                sol.k[j] = kj;
                self.record_scan_value(&sol, v, i, &mut values);
            }
        }
        self.batched_scans += 1;
        Some(values)
    }

    /// The memo/differential bookkeeping of [`MakespanEvaluator::makespan`]
    /// for one batched-scan point: counts the evaluation, runs the sampled
    /// debug differential, memoizes, and stores the landscape value.
    fn record_scan_value(&mut self, solution: &Solution, v: f64, i: usize, values: &mut [f64]) {
        self.evals += 1;
        #[cfg(debug_assertions)]
        if self.evals <= 2
            || self
                .evals
                .is_multiple_of(if crate::analysis::heavy_checks() {
                    101
                } else {
                    1021
                })
        {
            self.check_differential(solution, v);
        }
        self.cache.insert(solution.clone(), v);
        values[i] = v;
    }

    /// The fast tier: analytic SPM pre-gate, (cached) structure analysis,
    /// then the allocation-free recurrence fold.
    fn fast_makespan(&mut self, solution: &Solution) -> f64 {
        let spm_estimate = crate::tiling::spm_bytes_for(self.component, &solution.k);
        if spm_estimate > self.platform.spm_bytes {
            return f64::INFINITY;
        }
        let analysis = match self.analysis_cache.clone() {
            Some(cache) => {
                let lookup = cache.get_or_build_with(
                    self.component,
                    solution,
                    self.platform.cores,
                    self.exec_model,
                    || self.build_analysis(solution),
                );
                if lookup.hit {
                    self.analysis_reuses += 1;
                }
                self.evictions += lookup.evicted;
                self.admission_rejects += usize::from(lookup.rejected);
                match lookup.entry {
                    Ok(a) => a,
                    Err(_) => return f64::INFINITY,
                }
            }
            None => match self.build_analysis(solution) {
                Ok(a) => a,
                Err(_) => return f64::INFINITY,
            },
        };
        self.fold_analysis(&analysis)
    }

    /// The fold tail shared by the per-candidate and batched paths: the
    /// allocation-free recurrence plus the optional phase cap, counted as a
    /// fast-tier evaluation.
    fn fold_analysis(&mut self, analysis: &ComponentAnalysis) -> f64 {
        self.fast_evals += 1;
        match analysis.makespan_only(self.platform, &mut self.scratch) {
            Ok(fast) => match self.max_phase_ns {
                Some(cap) if fast.max_phase_ns > cap => f64::INFINITY,
                _ => fast.makespan_ns,
            },
            Err(_) => f64::INFINITY,
        }
    }

    /// Debug-only differential: the fast tier must agree bitwise with the
    /// materializing tier (sampled to keep debug test runs affordable).
    #[cfg(debug_assertions)]
    fn check_differential(&self, solution: &Solution, fast: f64) {
        let slow = match build_schedule(self.component, solution, self.platform, self.exec_model) {
            Ok(s) => {
                let r = evaluate(&s);
                match self.max_phase_ns {
                    Some(cap) if r.max_phase_ns > cap => f64::INFINITY,
                    _ => r.makespan_ns,
                }
            }
            Err(_) => f64::INFINITY,
        };
        debug_assert_eq!(
            fast.to_bits(),
            slow.to_bits(),
            "two-tier divergence for k={:?} r={:?}: fast {fast} vs full {slow}",
            solution.k,
            solution.r
        );
    }

    /// Full schedule evaluation of a solution (the materializing tier).
    pub fn full(&self, solution: &Solution) -> Option<ScheduleResult> {
        build_schedule(self.component, solution, self.platform, self.exec_model)
            .ok()
            .map(|s| evaluate(&s))
    }
}

/// What one assignment driver (coordinate descent or exhaustive
/// enumeration) reports back to the [`SearchEngine`].
struct DriveOutcome {
    solution: Solution,
    makespan_ns: f64,
    sweep_best_ns: Vec<f64>,
    pruned: usize,
    sweeps_run: usize,
    sweep_rel_delta: Vec<f64>,
    pruned_adaptive: usize,
}

/// Per-worker cost-tier counters folded into [`SearchTelemetry`] after the
/// pool drains (per-assignment telemetry carries the search-shape metrics;
/// these are evaluator internals only meaningful as totals).
#[derive(Debug, Default)]
struct TierCounters {
    fast_evals: usize,
    analysis_reuses: usize,
    pruned: usize,
    incremental_rebuilds: usize,
    evictions: usize,
    admission_rejects: usize,
    pruned_adaptive: usize,
    delta_declines: usize,
    batched_scans: usize,
    scan_truncations: usize,
    soa_scans: usize,
    simd_batches: usize,
    soa_fallbacks: usize,
}

impl TierCounters {
    fn add(&mut self, other: &TierCounters) {
        self.fast_evals += other.fast_evals;
        self.analysis_reuses += other.analysis_reuses;
        self.pruned += other.pruned;
        self.incremental_rebuilds += other.incremental_rebuilds;
        self.evictions += other.evictions;
        self.admission_rejects += other.admission_rejects;
        self.pruned_adaptive += other.pruned_adaptive;
        self.delta_declines += other.delta_declines;
        self.batched_scans += other.batched_scans;
        self.scan_truncations += other.scan_truncations;
        self.soa_scans += other.soa_scans;
        self.simd_batches += other.simd_batches;
        self.soa_fallbacks += other.soa_fallbacks;
    }
}

/// Deterministic winner predicate: a strictly smaller makespan wins; an
/// *exact* tie prefers the lexicographically smallest `(R, K)` tuple. Ties
/// are common on quantized makespans (and universal among infeasible
/// candidates, all `+∞`), so without this rule the winner would depend on
/// visit order alone — fine within one deterministic scan, but fragile
/// across the serial/parallel and descent/exhaustive pairings the tests
/// hold equal.
fn improves(m: f64, sol: &Solution, best: Option<&(Solution, f64)>) -> bool {
    match best {
        None => true,
        Some((bs, bm)) => m < *bm || (m == *bm && (&sol.r, &sol.k) < (&bs.r, &bs.k)),
    }
}

/// The unified parallel search core: a worker pool over non-dominated
/// thread-group assignments, each driven by a per-assignment memoizing
/// [`MakespanEvaluator`]. Both Algorithm 1's coordinate descent and the
/// exhaustive validator run on it, so they share parallelism, memoization,
/// the fast cost tier and telemetry collection.
///
/// Determinism: workers pull assignment indices from an atomic counter, but
/// each assignment's search depends only on its own index-derived seed, and
/// the final winner is picked by an [`improves`] scan in assignment order
/// (strictly smaller makespan, ties to the lexicographically smallest
/// `(R, K)`) — the result is independent of thread count and scheduling.
pub struct SearchEngine<'a> {
    component: &'a Component,
    platform: &'a Platform,
    exec_model: &'a ExecModel,
    max_phase_ns: Option<f64>,
    analysis_cache: Option<Arc<AnalysisCache>>,
    threads: Option<usize>,
    incremental: bool,
    soa: bool,
}

impl<'a> SearchEngine<'a> {
    /// Creates an engine for one component on one platform.
    pub fn new(
        component: &'a Component,
        platform: &'a Platform,
        exec_model: &'a ExecModel,
    ) -> Self {
        SearchEngine {
            component,
            platform,
            exec_model,
            max_phase_ns: None,
            analysis_cache: None,
            threads: None,
            incremental: true,
            soa: false,
        }
    }

    /// Caps the longest single phase (see [`OptimizerOptions::max_phase_ns`]).
    pub fn with_max_phase_ns(mut self, cap: Option<f64>) -> Self {
        self.max_phase_ns = cap;
        self
    }

    /// Attaches a shared [`AnalysisCache`].
    pub fn with_analysis_cache(mut self, cache: Option<Arc<AnalysisCache>>) -> Self {
        self.analysis_cache = cache;
        self
    }

    /// Overrides the worker count (`1` forces a serial search; the result
    /// is identical either way).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Enables or disables incremental analysis rebuilds inside
    /// single-coordinate scans (on by default; the result is bitwise
    /// identical either way — off exists for A/B equivalence tests).
    pub fn with_incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// Enables or disables SoA landscape evaluation inside batched scans
    /// (see [`OptimizerOptions::soa`]; bitwise identical either way).
    pub fn with_soa(mut self, on: bool) -> Self {
        self.soa = on;
        self
    }

    fn evaluator(&self) -> MakespanEvaluator<'a> {
        let mut ev = MakespanEvaluator::new(self.component, self.platform, self.exec_model)
            .with_analysis_cache(self.analysis_cache.clone())
            .with_incremental(self.incremental)
            .with_soa(self.soa);
        ev.max_phase_ns = self.max_phase_ns;
        ev
    }

    /// Algorithm 1's coordinate descent over every assignment.
    pub fn descend(&self, opts: &OptimizerOptions) -> Option<OptimizeOutcome> {
        assert!(self.component.depth() > 0);
        self.explore(|r, idx, ev| descend_assignment(self.component, opts, r, idx, ev))
    }

    /// Exhaustive enumeration of the full candidate space (with SPM
    /// dominance pruning), parallel over assignments.
    pub fn exhaustive(&self) -> Option<OptimizeOutcome> {
        self.explore(|r, _idx, ev| enumerate_assignment(self.component, self.platform, r, ev))
    }

    /// Runs `drive` over every non-dominated assignment on the worker pool
    /// and materializes the winner.
    fn explore<D>(&self, drive: D) -> Option<OptimizeOutcome>
    where
        D: Fn(&[i64], u64, &mut MakespanEvaluator<'a>) -> DriveOutcome + Sync,
    {
        let assignments = nondominated_thread_groups(self.component, self.platform.cores);
        let nthreads = self
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .min(assignments.len().max(1));
        let next = std::sync::atomic::AtomicUsize::new(0);
        type Slot = Option<(Solution, f64, AssignmentTelemetry, TierCounters)>;
        let results: Vec<std::sync::Mutex<Slot>> = assignments
            .iter()
            .map(|_| std::sync::Mutex::new(None))
            .collect();

        let search_clock = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..nthreads {
                s.spawn(|| loop {
                    let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(r) = assignments.get(idx) else { break };
                    let mut ev = self.evaluator();
                    let d = drive(r, idx as u64, &mut ev);
                    let telemetry = AssignmentTelemetry {
                        r: r.clone(),
                        evals: ev.evals,
                        cache_hits: ev.cache_hits,
                        sweep_best_ns: d.sweep_best_ns,
                        best_makespan_ns: d.makespan_ns,
                        sweeps_run: d.sweeps_run,
                        sweep_rel_delta: d.sweep_rel_delta,
                    };
                    let tiers = TierCounters {
                        fast_evals: ev.fast_evals,
                        analysis_reuses: ev.analysis_reuses,
                        pruned: d.pruned,
                        incremental_rebuilds: ev.incremental_rebuilds,
                        evictions: ev.evictions,
                        admission_rejects: ev.admission_rejects,
                        pruned_adaptive: d.pruned_adaptive,
                        delta_declines: ev.delta_declines,
                        batched_scans: ev.batched_scans,
                        scan_truncations: ev.scan_truncations,
                        soa_scans: ev.soa_scans,
                        simd_batches: ev.simd_batches,
                        soa_fallbacks: ev.soa_fallbacks,
                    };
                    *results[idx].lock().unwrap() =
                        Some((d.solution, d.makespan_ns, telemetry, tiers));
                });
            }
        });
        let search_s = search_clock.elapsed().as_secs_f64();

        let mut best: Option<(Solution, f64)> = None;
        let mut per_assignment = Vec::with_capacity(assignments.len());
        let mut totals = TierCounters::default();
        for slot in results {
            let (sol, m, t, tiers) = slot.into_inner().unwrap().expect("worker finished");
            per_assignment.push(t);
            totals.add(&tiers);
            if improves(m, &sol, best.as_ref()) {
                best = Some((sol, m));
            }
        }
        let mut telemetry = SearchTelemetry::from_assignments(per_assignment);
        telemetry.search_s = search_s;
        telemetry.fast_evals = totals.fast_evals;
        telemetry.analysis_reuses = totals.analysis_reuses;
        telemetry.pruned = totals.pruned;
        telemetry.incremental_rebuilds = totals.incremental_rebuilds;
        telemetry.evictions = totals.evictions;
        telemetry.admission_rejects = totals.admission_rejects;
        telemetry.candidates_pruned_adaptive = totals.pruned_adaptive;
        telemetry.delta_declines = totals.delta_declines;
        telemetry.batched_scans = totals.batched_scans;
        telemetry.scan_truncations = totals.scan_truncations;
        telemetry.soa_scans = totals.soa_scans;
        telemetry.simd_batches = totals.simd_batches;
        telemetry.soa_fallbacks = totals.soa_fallbacks;

        let (solution, m) = best?;
        if !m.is_finite() {
            return None;
        }
        let build_clock = Instant::now();
        let evaluator = self.evaluator();
        let result = evaluator.full(&solution)?;
        telemetry.schedule_build_s = build_clock.elapsed().as_secs_f64();
        telemetry.full_builds += 1;
        Some(OptimizeOutcome {
            solution,
            result,
            telemetry,
        })
    }
}

/// Algorithm 1: heuristic optimization of one component's schedule.
///
/// Returns `None` if no feasible solution exists (e.g. even single-iteration
/// tiles overflow the SPM).
pub fn optimize_component(
    component: &Component,
    platform: &Platform,
    exec_model: &ExecModel,
    opts: &OptimizerOptions,
) -> Option<OptimizeOutcome> {
    SearchEngine::new(component, platform, exec_model)
        .with_max_phase_ns(opts.max_phase_ns)
        .with_analysis_cache(opts.analysis_cache.clone())
        .with_incremental(opts.incremental)
        .with_soa(opts.soa)
        .descend(opts)
}

/// Relative sweep-over-sweep improvement for the convergence test. An
/// infeasible-to-feasible transition counts as unbounded improvement; a
/// descent stuck at `+∞` (or exactly repeating its makespan) reports zero.
fn relative_improvement(prev: f64, cur: f64) -> f64 {
    if prev.is_finite() && cur.is_finite() && prev > 0.0 {
        ((prev - cur) / prev).max(0.0)
    } else if prev.to_bits() == cur.to_bits() {
        0.0
    } else {
        f64::INFINITY
    }
}

/// Coordinate descent for one thread-group assignment: the paper's random
/// start plus the largest-tiles corner (often near-optimal when
/// compute-bound); evaluations are memoized, so the overlap is cheap.
///
/// With [`OptimizerOptions::adaptive`] set, two telemetry-driven policies
/// replace the fixed constants (the `max_iter` ceiling stays as a safety
/// bound):
///
/// * **convergence-based early stopping** — the sweep loop terminates once a
///   full sweep improves the makespan by less than `convergence_eps`
///   (relative) or moves no coordinate at all, instead of always running
///   `max_iter` sweeps. A no-move sweep is a fixpoint of the full-list
///   scans, so stopping there is exactly what the remaining fixed sweeps
///   would have produced;
/// * **curvature-sized candidate windows** — each level scans only a window
///   around its incumbent whose radius is derived from the observed local
///   curvature of the makespan (sharp valley → narrow window). A window
///   engages only when no coordinate has moved since that level's previous
///   scan: the single-coordinate landscape is then unchanged, so the full
///   list would provably re-elect the incumbent and the window cannot alter
///   the trajectory — it only skips the re-scan of candidates the previous
///   sweep already rejected. Whenever the window's best still lands on an
///   *interior* edge the full list is rescanned, so the optimum is never
///   silently excluded.
fn descend_assignment(
    component: &Component,
    opts: &OptimizerOptions,
    r: &[i64],
    assignment_index: u64,
    evaluator: &mut MakespanEvaluator<'_>,
) -> DriveOutcome {
    let depth = component.depth();
    let mut rng = SplitMix::new(opts.seed ^ assignment_index.wrapping_mul(0x9e37_79b9));

    let candidates: Vec<Vec<i64>> = (0..depth)
        .map(|j| select_tile_sizes(component, j, r[j]))
        .collect();
    let random_start: Vec<i64> = candidates
        .iter()
        .map(|c| c[(rng.next() as usize) % c.len()])
        .collect();
    let max_start: Vec<i64> = candidates
        .iter()
        .map(|c| *c.last().expect("non-empty candidates"))
        .collect();

    let mut best: Option<(Solution, f64)> = None;
    let mut sweep_best_ns = Vec::with_capacity(2 * opts.max_iter);
    let mut sweeps_run = 0usize;
    let mut sweep_rel_delta = Vec::new();
    let mut pruned_adaptive = 0usize;
    for mut k in [random_start, max_start] {
        // Scan bookkeeping for the adaptive window-engagement rule: the
        // global scan counter, the scan at which `k` last changed, and each
        // level's most recent scan. A level's single-coordinate landscape is
        // unchanged exactly when nothing moved since its previous scan.
        let mut scan_idx = 0usize;
        let mut last_move = 0usize;
        let mut prev_scan = vec![0usize; depth];
        // Previous sweep's makespan; NaN before the first sweep, so the
        // first relative delta reports unbounded improvement.
        let mut prev = f64::NAN;
        for sweep in 0..opts.max_iter {
            let mut moved = false;
            for j in 0..depth {
                scan_idx += 1;
                let stable = opts.adaptive && prev_scan[j] != 0 && last_move <= prev_scan[j];
                // Every probe of this `find_minimum` call varies only
                // coordinate j — exactly the shape the incremental rebuild
                // serves.
                evaluator.begin_coordinate(
                    &Solution {
                        k: k.clone(),
                        r: r.to_vec(),
                    },
                    j,
                );
                let full = &candidates[j][..];
                let f = |kj: i64, ev: &mut MakespanEvaluator<'_>| {
                    let mut sol = Solution {
                        k: k.clone(),
                        r: r.to_vec(),
                    };
                    sol.k[j] = kj;
                    ev.makespan(&sol)
                };
                // Batched mode keeps the bracketing probes on the
                // per-candidate incremental path and serves every
                // exhaustive-scan stretch — exactly the ranges the probing
                // form would walk linearly — from one `rebuild_scan` batch.
                let minimum = |range: std::ops::RangeInclusive<usize>,
                               ev: &mut MakespanEvaluator<'_>| {
                    let win = &full[range];
                    if opts.batched {
                        find_minimum_batched(win, opts.convex_search, ev, f)
                    } else {
                        find_minimum(win, opts.convex_search, |kj| f(kj, ev))
                    }
                };
                let old = k[j];
                let windowed = if stable {
                    curvature_radius(full, k[j], opts, |kj| f(kj, evaluator))
                } else {
                    None
                };
                k[j] = match windowed {
                    Some(rad) if rad < full.len() => {
                        let pos = full.iter().position(|&c| c == k[j]).unwrap_or(0);
                        let lo = pos.saturating_sub(rad);
                        let hi = (pos + rad).min(full.len() - 1);
                        let win = &full[lo..=hi];
                        let kj = minimum(lo..=hi, evaluator);
                        // A winner on an interior window edge may be a
                        // cut-off optimum — fall back to the full list.
                        let cut_lo = kj == win[0] && lo > 0;
                        let cut_hi =
                            kj == *win.last().expect("non-empty window") && hi + 1 < full.len();
                        if cut_lo || cut_hi {
                            minimum(0..=full.len() - 1, evaluator)
                        } else {
                            pruned_adaptive += full.len() - win.len();
                            kj
                        }
                    }
                    _ => minimum(0..=full.len() - 1, evaluator),
                };
                evaluator.end_coordinate();
                prev_scan[j] = scan_idx;
                if k[j] != old {
                    moved = true;
                    last_move = scan_idx;
                }
            }
            sweeps_run += 1;
            // Convergence curve: best makespan known after this sweep. The
            // current `k` was evaluated while scanning its last coordinate,
            // so this lookup is a cache hit — pure observation, no extra
            // schedule constructions and no influence on the search path.
            let cur = evaluator.makespan(&Solution {
                k: k.clone(),
                r: r.to_vec(),
            });
            let so_far = sweep_best_ns.last().copied().unwrap_or(f64::INFINITY);
            sweep_best_ns.push(cur.min(so_far));
            if opts.adaptive {
                let rel = relative_improvement(prev, cur);
                sweep_rel_delta.push(rel);
                prev = cur;
                if sweep + 1 < opts.max_iter && (!moved || rel < opts.convergence_eps) {
                    break;
                }
            }
        }
        let sol = Solution { k, r: r.to_vec() };
        let m = evaluator.makespan(&sol);
        if improves(m, &sol, best.as_ref()) {
            best = Some((sol, m));
        }
    }
    let (solution, makespan_ns) = best.expect("two starts evaluated");
    DriveOutcome {
        solution,
        makespan_ns,
        sweep_best_ns,
        pruned: 0,
        sweeps_run,
        sweep_rel_delta,
        pruned_adaptive,
    }
}

/// Window radius from the observed local curvature around the incumbent
/// candidate, or `None` to keep the full list. `probe` evaluates one
/// candidate of the active single-coordinate scan — a memoized
/// [`MakespanEvaluator::makespan`] call on the per-candidate path, a
/// precomputed landscape lookup on the batched one.
///
/// A discrete quadratic model around the incumbent estimates the relative
/// makespan increase `Δm/m ≈ q·d²/2` of stepping `d` candidates away, where
/// `q` is the second difference of the two neighbors (relative, per index²).
/// The window keeps every candidate whose modeled increase stays within a
/// small multiple of `convergence_eps` — a sharp valley (large `q`) prunes
/// aggressively, a shallow one keeps a wide margin. Flat or concave
/// neighborhoods (`q ≤ 0`), boundary incumbents, infeasible neighbors and
/// short lists all decline to prune. The extra neighbor probes are memoized
/// single-coordinate evaluations.
fn curvature_radius<F: FnMut(i64) -> f64>(
    candidates: &[i64],
    incumbent: i64,
    opts: &OptimizerOptions,
    mut probe: F,
) -> Option<usize> {
    if candidates.len() <= 8 {
        return None; // short lists scan fully anyway
    }
    let pos = candidates.iter().position(|&c| c == incumbent)?;
    if pos == 0 || pos + 1 == candidates.len() {
        return None; // boundary incumbent: one-sided curvature is unreliable
    }
    let f0 = probe(candidates[pos]);
    let fl = probe(candidates[pos - 1]);
    let fr = probe(candidates[pos + 1]);
    if !(f0.is_finite() && fl.is_finite() && fr.is_finite()) || f0 <= 0.0 {
        return None;
    }
    let q = (fl + fr - 2.0 * f0) / f0;
    if q <= 0.0 {
        return None;
    }
    // Tolerated relative increase: comfortably above the convergence
    // threshold so the window never prunes distinctions the stopping rule
    // still cares about.
    let slack = 64.0 * opts.convergence_eps.max(1e-9);
    let d = (2.0 * slack / q).sqrt();
    Some((d.ceil() as usize).clamp(2, candidates.len()))
}

/// Exhaustive optimization over the full `select_tile_sizes` ×
/// thread-assignment space; exponential, for validation on small components.
/// Runs on the shared [`SearchEngine`] worker pool (parallel over
/// assignments) with SPM dominance pruning; the result is identical to a
/// serial, unpruned enumeration.
pub fn optimize_exhaustive(
    component: &Component,
    platform: &Platform,
    exec_model: &ExecModel,
) -> Option<OptimizeOutcome> {
    SearchEngine::new(component, platform, exec_model).exhaustive()
}

/// Exhaustive enumeration of one assignment's candidate space in
/// lexicographic order, pruning SPM-dominated tails: `spm_bytes_for` is
/// monotone in every tile-size component, and candidates are sorted
/// ascending, so once the analytic pre-gate rejects a `K` every remaining
/// candidate of the innermost level (a dominated `Z` tuple under the same
/// `R`) is infeasible too. Only provably-infeasible candidates are skipped,
/// which preserves the exact optimum.
fn enumerate_assignment(
    component: &Component,
    platform: &Platform,
    r: &[i64],
    evaluator: &mut MakespanEvaluator<'_>,
) -> DriveOutcome {
    let depth = component.depth();
    let candidates: Vec<Vec<i64>> = (0..depth)
        .map(|j| select_tile_sizes(component, j, r[j]))
        .collect();
    let mut idx = vec![0usize; depth];
    let mut k_vec = vec![0i64; depth];
    let mut best: Option<(Solution, f64)> = None;
    let mut assignment_best = f64::INFINITY;
    let mut pruned = 0usize;
    let last = depth - 1;
    loop {
        for (j, &i) in idx.iter().enumerate() {
            k_vec[j] = candidates[j][i];
        }
        if idx[last] == 0 {
            // A new innermost row: every solution until the next carry
            // varies only the last coordinate.
            evaluator.begin_coordinate(
                &Solution {
                    k: k_vec.clone(),
                    r: r.to_vec(),
                },
                last,
            );
        }
        if crate::tiling::spm_bytes_for(component, &k_vec) > platform.spm_bytes {
            // This candidate and the rest of the innermost level are all
            // SPM-infeasible (monotonicity) — skip straight to the carry.
            pruned += candidates[last].len() - idx[last];
            idx[last] = candidates[last].len() - 1;
        } else {
            let sol = Solution {
                k: k_vec.clone(),
                r: r.to_vec(),
            };
            let m = evaluator.makespan(&sol);
            assignment_best = assignment_best.min(m);
            if improves(m, &sol, best.as_ref()) {
                best = Some((sol, m));
            }
        }
        // Increment.
        let mut j = depth;
        let mut done = false;
        loop {
            if j == 0 {
                done = true;
                break;
            }
            j -= 1;
            idx[j] += 1;
            if idx[j] < candidates[j].len() {
                break;
            }
            idx[j] = 0;
        }
        if done {
            break;
        }
    }
    evaluator.end_coordinate();
    let (solution, makespan_ns) = best.unwrap_or_else(|| {
        // Every candidate was SPM-pruned: report the smallest-tiles corner
        // as infeasible, matching what an unpruned enumeration would score.
        (
            Solution {
                k: candidates.iter().map(|c| c[0]).collect(),
                r: r.to_vec(),
            },
            f64::INFINITY,
        )
    });
    DriveOutcome {
        solution,
        makespan_ns,
        sweep_best_ns: vec![assignment_best],
        pruned,
        sweeps_run: 0,
        sweep_rel_delta: Vec::new(),
        pruned_adaptive: 0,
    }
}

/// `find_minimum`: returns the candidate minimizing `f`. With
/// `convex` set, uses ternary search over the (empirically convex, §4.3)
/// discrete function once the candidate list is large; falls back to a full
/// scan for short lists or at the search's end.
///
/// Quantized makespans are only *quasi*-convex: plateaus are common. On a
/// plateau `f(m1) == f(m2)` brackets nothing — the minimum may lie on
/// either side (e.g. a flat stretch followed by a drop), so the probes'
/// remaining range is scanned instead of shrunk. Probes returning `+∞`
/// (infeasible solutions) order correctly against finite values and against
/// each other only when both are infinite, which the equality case also
/// catches.
pub fn find_minimum<F: FnMut(i64) -> f64>(candidates: &[i64], convex: bool, mut f: F) -> i64 {
    assert!(!candidates.is_empty());
    if !convex || candidates.len() <= 8 {
        return scan_min(candidates, &mut f);
    }
    let (mut lo, mut hi) = (0usize, candidates.len() - 1);
    while hi - lo > 8 {
        let m1 = lo + (hi - lo) / 3;
        let m2 = hi - (hi - lo) / 3;
        let f1 = f(candidates[m1]);
        let f2 = f(candidates[m2]);
        if f1 == f2 {
            // Plateau (both finite) or doubly-infeasible probes: no safe
            // bracket either way — scan what is left of the range.
            return scan_min(&candidates[lo..=hi], &mut f);
        }
        if f1 < f2 {
            // Strictly quasi-convex step: the minimum cannot sit at or
            // beyond m2, else f would be non-increasing up to it and
            // f1 >= f2.
            hi = m2 - 1;
        } else {
            lo = m1 + 1;
        }
    }
    scan_min(&candidates[lo..=hi], &mut f)
}

/// Landscape-driven entry point of [`find_minimum`]: the batched scan has
/// already evaluated every candidate, so the convex bracketing replays over
/// the precomputed `values` (index-aligned with `candidates`) instead of
/// re-probing an evaluator. The decision sequence — plateau handling,
/// bracketing steps, first-best tie-breaking — is exactly
/// [`find_minimum`]'s, so the selected candidate is bitwise identical to
/// what the probing form would pick on the same values.
pub fn find_minimum_landscape(candidates: &[i64], values: &[f64], convex: bool) -> i64 {
    assert_eq!(candidates.len(), values.len());
    // Lookups stay cheap: candidate lists are sorted ascending, and
    // duplicate candidates (if any) carry identical values.
    find_minimum(candidates, convex, |kj| {
        values[candidates
            .binary_search(&kj)
            .expect("probed candidate is listed")]
    })
}

/// Batched form of [`find_minimum`]: the ternary bracketing probes stay on
/// the evaluator's per-candidate (incremental, memoized) path, while every
/// exhaustive-scan stretch — short lists, plateau fallbacks, the bracket
/// tail — is served by one [`MakespanEvaluator::scan_landscape`] batch over
/// exactly the range the probing form would walk linearly. The probe values
/// and the landscape values are bitwise identical to
/// [`MakespanEvaluator::makespan`]'s, and the decision sequence (plateau
/// handling, bracketing steps, first-best tie-breaking) replicates
/// [`find_minimum`], so the selected candidate matches the per-candidate
/// form bit for bit. Falls back to plain probing when no batch is available
/// (incremental rebuilds off, or a declined delta context).
fn find_minimum_batched<F: FnMut(i64, &mut MakespanEvaluator<'_>) -> f64>(
    candidates: &[i64],
    convex: bool,
    ev: &mut MakespanEvaluator<'_>,
    mut probe: F,
) -> i64 {
    fn batch_scan<F: FnMut(i64, &mut MakespanEvaluator<'_>) -> f64>(
        win: &[i64],
        ev: &mut MakespanEvaluator<'_>,
        probe: &mut F,
    ) -> i64 {
        match ev.scan_landscape(win) {
            // `convex: false` is `scan_min`'s first-best linear scan.
            Some(values) => find_minimum_landscape(win, &values, false),
            None => scan_min(win, &mut |kj| probe(kj, ev)),
        }
    }

    assert!(!candidates.is_empty());
    if !convex || candidates.len() <= 8 {
        return batch_scan(candidates, ev, &mut probe);
    }
    let (mut lo, mut hi) = (0usize, candidates.len() - 1);
    while hi - lo > 8 {
        let m1 = lo + (hi - lo) / 3;
        let m2 = hi - (hi - lo) / 3;
        let f1 = probe(candidates[m1], ev);
        let f2 = probe(candidates[m2], ev);
        if f1 == f2 {
            return batch_scan(&candidates[lo..=hi], ev, &mut probe);
        }
        if f1 < f2 {
            hi = m2 - 1;
        } else {
            lo = m1 + 1;
        }
    }
    batch_scan(&candidates[lo..=hi], ev, &mut probe)
}

/// Exhaustive scan keeping the *first* best value. Candidate lists are
/// sorted ascending, so exact ties deterministically resolve to the
/// smallest `K` — the single-coordinate face of the lexicographic
/// tie-breaking [`improves`] applies across whole solutions.
fn scan_min<F: FnMut(i64) -> f64>(candidates: &[i64], f: &mut F) -> i64 {
    let mut best = candidates[0];
    let mut best_v = f64::INFINITY;
    for &k in candidates {
        let v = f(k);
        if v < best_v {
            best_v = v;
            best = k;
        }
    }
    best
}

/// Tiny deterministic RNG (SplitMix64) used to pick initial solutions.
struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{CompLevel, Component};

    fn mock_component(counts: &[i64], parallel: &[bool]) -> Component {
        Component {
            kernel: "mock".into(),
            levels: counts
                .iter()
                .zip(parallel)
                .enumerate()
                .map(|(i, (&c, &p))| CompLevel {
                    loop_id: i,
                    name: format!("l{i}"),
                    count: c,
                    begin: 0,
                    stride: 1,
                    parallel: p,
                    tilable: true,
                    reduction_parallel: false,
                })
                .collect(),
            stmts: vec![],
            exec_count: 1,
            arrays: vec![],
            deps: vec![],
            work: vec![],
            folded_iters_per_iter: 0,
        }
    }

    #[test]
    fn nondominated_groups_match_paper_example() {
        // §4.3 example: component (l1, l2) on P = 10 cores →
        // (10,1), (5,2), (3,3), (2,5), (1,10).
        let comp = mock_component(&[100, 100], &[true, true]);
        let mut groups = nondominated_thread_groups(&comp, 10);
        groups.sort();
        assert_eq!(
            groups,
            vec![vec![1, 10], vec![2, 5], vec![3, 3], vec![5, 2], vec![10, 1]]
        );
    }

    #[test]
    fn nondominated_respects_parallel_flags() {
        let comp = mock_component(&[100, 100], &[true, false]);
        let groups = nondominated_thread_groups(&comp, 8);
        assert_eq!(groups, vec![vec![8, 1]]);
    }

    #[test]
    fn select_tile_sizes_matches_paper_example() {
        // §4.3 example: N = 24, R = 4 → K = {1, 2, 3, 6}.
        let comp = mock_component(&[24], &[true]);
        assert_eq!(select_tile_sizes(&comp, 0, 4), vec![1, 2, 3, 6]);
    }

    #[test]
    fn select_tile_sizes_single_thread() {
        // N = 6, R = 1: Z decreases at K = 1 (Z=6), 2 (3), 3 (2), 6 (1).
        let comp = mock_component(&[6], &[true]);
        assert_eq!(select_tile_sizes(&comp, 0, 1), vec![1, 2, 3, 6]);
    }

    #[test]
    fn non_tilable_level_single_candidate() {
        let mut comp = mock_component(&[17], &[false]);
        comp.levels[0].tilable = false;
        assert_eq!(select_tile_sizes(&comp, 0, 1), vec![17]);
    }

    #[test]
    fn find_minimum_convex() {
        let candidates: Vec<i64> = (1..=100).collect();
        // Convex with minimum at 37.
        let g = |k: i64| ((k - 37) * (k - 37)) as f64;
        assert_eq!(find_minimum(&candidates, true, g), 37);
        assert_eq!(find_minimum(&candidates, false, g), 37);
    }

    #[test]
    fn find_minimum_with_infeasible_edges() {
        let candidates: Vec<i64> = (1..=50).collect();
        let g = |k: i64| {
            if k > 40 {
                f64::INFINITY
            } else {
                ((k - 20) * (k - 20)) as f64
            }
        };
        assert_eq!(find_minimum(&candidates, true, g), 20);
    }

    /// The regression the plateau fix addresses: a non-increasing quantized
    /// function that is flat over the probe points and only drops at the far
    /// end. The old `f1 <= f2 → hi = m2 - 1` shrink cut the drop away.
    #[test]
    fn find_minimum_flat_then_drop_plateau() {
        let candidates: Vec<i64> = (1..=100).collect();
        let g = |k: i64| if k == 100 { 1.0 } else { 2.0 };
        assert_eq!(find_minimum(&candidates, true, g), 100);
    }

    /// Differential sweep: on quasi-convex (unimodal, plateau-heavy,
    /// quantized, infeasible-edged) functions the convex search must agree
    /// with the exhaustive scan on the minimum *value* (tie-breaking between
    /// equal minima may differ).
    #[test]
    fn find_minimum_differential_against_scan() {
        let candidates: Vec<i64> = (1..=200).collect();
        // A family of quasi-convex shapes indexed by (quantization q,
        // minimum position c, infeasible left/right margins).
        for q in [1i64, 3, 7, 25, 1000] {
            for c in [1i64, 13, 100, 199, 200] {
                for (left, right) in [(0i64, 0i64), (5, 0), (0, 30), (17, 17)] {
                    let f = |k: i64| -> f64 {
                        if k <= left || k > 200 - right {
                            return f64::INFINITY;
                        }
                        // Quantized V shape: plateaus of width q.
                        (((k - c).abs() / q) * q) as f64
                    };
                    let got = f(find_minimum(&candidates, true, f));
                    let want = f(scan_min(&candidates, &mut { f }));
                    assert_eq!(
                        got, want,
                        "diverged for q={q} c={c} margins=({left},{right})"
                    );
                }
            }
        }
        // Monotone staircases (the flat-then-drop family) in both
        // directions, various step widths.
        for w in [2i64, 9, 60, 199] {
            for dir in [1i64, -1] {
                let f = |k: i64| -> f64 { (dir * (k / w)) as f64 };
                let got = f(find_minimum(&candidates, true, f));
                let want = f(scan_min(&candidates, &mut { f }));
                assert_eq!(got, want, "diverged for staircase w={w} dir={dir}");
            }
        }
    }

    #[test]
    fn telemetry_counters_are_consistent() {
        let comp = mock_component(&[64, 48], &[true, true]);
        let platform = Platform::default();
        let model = ExecModel {
            o: vec![2.0, 2.0],
            w: 5.0,
        };
        let out =
            optimize_component(&comp, &platform, &model, &OptimizerOptions::default()).unwrap();
        let t = &out.telemetry;
        // The evals accessor is the sum of per-assignment uncached
        // evaluations.
        assert_eq!(out.evals(), t.evals);
        assert_eq!(
            t.evals,
            t.assignments.iter().map(|a| a.evals).sum::<usize>()
        );
        assert_eq!(
            t.cache_hits,
            t.assignments.iter().map(|a| a.cache_hits).sum::<usize>()
        );
        // Hit rate partitions lookups: evals + hits == lookups.
        assert_eq!(t.lookups(), t.evals + t.cache_hits);
        assert!(t.cache_hits > 0, "memoization never hit");
        assert!(t.cache_hit_rate() > 0.0 && t.cache_hit_rate() < 1.0);
        // One record per non-dominated assignment, in enumeration order.
        assert_eq!(
            t.assignments
                .iter()
                .map(|a| a.r.clone())
                .collect::<Vec<_>>(),
            nondominated_thread_groups(&comp, platform.cores)
        );
        // Convergence curves are monotone non-increasing and end at the
        // best makespan.
        for a in &t.assignments {
            assert!(a.sweep_best_ns.windows(2).all(|w| w[1] <= w[0]));
            assert_eq!(*a.sweep_best_ns.last().unwrap(), a.best_makespan_ns);
        }
        let curve = t.convergence();
        assert!(curve.windows(2).all(|w| w[1] <= w[0]));
        assert_eq!(*curve.last().unwrap(), t.best_makespan_ns);
        assert_eq!(t.best_makespan_ns, out.result.makespan_ns);
    }

    /// A/B equivalence: with and without incremental rebuilds the descent
    /// takes the same path and lands on the same solution with the same
    /// makespan bits — and the incremental run actually used the delta path.
    #[test]
    fn incremental_descent_matches_full_builds() {
        let comp = mock_component(&[64, 48], &[true, true]);
        let platform = Platform::default();
        let model = ExecModel {
            o: vec![2.0, 2.0],
            w: 5.0,
        };
        let on =
            optimize_component(&comp, &platform, &model, &OptimizerOptions::default()).unwrap();
        let off = optimize_component(
            &comp,
            &platform,
            &model,
            &OptimizerOptions {
                incremental: false,
                ..OptimizerOptions::default()
            },
        )
        .unwrap();
        assert_eq!(on.solution, off.solution);
        assert_eq!(
            on.result.makespan_ns.to_bits(),
            off.result.makespan_ns.to_bits()
        );
        assert_eq!(on.evals(), off.evals());
        assert!(on.telemetry.incremental_rebuilds > 0, "delta path unused");
        assert_eq!(off.telemetry.incremental_rebuilds, 0);
    }

    #[test]
    fn incremental_exhaustive_matches_serial_full() {
        let comp = mock_component(&[24, 10], &[true, false]);
        let platform = Platform::default();
        let model = ExecModel {
            o: vec![2.0, 2.0],
            w: 5.0,
        };
        let engine = SearchEngine::new(&comp, &platform, &model);
        let a = engine.exhaustive().unwrap();
        let b = SearchEngine::new(&comp, &platform, &model)
            .with_incremental(false)
            .with_threads(1)
            .exhaustive()
            .unwrap();
        assert_eq!(a.solution, b.solution);
        assert_eq!(
            a.result.makespan_ns.to_bits(),
            b.result.makespan_ns.to_bits()
        );
        assert!(a.telemetry.incremental_rebuilds > 0, "delta path unused");
        assert_eq!(b.telemetry.incremental_rebuilds, 0);
    }

    #[test]
    fn telemetry_observation_does_not_change_solutions() {
        // Telemetry must be pure observation: two identical runs agree, and
        // disabling the convergence probes is impossible — so instead check
        // the probes are all cache hits by construction: eval counts equal
        // those of a run at the same seed (determinism) and the chosen
        // solution matches the exhaustive optimum's makespan on a small
        // component where the heuristic is known to land well.
        let comp = mock_component(&[24, 10], &[true, false]);
        let platform = Platform::default();
        let model = ExecModel {
            o: vec![2.0, 2.0],
            w: 5.0,
        };
        let opts = OptimizerOptions::default();
        let a = optimize_component(&comp, &platform, &model, &opts).unwrap();
        let b = optimize_component(&comp, &platform, &model, &opts).unwrap();
        assert_eq!(a.solution, b.solution);
        assert_eq!(a.evals(), b.evals());
        assert_eq!(a.telemetry.cache_hits, b.telemetry.cache_hits);
    }
}
