//! Makespan evaluation of the parallel streaming PREM schedule (§3.5, §4.2).
//!
//! The schedule is a layered DAG: per-core execution phases chained
//! sequentially, memory batches gating the next execution phase, and all
//! non-empty batches serialized on the single DMA in round-robin core order
//! (Figure 3.4). [`evaluate`] computes the makespan with an `O(P·nseg)`
//! recurrence; [`build_dag`] materializes the equivalent explicit DAG whose
//! longest path must agree — used to validate the recurrence.

use crate::segments::ComponentSchedule;

/// Result of evaluating one component schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleResult {
    /// Makespan of one component execution in ns.
    pub makespan_ns: f64,
    /// Sum of all execution phases (tiled code, no API) in ns.
    pub exec_ns: f64,
    /// Sum of all API overheads charged to execution phases in ns.
    pub api_ns: f64,
    /// Sum of all memory-phase (DMA busy) time in ns.
    pub mem_ns: f64,
    /// Total bytes transferred.
    pub bytes: i64,
    /// Total number of DMA transfers.
    pub ops: usize,
    /// SPM bytes needed per core.
    pub spm_bytes: i64,
    /// Longest single phase (execution incl. API, or memory batch) in ns —
    /// the blocking a non-preemptive phase imposes on higher-priority tasks
    /// in a multitasking system (§2.1.2).
    pub max_phase_ns: f64,
}

/// Evaluates the makespan of a component schedule via the streaming
/// recurrence.
pub fn evaluate(schedule: &ComponentSchedule) -> ScheduleResult {
    let cores = &schedule.cores;
    let ncores = cores.len();
    let max_nseg = cores.iter().map(|c| c.nseg()).max().unwrap_or(0);

    // exec_fin[i][s]: finish of segment s on core i; index 0 = init segment.
    let mut exec_fin: Vec<Vec<f64>> = cores
        .iter()
        .map(|c| {
            let mut v = vec![0.0; c.nseg() + 1];
            v[0] = c.init_api_ns;
            v
        })
        .collect();
    // mem_fin[i][j]: finish of batch j on core i (0 when empty/absent).
    let mut mem_fin: Vec<Vec<f64>> = cores.iter().map(|c| vec![0.0; c.nseg() + 2]).collect();

    let mut dma_free = 0.0f64;
    let mut makespan = 0.0f64;

    for j in 1..=max_nseg + 1 {
        // Round-robin DMA pass over batch level j.
        for i in 0..ncores {
            let nseg = cores[i].nseg();
            if j > nseg + 1 {
                continue;
            }
            let batch = &cores[i].batches[j];
            if batch.is_empty() {
                continue;
            }
            // Batches up to nseg run concurrently with segment j-1 and may
            // start once segment j-2 (or the init segment) has finished; the
            // final unload batch (j = nseg+1) waits for the last segment.
            let gate = if j == nseg + 1 {
                exec_fin[i][nseg]
            } else {
                exec_fin[i][j.saturating_sub(2)]
            };
            let start = dma_free.max(gate);
            let fin = start + batch.time_ns;
            dma_free = fin;
            mem_fin[i][j] = fin;
            makespan = makespan.max(fin);
        }
        // Execution phases of segment j.
        for (i, core) in cores.iter().enumerate() {
            if j > core.nseg() {
                continue;
            }
            let start = exec_fin[i][j - 1].max(mem_fin[i][j]);
            let fin = start + core.exec_ns[j - 1] + core.api_ns[j - 1];
            exec_fin[i][j] = fin;
            makespan = makespan.max(fin);
        }
    }

    let exec_ns: f64 = cores.iter().map(|c| c.exec_ns.iter().sum::<f64>()).sum();
    let api_ns: f64 = cores
        .iter()
        .map(|c| c.init_api_ns + c.api_ns.iter().sum::<f64>())
        .sum();
    let mem_ns: f64 = cores
        .iter()
        .map(|c| c.batches.iter().map(|b| b.time_ns).sum::<f64>())
        .sum();
    let mut max_phase_ns = 0.0f64;
    for c in cores {
        max_phase_ns = max_phase_ns.max(c.init_api_ns);
        for (e, a) in c.exec_ns.iter().zip(&c.api_ns) {
            max_phase_ns = max_phase_ns.max(e + a);
        }
        for b in &c.batches {
            max_phase_ns = max_phase_ns.max(b.time_ns);
        }
    }

    // Explicit combine phase (reduction privatization): a sequential suffix
    // after the streaming DAG drains, priced by the same helper the fast
    // tier uses. Guarded so schedules without privatized accumulators
    // (`combine_ns == 0.0`) evaluate bitwise identically to before.
    if schedule.combine_ns > 0.0 {
        makespan += schedule.combine_ns;
        max_phase_ns = max_phase_ns.max(schedule.combine_phase_ns);
    }

    ScheduleResult {
        makespan_ns: makespan,
        exec_ns,
        api_ns,
        mem_ns,
        bytes: schedule.total_bytes,
        ops: schedule.total_ops,
        spm_bytes: schedule.spm_bytes_needed,
        max_phase_ns,
    }
}

/// A node of the explicit phase DAG.
#[derive(Debug, Clone, PartialEq)]
pub enum PhaseNode {
    /// Initialization segment of a core.
    Init {
        /// Core index.
        core: usize,
    },
    /// Execution phase of segment `seg` (1-based) on `core`.
    Exec {
        /// Core index.
        core: usize,
        /// Segment number.
        seg: usize,
    },
    /// Memory batch `batch` of `core`.
    Mem {
        /// Core index.
        core: usize,
        /// Batch number (gates execution of the same-numbered segment).
        batch: usize,
    },
    /// The explicit combine phase merging privatized reduction partials;
    /// runs after every other phase has finished.
    Combine,
}

/// Explicit DAG of program phases with node weights in ns.
#[derive(Debug, Clone, Default)]
pub struct PhaseDag {
    /// Nodes.
    pub nodes: Vec<PhaseNode>,
    /// Node weights (phase lengths) in ns.
    pub weights: Vec<f64>,
    /// Directed edges `from → to` (precedence constraints).
    pub edges: Vec<(usize, usize)>,
}

impl PhaseDag {
    /// Longest path through the DAG (sum of node weights along the critical
    /// path), computed by dynamic programming over a topological order.
    ///
    /// # Panics
    ///
    /// Panics if the graph contains a cycle.
    pub fn longest_path_ns(&self) -> f64 {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            adj[a].push(b);
            indeg[b] += 1;
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut fin = vec![0.0f64; n];
        let mut seen = 0;
        let mut best = 0.0f64;
        while let Some(u) = stack.pop() {
            seen += 1;
            let f = fin[u] + self.weights[u];
            best = best.max(f);
            for &v in &adj[u] {
                if f > fin[v] {
                    fin[v] = f;
                }
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    stack.push(v);
                }
            }
        }
        assert_eq!(seen, n, "phase DAG has a cycle");
        best
    }
}

/// Builds the explicit phase DAG of a component schedule.
///
/// The DAG encodes: per-core sequential execution, batch-gates-execution,
/// execution-releases-batch, and the DMA round-robin chain across all
/// non-empty batches.
pub fn build_dag(schedule: &ComponentSchedule) -> PhaseDag {
    let mut dag = PhaseDag::default();
    let cores = &schedule.cores;
    let ncores = cores.len();

    // Node ids.
    let mut init_id = vec![usize::MAX; ncores];
    let mut exec_id: Vec<Vec<usize>> = vec![Vec::new(); ncores];
    let mut mem_id: Vec<Vec<usize>> = vec![Vec::new(); ncores];

    for (i, core) in cores.iter().enumerate() {
        init_id[i] = dag.nodes.len();
        dag.nodes.push(PhaseNode::Init { core: i });
        dag.weights.push(core.init_api_ns);
        exec_id[i] = (1..=core.nseg())
            .map(|s| {
                let id = dag.nodes.len();
                dag.nodes.push(PhaseNode::Exec { core: i, seg: s });
                dag.weights.push(core.exec_ns[s - 1] + core.api_ns[s - 1]);
                id
            })
            .collect();
        mem_id[i] = (0..core.nseg() + 2)
            .map(|b| {
                let id = dag.nodes.len();
                dag.nodes.push(PhaseNode::Mem { core: i, batch: b });
                dag.weights.push(core.batches[b].time_ns);
                id
            })
            .collect();
    }

    for (i, core) in cores.iter().enumerate() {
        let nseg = core.nseg();
        for s in 1..=nseg {
            // Sequential execution.
            let prev = if s == 1 {
                init_id[i]
            } else {
                exec_id[i][s - 2]
            };
            dag.edges.push((prev, exec_id[i][s - 1]));
            // Batch s gates exec s.
            if !core.batches[s].is_empty() {
                dag.edges.push((mem_id[i][s], exec_id[i][s - 1]));
            }
        }
        for b in 1..nseg + 2 {
            if core.batches[b].is_empty() {
                continue;
            }
            // Batch b released by exec of segment b-2 (init for b <= 2); the
            // final unload batch waits for the last segment.
            let gate = if b == nseg + 1 && nseg > 0 {
                exec_id[i][nseg - 1]
            } else if b <= 2 {
                init_id[i]
            } else {
                exec_id[i][b - 3]
            };
            dag.edges.push((gate, mem_id[i][b]));
        }
    }

    // DMA round-robin chain over non-empty batches in (level, core) order.
    let max_b = cores.iter().map(|c| c.nseg() + 2).max().unwrap_or(0);
    let mut prev: Option<usize> = None;
    // `b` indexes the parallel `core.batches` / `mem_id` structures.
    #[allow(clippy::needless_range_loop)]
    for b in 1..max_b {
        for (i, core) in cores.iter().enumerate() {
            if b >= core.nseg() + 2 || core.batches[b].is_empty() {
                continue;
            }
            if let Some(p) = prev {
                dag.edges.push((p, mem_id[i][b]));
            }
            prev = Some(mem_id[i][b]);
        }
    }

    // Combine phase: a sequential suffix gated by every other phase, exactly
    // like the recurrence's `makespan += combine_ns`.
    if schedule.combine_ns > 0.0 {
        let id = dag.nodes.len();
        dag.nodes.push(PhaseNode::Combine);
        dag.weights.push(schedule.combine_ns);
        for from in 0..id {
            dag.edges.push((from, id));
        }
    }

    dag
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segments::{Batch, CorePlan, MemOp};
    use crate::tiling::Solution;
    use crate::timing::TransferShape;

    fn op(time_ns: f64) -> MemOp {
        MemOp {
            array_idx: 0,
            is_load: true,
            range: vec![prem_polyhedral::Interval::point(0)],
            swap_index: 0,
            shape: TransferShape {
                range: vec![1],
                array: vec![1],
                elem_bytes: 4,
            },
            time_ns,
        }
    }

    fn batch(time_ns: f64) -> Batch {
        Batch {
            ops: vec![op(time_ns)],
            time_ns,
            bytes: 4,
        }
    }

    fn core(nseg: usize, exec: f64, load: f64, unload: f64) -> CorePlan {
        let mut batches = vec![Batch::default(); nseg + 2];
        for b in batches.iter_mut().take(nseg + 1).skip(1) {
            *b = batch(load);
        }
        batches[nseg + 1] = batch(unload);
        CorePlan {
            nseg,
            exec_ns: vec![exec; nseg],
            api_ns: vec![0.0; nseg],
            init_api_ns: 0.0,
            batches,
        }
    }

    fn sched(cores: Vec<CorePlan>) -> ComponentSchedule {
        ComponentSchedule {
            solution: Solution {
                k: vec![1],
                r: vec![1],
            },
            cores,
            bounding_boxes: vec![],
            spm_bytes_needed: 0,
            total_bytes: 0,
            total_ops: 0,
            combine_ns: 0.0,
            combine_phase_ns: 0.0,
        }
    }

    #[test]
    fn section_4_1_makespan_formula() {
        // 3 cores × 4 segments, execution-bound: makespan = 3 loads + 4 exec
        // + 1 unload (the Figure 3.4 critical path).
        let ld = 10.0;
        let e = 100.0;
        let ul = 7.0;
        let cores = vec![core(4, e, ld, ul), core(4, e, ld, ul), core(4, e, ld, ul)];
        let s = sched(cores);
        let r = evaluate(&s);
        let expected = 3.0 * ld + 4.0 * e + ul;
        assert!(
            (r.makespan_ns - expected).abs() < 1e-9,
            "makespan {} vs expected {expected}",
            r.makespan_ns
        );
    }

    #[test]
    fn memory_bound_schedule_serializes_on_dma() {
        // Memory-bound: loads dominate; the DMA serializes 3 cores × 4 loads
        // plus final unloads.
        let ld = 100.0;
        let e = 1.0;
        let ul = 100.0;
        let cores = vec![core(4, e, ld, ul), core(4, e, ld, ul), core(4, e, ld, ul)];
        let r = evaluate(&sched(cores));
        // All 12 loads + 3 unloads serialized = 1500, plus trailing exec ~e.
        assert!(r.makespan_ns >= 1500.0, "makespan {}", r.makespan_ns);
        assert!(
            r.makespan_ns <= 1500.0 + 4.0 * e + 1.0,
            "makespan {}",
            r.makespan_ns
        );
    }

    #[test]
    fn dag_longest_path_matches_recurrence() {
        for (e, ld, ul) in [(100.0, 10.0, 5.0), (5.0, 50.0, 20.0), (25.0, 25.0, 25.0)] {
            let cores = vec![
                core(4, e, ld, ul),
                core(3, e * 1.5, ld, ul),
                core(5, e, ld * 0.5, ul),
            ];
            let s = sched(cores);
            let r = evaluate(&s);
            let dag = build_dag(&s);
            let lp = dag.longest_path_ns();
            assert!(
                (r.makespan_ns - lp).abs() < 1e-6,
                "recurrence {} vs DAG {lp} for ({e},{ld},{ul})",
                r.makespan_ns
            );
        }
    }

    #[test]
    fn empty_batches_do_not_serialize() {
        // One core with no transfers at all: makespan = sum of exec.
        let mut c = core(3, 10.0, 0.0, 0.0);
        for b in &mut c.batches {
            *b = Batch::default();
        }
        let r = evaluate(&sched(vec![c]));
        assert!((r.makespan_ns - 30.0).abs() < 1e-9);
    }

    #[test]
    fn api_overhead_counted_in_exec() {
        let mut c = core(2, 10.0, 1.0, 1.0);
        c.api_ns = vec![5.0, 5.0];
        c.init_api_ns = 3.0;
        let r = evaluate(&sched(vec![c]));
        assert!((r.api_ns - 13.0).abs() < 1e-9);
        // init(3) → batch1(1) → exec(15) → exec(15) → final unload(1)
        assert!((r.makespan_ns - (3.0 + 1.0 + 15.0 + 15.0 + 1.0)).abs() < 1e-9);
    }
}
