//! Segment construction: canonical ranges, `SegmentToSwap`, memory-phase
//! batches and per-segment execution/API costs (§3.5, §5.3).
//!
//! For each core, the tiles assigned by the [`crate::tiling::TilePlan`]
//! become PREM segments. Per array we track the canonical data element range
//! of every segment; a segment enters the array's `SegmentToSwap` list when
//! its range differs from the previous segment's. Swap lists then place the
//! load and unload transfers into per-core *memory batches*: batch `j` runs
//! concurrently with the execution of segment `j-1` and gates the execution
//! of segment `j` (the round-robin streaming schedule of Figure 3.4).

use crate::analysis::ComponentAnalysis;
use crate::component::{ArrayUse, BufferAttr, Component};
use crate::config::Platform;
use crate::tiling::{Infeasible, Solution, TilePlan};
use crate::timing::{transfer_time_ns, ExecModel, TransferShape};
use prem_polyhedral::Interval;

/// One DMA transfer of a memory batch.
#[derive(Debug, Clone, PartialEq)]
pub struct MemOp {
    /// Index into `component.arrays`.
    pub array_idx: usize,
    /// `true` for a load (main memory → SPM), `false` for an unload.
    pub is_load: bool,
    /// The canonical data element range transferred (per array dimension).
    pub range: Vec<Interval>,
    /// Index of this range in the array's `SegmentToSwap` list; the target
    /// streaming buffer is `swap_index % 2`.
    pub swap_index: usize,
    /// Shape of the transferred canonical range.
    pub shape: TransferShape,
    /// Transfer time in ns (DMA line overhead + bus time + interrupt
    /// handler).
    pub time_ns: f64,
}

/// One memory batch: the transfers performed between two segment executions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Batch {
    /// Transfers, unloads first (write-back before reuse).
    pub ops: Vec<MemOp>,
    /// Total time in ns.
    pub time_ns: f64,
    /// Total bytes moved.
    pub bytes: i64,
}

impl Batch {
    fn push(&mut self, op: MemOp) {
        self.time_ns += op.time_ns;
        self.bytes += op.shape.bytes();
        self.ops.push(op);
    }

    /// Returns `true` if the batch moves no data.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Per-core schedule: segments with costs, plus memory batches.
#[derive(Debug, Clone, Default)]
pub struct CorePlan {
    /// Number of execution segments (tile coordinates are enumerated on
    /// demand through the [`TilePlan`]).
    pub nseg: usize,
    /// Execution-phase length per segment in ns (tiled code only).
    pub exec_ns: Vec<f64>,
    /// API overhead charged to each segment's execution phase in ns.
    pub api_ns: Vec<f64>,
    /// API cost of the initialization segment (buffer allocs, first swaps,
    /// dispatch).
    pub init_api_ns: f64,
    /// Memory batches; `batches[j]` gates the execution of segment `j`
    /// (index 0 is unused, index `nseg+1` is the final unload batch).
    pub batches: Vec<Batch>,
}

impl CorePlan {
    /// Number of execution segments on this core.
    pub fn nseg(&self) -> usize {
        self.nseg
    }
}

/// The complete schedule of one component under one solution.
#[derive(Debug, Clone)]
pub struct ComponentSchedule {
    /// The solution that produced this schedule.
    pub solution: Solution,
    /// Per-core plans (length = platform cores).
    pub cores: Vec<CorePlan>,
    /// Bounding box per array (§5.3.1): the maximum canonical-range shape
    /// over all segments; sizes the SPM buffers.
    pub bounding_boxes: Vec<Vec<i64>>,
    /// Bytes of SPM needed per core (both double-buffer partitions).
    pub spm_bytes_needed: i64,
    /// Total bytes transferred by all cores.
    pub total_bytes: i64,
    /// Total number of DMA transfers.
    pub total_ops: usize,
    /// Total time of the explicit combine phase in ns: the sequential merge
    /// rounds that fold privatized reduction partials after the streaming
    /// schedule drains. Exactly `0.0` when no accumulator is privatized.
    pub combine_ns: f64,
    /// Longest single combine phase in ns (one partial transfer or one
    /// element-wise merge); `0.0` when unused.
    pub combine_phase_ns: f64,
}

/// Builds the complete segment/batch schedule for a solution.
///
/// # Errors
///
/// Returns [`Infeasible`] when the solution violates thread limits, the SPM
/// capacity, the canonical-range overlap rule or buffer persistence.
pub fn build_schedule(
    component: &Component,
    solution: &Solution,
    platform: &Platform,
    exec_model: &ExecModel,
) -> Result<ComponentSchedule, Infeasible> {
    // Fast analytic SPM check before any tile enumeration.
    let spm_estimate = crate::tiling::spm_bytes_for(component, &solution.k);
    if spm_estimate > platform.spm_bytes {
        return Err(Infeasible::SpmOverflow {
            needed: spm_estimate,
            capacity: platform.spm_bytes,
        });
    }
    let analysis = ComponentAnalysis::build(component, solution, platform.cores, exec_model, true)?;
    materialize_schedule(&analysis, component, platform)
}

/// The materializing tier: prices a retained [`ComponentAnalysis`] on a
/// platform, building every `MemOp`, `Batch` and API charge. Used once for
/// the search winner and by codegen/simulation; the search loop itself goes
/// through [`ComponentAnalysis::makespan_only`].
///
/// # Errors
///
/// Returns [`Infeasible::SpmOverflow`] when the bounding boxes exceed the
/// platform's SPM capacity.
///
/// # Panics
///
/// Panics if the analysis was built without `retain_ranges`.
pub fn materialize_schedule(
    analysis: &ComponentAnalysis,
    component: &Component,
    platform: &Platform,
) -> Result<ComponentSchedule, Infeasible> {
    let narr = component.arrays.len();
    let mut cores: Vec<CorePlan> = Vec::with_capacity(analysis.cores.len());

    for ca in &analysis.cores {
        let nseg = ca.nseg;
        let mut cp = CorePlan {
            nseg,
            exec_ns: ca.exec_ns.clone(),
            api_ns: vec![0.0; nseg],
            init_api_ns: 0.0,
            batches: vec![Batch::default(); nseg + 2],
        };
        if nseg == 0 {
            cores.push(cp);
            continue;
        }
        let ranges = ca
            .ranges
            .as_ref()
            .expect("materialize requires an analysis built with retain_ranges");

        // Build batches from swap lists.
        for (ai, arr) in component.arrays.iter().enumerate() {
            let list = &ca.swap_lists[ai];
            let loads = matches!(arr.attr, BufferAttr::Ro | BufferAttr::Rw);
            let unloads = matches!(arr.attr, BufferAttr::Wo | BufferAttr::Rw);
            for x in 0..list.len() {
                let range = &ranges[ai][x];
                let shape = range_shape(arr, range);
                if loads {
                    // x = 0 → batch 1; else batch ST(x-1) + 1.
                    let batch = if x == 0 { 1 } else { list[x - 1].seg + 1 };
                    let op = mem_op(ai, true, range, x, shape.clone(), platform);
                    // Swap-call API cost: charged to the segment where the
                    // call is made (two batches earlier; the init segment for
                    // the first two).
                    charge_swap_call(&mut cp, batch, arr, platform);
                    cp.batches[batch].push(op);
                }
                if unloads {
                    // Unload when the *next* swap replaces this range, or in
                    // the final batch for the last range.
                    let batch = match list.get(x + 1) {
                        Some(next) => next.seg + 1,
                        None => nseg + 1,
                    };
                    let op = mem_op(ai, false, range, x, shape, platform);
                    // A write-only buffer's mid-stream unload is scheduled by
                    // its own swap call (read-write arrays already paid for
                    // the call on the load side; final unloads are covered by
                    // the deallocate calls charged to the last segment).
                    if !loads && batch <= nseg {
                        charge_swap_call(&mut cp, batch, arr, platform);
                    }
                    cp.batches[batch].push(op);
                }
            }
        }
        // Unloads must precede loads within a batch (write-back before the
        // freed buffer is refilled).
        for b in &mut cp.batches {
            b.ops.sort_by_key(|op| op.is_load);
        }

        // Fixed API costs: init segment and per-segment end_segment.
        let api = &platform.api;
        cp.init_api_ns += 2.0 * narr as f64 * api.allocate_buffer + api.dispatch + api.end_segment;
        for s in 0..nseg {
            cp.api_ns[s] += api.end_segment;
        }
        // Buffer deallocations charged to the last segment.
        cp.api_ns[nseg - 1] += 2.0 * narr as f64 * api.deallocate_buffer;

        cores.push(cp);
    }

    if analysis.spm_bytes_needed > platform.spm_bytes {
        return Err(Infeasible::SpmOverflow {
            needed: analysis.spm_bytes_needed,
            capacity: platform.spm_bytes,
        });
    }

    // Price the combine phase with the same helper the fast tier uses so
    // both tiers produce identical f64 bits.
    let (combine_ns, combine_phase_ns) =
        crate::analysis::combine_time(analysis.combine_rounds, &analysis.combine, platform);

    Ok(ComponentSchedule {
        solution: analysis.solution.clone(),
        cores,
        bounding_boxes: analysis.bounding_boxes.clone(),
        spm_bytes_needed: analysis.spm_bytes_needed,
        total_bytes: analysis.total_bytes,
        total_ops: analysis.total_ops,
        combine_ns,
        combine_phase_ns,
    })
}

/// Charges a swap call's API cost to the execution segment where the call is
/// made: two segments before the batch's gated segment (clamped to the init
/// segment).
fn charge_swap_call(cp: &mut CorePlan, batch: usize, arr: &ArrayUse, platform: &Platform) {
    let cost = platform.api.swap_cost(arr.dims.len());
    if batch <= 2 {
        cp.init_api_ns += cost;
    } else {
        cp.api_ns[batch - 3] += cost; // segment (batch - 2), 0-based index
    }
}

fn mem_op(
    array_idx: usize,
    is_load: bool,
    range: &[Interval],
    swap_index: usize,
    shape: TransferShape,
    platform: &Platform,
) -> MemOp {
    let time_ns = transfer_time_ns(&shape, platform) + platform.api.dma_int_handler;
    MemOp {
        array_idx,
        is_load,
        range: range.to_vec(),
        swap_index,
        shape,
        time_ns,
    }
}

fn range_shape(arr: &ArrayUse, range: &[Interval]) -> TransferShape {
    TransferShape {
        range: range.iter().map(|iv| iv.len() as i64).collect(),
        array: arr.dims.clone(),
        elem_bytes: arr.elem_bytes,
    }
}

pub(crate) fn array_has_rw_deps(component: &Component, array: prem_ir::ArrayId) -> bool {
    component.deps.iter().any(|d| {
        d.array == array
            && matches!(
                d.kind,
                prem_polyhedral::DepKind::Flow | prem_polyhedral::DepKind::Output
            )
    })
}

/// Buffer-persistence check (§5.3.1 plus streaming semantics): a RAW/WAW
/// dependence carried at component level `ℓ` crosses segments; the data must
/// stay in the SPM buffer until the sink segment runs, which requires that no
/// level at or inside `ℓ` with more than one iteration range changes the
/// array's canonical range.
///
/// Also called by [`crate::analysis::CoordinateDelta::rebuild`] on its fresh
/// per-`K_j` [`TilePlan`]: the probe in [`range_varies_along`] pins every
/// *other* level at its first tile but walks consecutive ranges of `lvl`
/// itself, so the verdict genuinely depends on every coordinate and is not
/// part of the frozen-level structure the delta precomputes — it must be
/// re-run per rebuild, exactly as the full build does.
pub(crate) fn check_persistence(component: &Component, plan: &TilePlan) -> Result<(), Infeasible> {
    for dep in &component.deps {
        if !matches!(
            dep.kind,
            prem_polyhedral::DepKind::Flow | prem_polyhedral::DepKind::Output
        ) {
            continue;
        }
        let Some(carry) = dep.carry_level() else {
            continue; // same innermost iteration: no segment crossing
        };
        let Some(arr) = component.arrays.iter().find(|a| a.array == dep.array) else {
            continue;
        };
        for lvl in carry..component.depth() {
            if plan.m[lvl] > 1 && range_varies_along(arr, plan, lvl) {
                return Err(Infeasible::PersistenceViolation {
                    array: arr.name.clone(),
                });
            }
        }
    }
    Ok(())
}

/// Whether an array's canonical range changes between any two consecutive
/// tiles of one level (other levels pinned at tile 0). A non-zero coefficient
/// is not enough: a dominating full-span access can keep the hull constant
/// (e.g. an in-place update that always reads the whole vector). All
/// consecutive pairs are checked because guard-clipped accesses can first
/// take effect in a late tile.
fn range_varies_along(arr: &crate::component::ArrayUse, plan: &TilePlan, lvl: usize) -> bool {
    if !arr.affected_by[lvl] {
        return false;
    }
    let mut probe: Vec<Interval> = plan.level_ranges.iter().map(|r| r[0]).collect();
    let mut prev = arr.canonical_range(&probe);
    for t in 1..plan.level_ranges[lvl].len() {
        probe[lvl] = plan.level_ranges[lvl][t];
        let cur = arr.canonical_range(&probe);
        if cur != prev {
            return true;
        }
        prev = cur;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::looptree::LoopTree;
    use prem_ir::{AssignKind, CmpOp, Cond, ElemType, Expr, IdxExpr, Program, ProgramBuilder};

    /// The LSTM (s1, p) component kernel of Table 3.1 with i32-sized floats.
    fn lstm_kernel(nt: i64, ns: i64, np: i64) -> (Program, LoopTree) {
        let mut b = ProgramBuilder::new("lstm_comp");
        let i_arr = b.array("i", vec![ns], ElemType::F32);
        let u = b.array("U", vec![ns, np], ElemType::F32);
        let inp = b.array("inp", vec![nt, np], ElemType::F32);
        let t = b.begin_loop("t", 0, 1, nt);
        let s1 = b.begin_loop("s1", 0, 1, ns);
        let p = b.begin_loop("p", 0, 1, np);
        b.begin_if(Cond::atom(IdxExpr::var(p), CmpOp::Eq));
        b.stmt(
            i_arr,
            vec![IdxExpr::var(s1)],
            AssignKind::Assign,
            Expr::Const(0.0),
        );
        b.end_if();
        b.stmt(
            i_arr,
            vec![IdxExpr::var(s1)],
            AssignKind::AddAssign,
            Expr::mul(
                Expr::load(u, vec![IdxExpr::var(s1), IdxExpr::var(p)]),
                Expr::load(inp, vec![IdxExpr::var(t), IdxExpr::var(p)]),
            ),
        );
        b.end_loop();
        b.end_loop();
        let _ = t;
        b.end_loop();
        let program = b.finish();
        let tree = LoopTree::build(&program).unwrap();
        (program, tree)
    }

    fn lstm_component(program: &Program, tree: &LoopTree) -> Component {
        let t = &tree.roots[0];
        let s1 = &t.children[0];
        let p = &s1.children[0];
        Component::extract(tree, program, &[s1, p])
    }

    fn flat_model() -> ExecModel {
        ExecModel {
            o: vec![1.0, 1.0],
            w: 2.0,
        }
    }

    #[test]
    fn table_3_1_swap_structure() {
        let (program, tree) = lstm_kernel(10, 650, 700);
        let comp = lstm_component(&program, &tree);
        let sol = Solution {
            k: vec![109, 350],
            r: vec![3, 1],
        };
        let platform = Platform::default().with_cores(3).with_spm_bytes(1 << 20);
        let sched = build_schedule(&comp, &sol, &platform, &flat_model()).unwrap();

        let core0 = &sched.cores[0];
        assert_eq!(core0.nseg(), 4);
        // Batches: index 1..=4 gate segments, index 5 is the final unload.
        assert_eq!(core0.batches.len(), 6);

        // i (WO): ranges equal for (seg1, seg2) and (seg3, seg4) →
        // SegmentToSwap = {1, 3} → unload of range(1) in batch 4, final
        // unload in batch 5. No loads for WO.
        let i_idx = comp.arrays.iter().position(|a| a.name == "i").unwrap();
        let i_ops: Vec<(usize, bool)> = core0
            .batches
            .iter()
            .enumerate()
            .flat_map(|(j, b)| {
                b.ops
                    .iter()
                    .filter(|o| o.array_idx == i_idx)
                    .map(move |o| (j, o.is_load))
            })
            .collect();
        assert_eq!(i_ops, vec![(4, false), (5, false)]);

        // U (RO): range changes every segment → loads in batches 1..=4.
        let u_idx = comp.arrays.iter().position(|a| a.name == "U").unwrap();
        let u_batches: Vec<usize> = core0
            .batches
            .iter()
            .enumerate()
            .flat_map(|(j, b)| {
                b.ops
                    .iter()
                    .filter(|o| o.array_idx == u_idx && o.is_load)
                    .map(move |_| j)
            })
            .collect();
        assert_eq!(u_batches, vec![1, 2, 3, 4]);
    }

    #[test]
    fn bounding_boxes_and_spm() {
        let (program, tree) = lstm_kernel(10, 650, 700);
        let comp = lstm_component(&program, &tree);
        let sol = Solution {
            k: vec![109, 350],
            r: vec![3, 1],
        };
        let platform = Platform::default().with_cores(3).with_spm_bytes(1 << 20);
        let sched = build_schedule(&comp, &sol, &platform, &flat_model()).unwrap();
        let u_idx = comp.arrays.iter().position(|a| a.name == "U").unwrap();
        assert_eq!(sched.bounding_boxes[u_idx], vec![109, 350]);
        let i_idx = comp.arrays.iter().position(|a| a.name == "i").unwrap();
        assert_eq!(sched.bounding_boxes[i_idx], vec![109]);
        // SPM need: 2 buffers × (109·350·4 + 109·4 + 1·350·4) bytes.
        let expected = 2 * 4 * (109 * 350 + 109 + 350);
        assert_eq!(sched.spm_bytes_needed, expected);
    }

    #[test]
    fn spm_overflow_detected() {
        let (program, tree) = lstm_kernel(10, 650, 700);
        let comp = lstm_component(&program, &tree);
        let sol = Solution {
            k: vec![650, 700],
            r: vec![1, 1],
        };
        let platform = Platform::default().with_cores(1); // 128 KiB
        let res = build_schedule(&comp, &sol, &platform, &flat_model());
        assert!(matches!(res, Err(Infeasible::SpmOverflow { .. })));
    }

    #[test]
    fn exec_times_use_clipped_extents() {
        let (program, tree) = lstm_kernel(10, 650, 700);
        let comp = lstm_component(&program, &tree);
        let sol = Solution {
            k: vec![109, 350],
            r: vec![3, 1],
        };
        let platform = Platform::default().with_cores(3).with_spm_bytes(1 << 20);
        let sched = build_schedule(&comp, &sol, &platform, &flat_model()).unwrap();
        // Core 2's segments include the boundary tile s1_t = 5 (extent 105).
        let m = flat_model();
        let last_core = &sched.cores[2];
        assert_eq!(last_core.exec_ns[2], m.tile_time_ns(&[105, 350]));
        assert_eq!(sched.cores[0].exec_ns[0], m.tile_time_ns(&[109, 350]));
    }

    #[test]
    fn total_bytes_accounts_loads_and_unloads() {
        let (program, tree) = lstm_kernel(10, 650, 700);
        let comp = lstm_component(&program, &tree);
        let sol = Solution {
            k: vec![109, 350],
            r: vec![3, 1],
        };
        let platform = Platform::default().with_cores(3).with_spm_bytes(1 << 20);
        let sched = build_schedule(&comp, &sol, &platform, &flat_model()).unwrap();
        // Loads: all of U (650·700) + inp (700 per core? inp depends only on
        // p → swaps when p-tile changes).
        // Unloads: all of i (650) written back twice? i's ranges: per core,
        // 2 distinct ranges of ~109–105, each unloaded once → 650 total.
        let u_bytes: i64 = 650 * 700 * 4;
        let i_bytes: i64 = 650 * 4;
        assert!(sched.total_bytes >= u_bytes + i_bytes);
        // And not absurdly more (inp re-loads are small).
        assert!(sched.total_bytes < u_bytes + i_bytes + 3 * 700 * 4 * 4);
    }

    #[test]
    fn persistence_violation_detected() {
        // for k { for c { acc[c] += x[k][c] } } with both levels tiled:
        // the accumulation into acc is carried at k; tiling c (which affects
        // acc's range) between writer and reader evicts the buffer.
        let mut b = ProgramBuilder::new("persist");
        let acc = b.array("acc", vec![64], ElemType::F32);
        let x = b.array("x", vec![64, 64], ElemType::F32);
        let k = b.begin_loop("k", 0, 1, 64);
        let c = b.begin_loop("c", 0, 1, 64);
        b.stmt(
            acc,
            vec![IdxExpr::var(c)],
            AssignKind::AddAssign,
            Expr::load(x, vec![IdxExpr::var(k), IdxExpr::var(c)]),
        );
        b.end_loop();
        b.end_loop();
        let program = b.finish();
        let tree = LoopTree::build(&program).unwrap();
        let kn = &tree.roots[0];
        let cn = &kn.children[0];
        let comp = Component::extract(&tree, &program, &[kn, cn]);
        let sol = Solution {
            k: vec![8, 8],
            r: vec![1, 1],
        };
        let platform = Platform::default().with_cores(1);
        let model = ExecModel {
            o: vec![1.0, 1.0],
            w: 1.0,
        };
        let res = build_schedule(&comp, &sol, &platform, &model);
        assert!(
            matches!(res, Err(Infeasible::PersistenceViolation { .. })),
            "got {res:?}"
        );
        // Keeping c untiled is fine.
        let sol_ok = Solution {
            k: vec![8, 64],
            r: vec![1, 1],
        };
        assert!(build_schedule(&comp, &sol_ok, &platform, &model).is_ok());
    }
}
