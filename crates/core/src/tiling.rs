//! Tiling and thread-group solutions (§3.4).
//!
//! A scheduling solution assigns each component level a tile size `K` and a
//! thread-group count `R`. Level `j` splits into `M = ⌈N/K⌉` iteration
//! ranges, partitioned contiguously over `R` thread groups of at most
//! `Z = ⌈M/R⌉` ranges each; the total thread count is `Π R_j ≤ P`.

use crate::component::Component;
use prem_polyhedral::{div_ceil, Interval};
use std::fmt;

/// Hard cap on the number of segments a solution may create. Solutions past
/// the cap are rejected as infeasible: their per-segment API overhead makes
/// them non-competitive, and walking them would dominate optimizer runtime
/// (the paper reports the same blow-up for tiny tiles, Fig. 6.2).
pub const SEGMENT_CAP: u64 = 1 << 17;

/// A scheduling solution for one component.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Solution {
    /// Tile size per level (`l_j.K`), outermost first.
    pub k: Vec<i64>,
    /// Thread groups per level (`l_j.R`).
    pub r: Vec<i64>,
}

impl Solution {
    /// The trivial solution: one tile (K = N) and one thread.
    pub fn untiled(component: &Component) -> Solution {
        Solution {
            k: component.levels.iter().map(|l| l.count).collect(),
            r: vec![1; component.depth()],
        }
    }

    /// Iteration-range count `M_j = ⌈N_j / K_j⌉` per level.
    pub fn m(&self, component: &Component) -> Vec<i64> {
        self.k
            .iter()
            .zip(&component.levels)
            .map(|(&k, l)| div_ceil(l.count, k))
            .collect()
    }

    /// Ranges per thread group `Z_j = ⌈M_j / R_j⌉`.
    pub fn z(&self, component: &Component) -> Vec<i64> {
        self.m(component)
            .iter()
            .zip(&self.r)
            .map(|(&m, &r)| div_ceil(m, r))
            .collect()
    }

    /// Total threads `Π R_j`.
    pub fn threads(&self) -> i64 {
        self.r.iter().product()
    }

    /// Total segment count `Π M_j` (saturating, so the [`SEGMENT_CAP`] gate
    /// cannot be bypassed by wraparound).
    pub fn total_tiles(&self, component: &Component) -> u64 {
        self.m(component)
            .iter()
            .fold(1u64, |acc, &m| acc.saturating_mul(m as u64))
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "K={:?} R={:?}", self.k, self.r)
    }
}

/// Reason a solution cannot be scheduled.
#[derive(Debug, Clone, PartialEq)]
pub enum Infeasible {
    /// A non-parallel level was given more than one thread group.
    ParallelismViolation {
        /// Offending level index.
        level: usize,
    },
    /// `Π R_j` exceeds the available cores.
    TooManyThreads {
        /// Requested thread count.
        requested: i64,
        /// Available cores.
        available: usize,
    },
    /// Segment count exceeds [`SEGMENT_CAP`].
    TooManySegments {
        /// Requested segment count.
        count: u64,
    },
    /// The double-buffered working set does not fit the SPM.
    SpmOverflow {
        /// Bytes needed for both partitions.
        needed: i64,
        /// SPM capacity.
        capacity: i64,
    },
    /// Consecutive segments have overlapping-but-different canonical ranges
    /// for an array with RAW/WAW dependences (§5.3.1).
    RangeOverlap {
        /// Offending array name.
        array: String,
    },
    /// Data written in one segment would be evicted before a dependent
    /// segment reads it (buffer persistence violated).
    PersistenceViolation {
        /// Offending array name.
        array: String,
    },
}

impl fmt::Display for Infeasible {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Infeasible::ParallelismViolation { level } => {
                write!(f, "level {level} is not parallelizable but R > 1")
            }
            Infeasible::TooManyThreads {
                requested,
                available,
            } => {
                write!(
                    f,
                    "solution needs {requested} threads, only {available} cores"
                )
            }
            Infeasible::TooManySegments { count } => {
                write!(f, "solution creates {count} segments (cap {SEGMENT_CAP})")
            }
            Infeasible::SpmOverflow { needed, capacity } => {
                write!(f, "working set {needed} B exceeds SPM {capacity} B")
            }
            Infeasible::RangeOverlap { array } => {
                write!(f, "overlapping canonical ranges on array {array}")
            }
            Infeasible::PersistenceViolation { array } => {
                write!(f, "buffer persistence violated for array {array}")
            }
        }
    }
}

impl std::error::Error for Infeasible {}

/// The tile-to-thread mapping of a solution.
///
/// Each core's tile set is a *box* of tile indices (the cartesian product of
/// its per-level group ranges), so tiles are enumerated on demand instead of
/// being materialized — the optimizer evaluates thousands of solutions and
/// some probe millions of tiles.
#[derive(Debug, Clone)]
pub struct TilePlan {
    /// `M_j` per level.
    pub m: Vec<i64>,
    /// `Z_j` per level.
    pub z: Vec<i64>,
    /// Counter range per level per tile index.
    pub level_ranges: Vec<Vec<Interval>>,
    /// Per core, the (inclusive) tile-index range it owns per level; `None`
    /// for cores with no tiles.
    pub core_boxes: Vec<Option<Vec<Interval>>>,
}

impl TilePlan {
    /// Builds the tile plan for a solution on `cores` cores.
    ///
    /// # Errors
    ///
    /// Returns [`Infeasible`] for invalid parallelism, thread counts or
    /// segment counts.
    pub fn build(
        component: &Component,
        solution: &Solution,
        cores: usize,
    ) -> Result<TilePlan, Infeasible> {
        assert_eq!(solution.k.len(), component.depth());
        assert_eq!(solution.r.len(), component.depth());
        for (j, (lv, &r)) in component.levels.iter().zip(&solution.r).enumerate() {
            if !lv.parallel && r > 1 {
                return Err(Infeasible::ParallelismViolation { level: j });
            }
        }
        let threads = solution.threads();
        if threads > cores as i64 {
            return Err(Infeasible::TooManyThreads {
                requested: threads,
                available: cores,
            });
        }
        let total = solution.total_tiles(component);
        if total > SEGMENT_CAP {
            return Err(Infeasible::TooManySegments { count: total });
        }

        let m = solution.m(component);
        let z = solution.z(component);
        let level_ranges: Vec<Vec<Interval>> = component
            .levels
            .iter()
            .zip(&solution.k)
            .zip(&m)
            .map(|((lv, &k), &mj)| {
                // `t * k < count` always fits in i64, but `(t + 1) * k` can
                // overflow on the last tile of a huge-extent level; the
                // saturated product still clamps to `count - 1`, the exact
                // boundary value.
                (0..mj)
                    .map(|t| {
                        let hi = t
                            .saturating_add(1)
                            .saturating_mul(k)
                            .saturating_sub(1)
                            .min(lv.count - 1);
                        Interval::new(t * k, hi)
                    })
                    .collect()
            })
            .collect();

        // Radix weights for the thread id: thread = Σ g_j · Π_{k > j} R_k.
        let depth = component.depth();
        let mut weight = vec![1i64; depth];
        for j in (0..depth.saturating_sub(1)).rev() {
            weight[j] = weight[j + 1] * solution.r[j + 1];
        }

        let core_boxes = (0..cores)
            .map(|core| {
                let c = core as i64;
                if c >= threads {
                    return None;
                }
                let mut bx = Vec::with_capacity(depth);
                for j in 0..depth {
                    let g = (c / weight[j]) % solution.r[j];
                    let lo = g * z[j];
                    let hi = ((g + 1) * z[j] - 1).min(m[j] - 1);
                    if lo > hi {
                        return None;
                    }
                    bx.push(Interval::new(lo, hi));
                }
                Some(bx)
            })
            .collect();

        Ok(TilePlan {
            m,
            z,
            level_ranges,
            core_boxes,
        })
    }

    /// Re-targets coordinate `j` of a plan built for a solution that differs
    /// only at `k[j]`, reusing the frozen levels' storage instead of
    /// rebuilding them. Replays [`TilePlan::build`]'s feasibility checks in
    /// the same order (so the reported [`Infeasible`] is bitwise identical),
    /// then rewrites only the `j`-dependent state: `m[j]`, `z[j]`,
    /// `level_ranges[j]` and the per-core boxes. On `Err` the plan keeps its
    /// previous (valid) contents and stays usable.
    ///
    /// # Errors
    ///
    /// Returns [`Infeasible`] for invalid parallelism, thread counts or
    /// segment counts, exactly as a fresh build of `solution` would.
    pub fn set_coordinate(
        &mut self,
        component: &Component,
        solution: &Solution,
        j: usize,
    ) -> Result<(), Infeasible> {
        assert_eq!(solution.k.len(), component.depth());
        assert_eq!(solution.r.len(), component.depth());
        let cores = self.core_boxes.len();
        for (i, (lv, &r)) in component.levels.iter().zip(&solution.r).enumerate() {
            if !lv.parallel && r > 1 {
                return Err(Infeasible::ParallelismViolation { level: i });
            }
        }
        let threads = solution.threads();
        if threads > cores as i64 {
            return Err(Infeasible::TooManyThreads {
                requested: threads,
                available: cores,
            });
        }
        let total = solution.total_tiles(component);
        if total > SEGMENT_CAP {
            return Err(Infeasible::TooManySegments { count: total });
        }

        let lv = &component.levels[j];
        let k = solution.k[j];
        self.m[j] = div_ceil(lv.count, k);
        self.z[j] = div_ceil(self.m[j], solution.r[j]);
        self.level_ranges[j].clear();
        self.level_ranges[j].extend((0..self.m[j]).map(|t| {
            let hi = t
                .saturating_add(1)
                .saturating_mul(k)
                .saturating_sub(1)
                .min(lv.count - 1);
            Interval::new(t * k, hi)
        }));

        let depth = component.depth();
        let mut weight = vec![1i64; depth];
        for i in (0..depth.saturating_sub(1)).rev() {
            weight[i] = weight[i + 1] * solution.r[i + 1];
        }

        // The frozen levels' group ranges are unchanged, but recomputing the
        // whole box is O(depth) per core — cheap next to the per-level range
        // fill above — and keeps the `lo > hi → None` transitions exact.
        let mut scratch: Vec<Interval> = Vec::with_capacity(depth);
        for (core, slot) in self.core_boxes.iter_mut().enumerate() {
            let c = core as i64;
            if c >= threads {
                *slot = None;
                continue;
            }
            scratch.clear();
            let mut empty = false;
            for (i, &w) in weight.iter().enumerate() {
                let g = (c / w) % solution.r[i];
                let lo = g * self.z[i];
                let hi = ((g + 1) * self.z[i] - 1).min(self.m[i] - 1);
                if lo > hi {
                    empty = true;
                    break;
                }
                scratch.push(Interval::new(lo, hi));
            }
            if empty {
                *slot = None;
            } else {
                match slot {
                    Some(bx) => {
                        bx.clear();
                        bx.extend_from_slice(&scratch);
                    }
                    None => *slot = Some(scratch.clone()),
                }
            }
        }
        Ok(())
    }

    /// Number of segments a core executes.
    pub fn core_nseg(&self, core: usize) -> usize {
        match &self.core_boxes[core] {
            Some(bx) => bx.iter().map(|iv| iv.len() as usize).product(),
            None => 0,
        }
    }

    /// Visits the tiles of one core in lexicographic order. The callback
    /// receives the tile-index vector (reused between calls).
    pub fn for_each_core_tile<F: FnMut(&[i64])>(&self, core: usize, mut f: F) {
        let Some(bx) = &self.core_boxes[core] else {
            return;
        };
        let depth = bx.len();
        let mut tile: Vec<i64> = bx.iter().map(|iv| iv.lo).collect();
        'outer: loop {
            f(&tile);
            let mut j = depth;
            loop {
                if j == 0 {
                    break 'outer;
                }
                j -= 1;
                tile[j] += 1;
                if tile[j] <= bx[j].hi {
                    break;
                }
                tile[j] = bx[j].lo;
            }
        }
    }

    /// The tiles of one core, materialized (for tests, code generation and
    /// the functional simulator).
    pub fn core_tiles(&self, core: usize) -> Vec<Vec<i64>> {
        let mut out = Vec::with_capacity(self.core_nseg(core));
        self.for_each_core_tile(core, |t| out.push(t.to_vec()));
        out
    }

    /// Per-level counter ranges of a tile.
    pub fn tile_ranges(&self, tile: &[i64]) -> Vec<Interval> {
        tile.iter()
            .enumerate()
            .map(|(j, &t)| self.level_ranges[j][t as usize])
            .collect()
    }

    /// Writes the per-level counter ranges of a tile into `out`.
    pub fn tile_ranges_into(&self, tile: &[i64], out: &mut Vec<Interval>) {
        out.clear();
        out.extend(
            tile.iter()
                .enumerate()
                .map(|(j, &t)| self.level_ranges[j][t as usize]),
        );
    }

    /// Per-level extents of a tile (clipped at the loop bound).
    pub fn tile_extents(&self, tile: &[i64]) -> Vec<i64> {
        self.tile_ranges(tile)
            .iter()
            .map(|r| r.len() as i64)
            .collect()
    }
}

/// Analytic SPM-footprint estimate: the double-buffered working set of a
/// solution, computed from probe tiles without enumerating segments. Interior
/// tiles maximize every unguarded extent; accesses guarded to late iterations
/// are caught by also probing the last tile window per level. The scanned
/// bounding boxes in `build_schedule` remain the authoritative check, so an
/// adversarial residual underestimate is still rejected there.
pub fn spm_bytes_for(component: &Component, k: &[i64]) -> i64 {
    let first: Vec<Interval> = component
        .levels
        .iter()
        .zip(k)
        .map(|(lv, &kj)| Interval::new(0, kj.min(lv.count) - 1))
        .collect();
    let last: Vec<Interval> = component
        .levels
        .iter()
        .zip(k)
        .map(|(lv, &kj)| Interval::new((lv.count - kj).max(0), lv.count - 1))
        .collect();
    component
        .arrays
        .iter()
        .map(|a| {
            let bytes = |ranges: &[Interval]| {
                a.canonical_range(ranges)
                    .iter()
                    .map(|iv| iv.len() as i64)
                    .product::<i64>()
            };
            2 * a.elem_bytes * bytes(&first).max(bytes(&last))
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{CompLevel, Component};

    fn mock_component(counts: &[i64], parallel: &[bool]) -> Component {
        Component {
            kernel: "mock".into(),
            levels: counts
                .iter()
                .zip(parallel)
                .enumerate()
                .map(|(i, (&c, &p))| CompLevel {
                    loop_id: i,
                    name: format!("l{i}"),
                    count: c,
                    begin: 0,
                    stride: 1,
                    parallel: p,
                    tilable: true,
                    reduction_parallel: false,
                })
                .collect(),
            stmts: vec![],
            exec_count: 1,
            arrays: vec![],
            deps: vec![],
            work: vec![],
            folded_iters_per_iter: 0,
        }
    }

    #[test]
    fn m_and_z_match_lstm_example() {
        // §3.4 example: NS=650, NP=700, K=(109, 350), R=(3, 1).
        let comp = mock_component(&[650, 700], &[true, false]);
        let sol = Solution {
            k: vec![109, 350],
            r: vec![3, 1],
        };
        assert_eq!(sol.m(&comp), vec![6, 2]);
        assert_eq!(sol.z(&comp), vec![2, 2]);
        assert_eq!(sol.threads(), 3);
        assert_eq!(sol.total_tiles(&comp), 12);
    }

    #[test]
    fn tile_plan_assigns_threads_like_listing_3_2() {
        let comp = mock_component(&[650, 700], &[true, false]);
        let sol = Solution {
            k: vec![109, 350],
            r: vec![3, 1],
        };
        let plan = TilePlan::build(&comp, &sol, 3).unwrap();
        // Each core executes 4 segments: s1 tiles 2·threadID + {0,1} × 2 p-tiles.
        for core in 0..3 {
            let tiles = plan.core_tiles(core);
            assert_eq!(tiles.len(), 4, "core {core}");
            for t in tiles {
                assert_eq!((t[0] / 2) as usize, core);
            }
        }
        // Lexicographic per-core order.
        assert_eq!(
            plan.core_tiles(0),
            vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]
        );
        // Boundary tile of s1: range [545, 649] → extent 105.
        assert_eq!(plan.level_ranges[0][5], Interval::new(545, 649));
        assert_eq!(plan.tile_extents(&[5, 1]), vec![105, 350]);
    }

    #[test]
    fn rejects_parallelism_violation() {
        let comp = mock_component(&[10, 10], &[true, false]);
        let sol = Solution {
            k: vec![5, 5],
            r: vec![1, 2],
        };
        assert!(matches!(
            TilePlan::build(&comp, &sol, 8),
            Err(Infeasible::ParallelismViolation { level: 1 })
        ));
    }

    #[test]
    fn rejects_too_many_threads() {
        let comp = mock_component(&[10, 10], &[true, true]);
        let sol = Solution {
            k: vec![1, 1],
            r: vec![4, 4],
        };
        assert!(matches!(
            TilePlan::build(&comp, &sol, 8),
            Err(Infeasible::TooManyThreads { requested: 16, .. })
        ));
    }

    #[test]
    fn uneven_groups_leave_cores_idle() {
        // M = 3 ranges over R = 2 groups: Z = 2 → group 0 gets 2, group 1 gets 1.
        let comp = mock_component(&[9], &[true]);
        let sol = Solution {
            k: vec![3],
            r: vec![2],
        };
        let plan = TilePlan::build(&comp, &sol, 2).unwrap();
        assert_eq!(plan.core_nseg(0), 2);
        assert_eq!(plan.core_nseg(1), 1);
    }

    #[test]
    fn set_coordinate_matches_fresh_build() {
        let comp = mock_component(&[650, 700, 9], &[true, false, true]);
        let base = Solution {
            k: vec![109, 350, 3],
            r: vec![3, 1, 2],
        };
        let cores = 6;
        for j in 0..comp.depth() {
            let mut plan = TilePlan::build(&comp, &base, cores).unwrap();
            for kj in 1..=comp.levels[j].count {
                let mut sol = base.clone();
                sol.k[j] = kj;
                let fresh = TilePlan::build(&comp, &sol, cores);
                match (plan.set_coordinate(&comp, &sol, j), fresh) {
                    (Ok(()), Ok(f)) => {
                        assert_eq!(plan.m, f.m, "j={j} k={kj}");
                        assert_eq!(plan.z, f.z, "j={j} k={kj}");
                        assert_eq!(plan.level_ranges, f.level_ranges, "j={j} k={kj}");
                        assert_eq!(plan.core_boxes, f.core_boxes, "j={j} k={kj}");
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b, "j={j} k={kj}"),
                    (a, b) => panic!("feasibility diverged at j={j} k={kj}: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn set_coordinate_keeps_plan_on_error() {
        // Force a TooManySegments rejection, then check the plan still
        // matches its previous solution bit for bit.
        let comp = mock_component(&[1 << 10, 1 << 10], &[true, true]);
        let good = Solution {
            k: vec![4, 1024],
            r: vec![2, 1],
        };
        let mut plan = TilePlan::build(&comp, &good, 4).unwrap();
        let bad = Solution {
            k: vec![4, 1],
            r: vec![2, 1],
        };
        assert!(matches!(
            plan.set_coordinate(&comp, &bad, 1),
            Err(Infeasible::TooManySegments { .. })
        ));
        let fresh = TilePlan::build(&comp, &good, 4).unwrap();
        assert_eq!(plan.level_ranges, fresh.level_ranges);
        assert_eq!(plan.core_boxes, fresh.core_boxes);
    }

    #[test]
    fn untiled_solution_single_tile() {
        let comp = mock_component(&[7, 9], &[true, true]);
        let sol = Solution::untiled(&comp);
        let plan = TilePlan::build(&comp, &sol, 8).unwrap();
        assert_eq!(sol.total_tiles(&comp), 1);
        assert_eq!(plan.core_nseg(0), 1);
        assert_eq!(plan.tile_extents(&[0, 0]), vec![7, 9]);
    }
}
