//! Timing models for execution and memory phases (§4.2).
//!
//! * Memory phases: DMA line overhead plus burst-granular bus time, computed
//!   from the canonical data element range's shape (`DataLineNum`,
//!   `DataLineSize`, `BurstTransfer`).
//! * Execution phases: the analytic per-tile model
//!   `Σ_j O_j·Π_{k≤j}K_k + W·Π_j K_j`, with parameters obtained either
//!   analytically or by constrained least-squares fitting of profiling
//!   samples (measured time must never exceed the estimate).

use crate::config::Platform;

/// Shape-level description of one canonical data element range used for
/// memory-phase timing: the per-dimension extents of the transferred box and
/// of the containing array.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TransferShape {
    /// Extent of the transferred box per dimension, outermost first.
    pub range: Vec<i64>,
    /// Extent of the containing array per dimension.
    pub array: Vec<i64>,
    /// Element size in bytes.
    pub elem_bytes: i64,
}

impl TransferShape {
    /// Index `α` of the first dimension such that the range spans the whole
    /// array from there inwards (1-based like the paper; `n+1` if none).
    pub fn alpha(&self) -> usize {
        let n = self.range.len();
        let mut alpha = n + 1;
        for d in (0..n).rev() {
            if self.range[d] == self.array[d] {
                alpha = d + 1;
            } else {
                break;
            }
        }
        alpha
    }

    /// Number of contiguous data lines (`DataLineNum`, §4.2).
    pub fn data_line_num(&self) -> i64 {
        let alpha = self.alpha();
        if alpha <= 2 {
            return 1;
        }
        self.range[..alpha - 2].iter().product::<i64>().max(1)
    }

    /// Elements per data line (`DataLineSize`, §4.2):
    /// `Π_{j = max(1, α-1)}^{n} Shape(R̂)_j` (1-based indices).
    pub fn data_line_size(&self) -> i64 {
        let alpha = self.alpha();
        let start = alpha.saturating_sub(2); // 0-based max(0, α-2)
        self.range[start..].iter().product::<i64>().max(1)
    }

    /// Total elements transferred.
    pub fn volume(&self) -> i64 {
        self.range.iter().product()
    }

    /// Total bytes transferred.
    pub fn bytes(&self) -> i64 {
        self.volume() * self.elem_bytes
    }
}

/// Length in ns of one memory transfer: `T_DMA + T_BUS` (§4.2).
pub fn transfer_time_ns(shape: &TransferShape, platform: &Platform) -> f64 {
    transfer_time_from_lines(
        shape.data_line_num(),
        shape.data_line_size(),
        shape.elem_bytes,
        platform,
    )
}

/// [`transfer_time_ns`] from precomputed line structure (`DataLineNum`,
/// `DataLineSize`, element size). The fast makespan tier stores these three
/// invariants per transfer instead of the full [`TransferShape`]; keeping a
/// single implementation guarantees both tiers produce bitwise-identical
/// times.
pub fn transfer_time_from_lines(
    lines: i64,
    line_elems: i64,
    elem_bytes: i64,
    platform: &Platform,
) -> f64 {
    let lines = lines as f64;
    let line_elems = line_elems as f64;
    let bursts = ((line_elems * elem_bytes as f64) / platform.granularity_bytes as f64).ceil();
    let t_dma = platform.dma_line_overhead_ns * lines;
    let t_bus = platform.bus_ns_per_burst() * bursts * lines;
    t_dma + t_bus
}

/// Parameters of the analytic execution-time model for one tilable component:
/// per-level iteration overheads `O_j` and innermost worst-case time `W`, all
/// in ns.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecModel {
    /// Per-level loop-iteration overhead, outermost first (`L` entries).
    pub o: Vec<f64>,
    /// Worst-case execution time of one innermost iteration (including any
    /// folded sub-loops).
    pub w: f64,
}

impl ExecModel {
    /// Estimated execution time of one tile with the given per-level extents
    /// `K` (actual clipped extents, outermost first):
    /// `Σ_j O_j·Π_{k≤j}K_k + W·Π_j K_j`.
    ///
    /// # Panics
    ///
    /// Panics if `extents.len()` differs from the number of levels.
    pub fn tile_time_ns(&self, extents: &[i64]) -> f64 {
        assert_eq!(extents.len(), self.o.len(), "extent arity mismatch");
        let mut t = 0.0;
        let mut prod = 1.0;
        for (o, &k) in self.o.iter().zip(extents) {
            prod *= k as f64;
            t += o * prod;
        }
        t + self.w * prod
    }
}

/// One profiling sample: per-level tile extents and the measured time in ns.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecSample {
    /// Tile extents, outermost first.
    pub extents: Vec<i64>,
    /// Measured execution time of the tile in ns.
    pub time_ns: f64,
}

/// Fits an [`ExecModel`] to profiling samples by least squares under the
/// paper's constraint that no measured value may exceed its estimate (§4.2).
///
/// The procedure solves ordinary least squares via normal equations, clamps
/// negative coefficients to zero (re-fitting the rest), and finally inflates
/// `W` by the minimal uniform amount that satisfies every
/// `measured <= estimated` constraint.
///
/// # Panics
///
/// Panics if `samples` is empty or has inconsistent extent arity.
pub fn fit_exec_model(samples: &[ExecSample]) -> ExecModel {
    assert!(!samples.is_empty(), "need at least one profiling sample");
    let levels = samples[0].extents.len();
    for s in samples {
        assert_eq!(s.extents.len(), levels, "inconsistent sample arity");
    }
    // Design matrix columns: an intercept (fitted only, folded into O_1
    // afterwards), then Π_{k<=j} K_k for j = 1..L-1, then the merged
    // (O_L + W) column — O_L and W share the regressor Π_all and are not
    // separately identifiable, so a single coefficient is fitted and split
    // by convention. The intercept lets the fit absorb fixed per-tile costs
    // instead of smearing them over the innermost work.
    let merged_cols = levels + 1; // intercept, O_1..O_{L-1}, (O_L + W)
    let design: Vec<Vec<f64>> = samples
        .iter()
        .map(|s| {
            let mut r = Vec::with_capacity(merged_cols);
            r.push(1.0);
            let mut prod = 1.0;
            for &k in &s.extents[..levels - 1] {
                prod *= k as f64;
                r.push(prod);
            }
            prod *= s.extents[levels - 1] as f64;
            r.push(prod);
            r
        })
        .collect();
    let y: Vec<f64> = samples.iter().map(|s| s.time_ns).collect();

    let mut active: Vec<bool> = vec![true; merged_cols];
    let mut coeffs = vec![0.0; merged_cols];
    // Iteratively clamp negative coefficients (small active-set loop).
    for _ in 0..merged_cols + 1 {
        coeffs = solve_least_squares(&design, &y, &active);
        let mut clamped = false;
        for (j, c) in coeffs.iter_mut().enumerate() {
            if active[j] && *c < 0.0 {
                active[j] = false;
                *c = 0.0;
                clamped = true;
            }
        }
        if !clamped {
            break;
        }
    }

    // Assemble: intercept folds into O_1 (K_1 >= 1 keeps the estimate an
    // upper bound of the intercept's contribution); the merged coefficient
    // goes to W by convention (the model value is split-invariant).
    let intercept = coeffs[0];
    let mut o: Vec<f64> = coeffs[1..levels].to_vec(); // O_1 .. O_{L-1}
    o.push(0.0); // O_L (merged into W's coefficient)
    o[0] += intercept;
    let w = coeffs[levels];

    let mut model = ExecModel { o, w };

    // Enforce measured <= estimated: residual violations (tiny once the
    // intercept absorbed the fixed costs) are covered by inflating W.
    let mut worst: f64 = 0.0;
    for s in samples {
        let est = model.tile_time_ns(&s.extents);
        if s.time_ns > est {
            let prod: f64 = s.extents.iter().map(|&k| k as f64).product();
            worst = worst.max((s.time_ns - est) / prod);
        }
    }
    model.w += worst;
    model
}

/// Solves min ‖Ax − y‖² over the active columns via normal equations with
/// Gaussian elimination; inactive columns get coefficient 0.
fn solve_least_squares(design: &[Vec<f64>], y: &[f64], active: &[bool]) -> Vec<f64> {
    let cols: Vec<usize> = (0..active.len()).filter(|&j| active[j]).collect();
    let n = cols.len();
    if n == 0 {
        return vec![0.0; active.len()];
    }
    // Normal equations: (AᵀA) x = Aᵀ y
    let mut m = vec![vec![0.0f64; n + 1]; n];
    for (r, row) in design.iter().enumerate() {
        for (i, &ci) in cols.iter().enumerate() {
            for (j, &cj) in cols.iter().enumerate() {
                m[i][j] += row[ci] * row[cj];
            }
            m[i][n] += row[ci] * y[r];
        }
    }
    // Gaussian elimination with partial pivoting; singular pivots get 0.
    let mut x = vec![0.0f64; n];
    let mut row_of_col = vec![usize::MAX; n];
    let mut used = vec![false; n];
    for col in 0..n {
        let mut piv = None;
        let mut best = 1e-9;
        for (r, u) in used.iter().enumerate() {
            if !u && m[r][col].abs() > best {
                best = m[r][col].abs();
                piv = Some(r);
            }
        }
        let Some(p) = piv else { continue };
        used[p] = true;
        row_of_col[col] = p;
        let scale = m[p][col];
        for v in m[p].iter_mut() {
            *v /= scale;
        }
        let prow = m[p].clone();
        for (r, row) in m.iter_mut().enumerate() {
            if r != p && row[col].abs() > 0.0 {
                let f = row[col];
                for (v, pv) in row.iter_mut().zip(&prow) {
                    *v -= f * pv;
                }
            }
        }
    }
    for col in 0..n {
        if row_of_col[col] != usize::MAX {
            x[col] = m[row_of_col[col]][n];
        }
    }
    let mut out = vec![0.0; active.len()];
    for (i, &c) in cols.iter().enumerate() {
        out[c] = x[i];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_and_lines_match_paper_examples() {
        // Shape(a) = <3,5>, range <2,5> → α = 2, one line of 10 elements.
        let s = TransferShape {
            range: vec![2, 5],
            array: vec![3, 5],
            elem_bytes: 4,
        };
        assert_eq!(s.alpha(), 2);
        assert_eq!(s.data_line_num(), 1);
        assert_eq!(s.data_line_size(), 10);

        // Shape(a') = <6,3,5>, range <4,2,5> → α = 3, 4 lines of 10.
        let s2 = TransferShape {
            range: vec![4, 2, 5],
            array: vec![6, 3, 5],
            elem_bytes: 4,
        };
        assert_eq!(s2.alpha(), 3);
        assert_eq!(s2.data_line_num(), 4);
        assert_eq!(s2.data_line_size(), 10);
    }

    #[test]
    fn alpha_when_no_dimension_full() {
        let s = TransferShape {
            range: vec![2, 3],
            array: vec![4, 5],
            elem_bytes: 4,
        };
        assert_eq!(s.alpha(), 3); // n + 1
        assert_eq!(s.data_line_num(), 2);
        assert_eq!(s.data_line_size(), 3);
    }

    #[test]
    fn full_array_is_single_line() {
        let s = TransferShape {
            range: vec![4, 5],
            array: vec![4, 5],
            elem_bytes: 4,
        };
        assert_eq!(s.alpha(), 1);
        assert_eq!(s.data_line_num(), 1);
        assert_eq!(s.data_line_size(), 20);
    }

    #[test]
    fn transfer_time_components() {
        let p = Platform::default(); // 40 ns/line, 4 ns/burst of 64 B
        let s = TransferShape {
            range: vec![2, 5],
            array: vec![3, 5],
            elem_bytes: 4,
        };
        // 1 line, 10 elements = 40 bytes → 1 burst.
        let t = transfer_time_ns(&s, &p);
        assert!((t - (40.0 + 4.0)).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn exec_model_formula() {
        let m = ExecModel {
            o: vec![2.0, 3.0],
            w: 5.0,
        };
        // K = (4, 10): 2*4 + 3*40 + 5*40 = 8 + 120 + 200 = 328
        assert!((m.tile_time_ns(&[4, 10]) - 328.0).abs() < 1e-9);
    }

    #[test]
    fn fit_recovers_exact_model() {
        let truth = ExecModel {
            o: vec![7.0, 2.0],
            w: 3.0,
        };
        let mut samples = Vec::new();
        for k1 in [1i64, 2, 5, 9, 16] {
            for k2 in [1i64, 3, 4, 11] {
                samples.push(ExecSample {
                    extents: vec![k1, k2],
                    time_ns: truth.tile_time_ns(&[k1, k2]),
                });
            }
        }
        let fit = fit_exec_model(&samples);
        for s in &samples {
            let est = fit.tile_time_ns(&s.extents);
            assert!(
                (est - s.time_ns).abs() < 1e-6 * s.time_ns.max(1.0),
                "extents {:?}: est {est} vs {}",
                s.extents,
                s.time_ns
            );
        }
    }

    #[test]
    fn fit_never_underestimates() {
        // Super-linear ground truth: the fit must upper-bound every sample.
        let mut samples = Vec::new();
        for k1 in [1i64, 4, 8, 16] {
            for k2 in [1i64, 2, 8, 32] {
                let n = (k1 * k2) as f64;
                samples.push(ExecSample {
                    extents: vec![k1, k2],
                    time_ns: 10.0 * n + 0.3 * n * (n).ln().max(0.0) + 25.0,
                });
            }
        }
        let fit = fit_exec_model(&samples);
        for s in &samples {
            assert!(
                fit.tile_time_ns(&s.extents) >= s.time_ns - 1e-6,
                "underestimated {:?}",
                s.extents
            );
        }
    }

    #[test]
    fn fit_single_level() {
        let samples: Vec<ExecSample> = [1i64, 2, 4, 8]
            .iter()
            .map(|&k| ExecSample {
                extents: vec![k],
                time_ns: 12.0 * k as f64,
            })
            .collect();
        let fit = fit_exec_model(&samples);
        assert!((fit.tile_time_ns(&[16]) - 192.0).abs() < 1e-6);
    }
}
