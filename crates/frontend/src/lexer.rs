//! Lexer for the C subset accepted by the PREM compiler.

use std::fmt;

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Punctuation / operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Float(v) => write!(f, "float `{v}`"),
            TokenKind::Punct(p) => write!(f, "`{p}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Lexing error.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Message.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

const PUNCTS: &[&str] = &[
    "<<=", ">>=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "==", "!=", "<=", ">=", "(", ")",
    "[", "]", "{", "}", ";", ",", "+", "-", "*", "/", "%", "<", ">", "=", "!",
];

/// Tokenizes a source string. Line (`//`) and block (`/* */`) comments are
/// skipped.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;
    let mut out = Vec::new();

    let advance = |i: &mut usize, line: &mut usize, col: &mut usize, n: usize, bytes: &[u8]| {
        for _ in 0..n {
            if *i < bytes.len() && bytes[*i] == b'\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
        }
    };

    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            advance(&mut i, &mut line, &mut col, 1, bytes);
            continue;
        }
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    advance(&mut i, &mut line, &mut col, 1, bytes);
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                advance(&mut i, &mut line, &mut col, 2, bytes);
                while i + 1 < bytes.len() {
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        advance(&mut i, &mut line, &mut col, 2, bytes);
                        continue 'outer;
                    }
                    advance(&mut i, &mut line, &mut col, 1, bytes);
                }
                return Err(LexError {
                    message: "unterminated block comment".into(),
                    line,
                    col,
                });
            }
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            let (tl, tc) = (line, col);
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                advance(&mut i, &mut line, &mut col, 1, bytes);
            }
            out.push(Token {
                kind: TokenKind::Ident(source[start..i].to_string()),
                line: tl,
                col: tc,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let (tl, tc) = (line, col);
            let mut is_float = false;
            while i < bytes.len() {
                let ch = bytes[i] as char;
                if ch.is_ascii_digit() {
                    advance(&mut i, &mut line, &mut col, 1, bytes);
                } else if ch == '.' && !is_float {
                    is_float = true;
                    advance(&mut i, &mut line, &mut col, 1, bytes);
                } else {
                    break;
                }
            }
            // Optional float suffix.
            let text = &source[start..i];
            if i < bytes.len() && (bytes[i] == b'f' || bytes[i] == b'F') && is_float {
                advance(&mut i, &mut line, &mut col, 1, bytes);
            }
            let kind = if is_float {
                TokenKind::Float(text.parse().map_err(|_| LexError {
                    message: format!("bad float literal `{text}`"),
                    line: tl,
                    col: tc,
                })?)
            } else {
                TokenKind::Int(text.parse().map_err(|_| LexError {
                    message: format!("bad integer literal `{text}`"),
                    line: tl,
                    col: tc,
                })?)
            };
            out.push(Token {
                kind,
                line: tl,
                col: tc,
            });
            continue;
        }
        // Punctuation, longest match first.
        let rest = &source[i..];
        let mut matched = false;
        for p in PUNCTS {
            if rest.starts_with(p) {
                out.push(Token {
                    kind: TokenKind::Punct(p),
                    line,
                    col,
                });
                advance(&mut i, &mut line, &mut col, p.len(), bytes);
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(LexError {
                message: format!("unexpected character `{c}`"),
                line,
                col,
            });
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_loop_header() {
        let toks = lex("for (int i = 0; i < 10; i++) {}").unwrap();
        let kinds: Vec<&TokenKind> = toks.iter().map(|t| &t.kind).collect();
        assert!(matches!(kinds[0], TokenKind::Ident(s) if s == "for"));
        assert!(matches!(kinds[1], TokenKind::Punct("(")));
        assert!(kinds.iter().any(|k| matches!(k, TokenKind::Int(10))));
        assert!(kinds.iter().any(|k| matches!(k, TokenKind::Punct("++"))));
    }

    #[test]
    fn skips_comments() {
        let toks = lex("a /* hi\nthere */ b // end\nc").unwrap();
        let idents: Vec<String> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec!["a", "b", "c"]);
    }

    #[test]
    fn float_literals() {
        let toks = lex("0.0 2.5f 3").unwrap();
        assert!(matches!(toks[0].kind, TokenKind::Float(v) if v == 0.0));
        assert!(matches!(toks[1].kind, TokenKind::Float(v) if v == 2.5));
        assert!(matches!(toks[2].kind, TokenKind::Int(3)));
    }

    #[test]
    fn tracks_positions() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a @ b").is_err());
    }
}
