//! Frontend for the PREM compiler: a parser for the C subset of §3.2
//! (the *pet* substitute of the toolchain in Figure 5.1).
//!
//! The accepted language: statically declared arrays, constant-bound
//! uniform-stride `for` loops, affine `if` guards, and `=`/`+=` statements
//! whose array indices are affine in the loop variables. Named constants
//! (e.g. problem sizes) are substituted at parse time, mirroring PolyBench's
//! `POLYBENCH_USE_SCALAR_LB` mode the paper compiles with (§6.2).

#![warn(missing_docs)]

pub mod lexer;
pub mod parser;

pub use lexer::{lex, LexError, Token, TokenKind};
pub use parser::{parse_kernel, ParseError};
