//! Recursive-descent parser for the C subset of §3.2: constant-bound,
//! uniform-stride `for` nests over statically declared arrays, with affine
//! accesses and affine `if` guards. Named constants may be supplied
//! externally (the `POLYBENCH_USE_SCALAR_LB` workflow of §6.2, where scalar
//! loop bounds are substituted before analysis).

use crate::lexer::{lex, Token, TokenKind};
use prem_ir::{AssignKind, BinOp, CmpOp, Cond, ElemType, Expr, IdxExpr, Program, ProgramBuilder};
use std::collections::HashMap;
use std::fmt;

// The parser is a hardened API boundary (kernels arrive over the network in
// `prem-serve`), so every quantity it folds into the IR is bounded *before*
// the arithmetic that could overflow, and every recursion is depth-capped.
// Violations are `ParseError`s — `parse_kernel` never panics.

/// Bound on any coefficient or constant term of a parsed affine expression
/// (and on integer literals / named parameters).
const MAX_AFFINE: i64 = 1 << 40;
/// Bound on a single loop's iteration count.
const MAX_LOOP_COUNT: i64 = 1 << 24;
/// Bound on the iteration-space product of an open loop nest.
const MAX_TOTAL_ITERS: i64 = 1 << 40;
/// Bound on `for`/`if` statement nesting depth.
const MAX_NESTING: usize = 64;
/// Bound on expression nesting depth (parentheses, unary minus, calls).
const MAX_EXPR_DEPTH: usize = 256;
/// Bound on the element count of one declared array.
const MAX_ARRAY_ELEMS: i64 = 1 << 32;

/// Parse error with position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<crate::lexer::LexError> for ParseError {
    fn from(e: crate::lexer::LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

/// Parses a kernel from C-subset source text.
///
/// `name` becomes the program name; `params` supplies values for named
/// constants (e.g. `NT`, `NS`).
///
/// # Errors
///
/// Returns [`ParseError`] on any lexical, syntactic or semantic violation of
/// the accepted subset (non-affine indices, non-constant bounds, …).
///
/// # Examples
///
/// ```
/// use prem_frontend::parse_kernel;
///
/// let src = r#"
///     float a[100][100]; float b[100]; float c[100];
///     for (int i = 0; i < N; i++) {
///         c[i] = 0.0;
///         for (int j = 0; j < N; j++)
///             c[i] += a[i][j] * b[j];
///     }
/// "#;
/// let p = parse_kernel("matvec", src, &[("N", 100)]).unwrap();
/// assert_eq!(p.loop_count, 2);
/// assert_eq!(p.stmt_count, 2);
/// ```
pub fn parse_kernel(
    name: &str,
    source: &str,
    params: &[(&str, i64)],
) -> Result<Program, ParseError> {
    let tokens = lex(source)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        builder: ProgramBuilder::new(name),
        params: params.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        arrays: HashMap::new(),
        loops: HashMap::new(),
        nesting: 0,
        expr_depth: 0,
        open_iters: 1,
    };
    p.parse_program()?;
    Ok(p.builder.finish())
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    builder: ProgramBuilder,
    params: HashMap<String, i64>,
    /// Declared arrays: name → (id, dimension count).
    arrays: HashMap<String, (usize, usize)>,
    /// Open loop variables: name → loop id.
    loops: HashMap<String, usize>,
    /// Current `for`/`if` nesting depth (capped at [`MAX_NESTING`]).
    nesting: usize,
    /// Current expression recursion depth (capped at [`MAX_EXPR_DEPTH`]).
    expr_depth: usize,
    /// Product of the iteration counts of all open loops (capped at
    /// [`MAX_TOTAL_ITERS`], so downstream `u64` instance-count products
    /// cannot overflow).
    open_iters: i64,
}

/// Parsed arithmetic value: affine in loop variables, or a floating constant.
#[derive(Debug, Clone)]
enum Val {
    Affine(IdxExpr),
    Float(f64),
    Data(Expr),
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        let t = self.peek();
        Err(ParseError {
            message: message.into(),
            line: t.line,
            col: t.col,
        })
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(&self.peek().kind, TokenKind::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {}", self.peek().kind))
        }
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if matches!(&self.peek().kind, TokenKind::Ident(t) if t == s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn parse_program(&mut self) -> Result<(), ParseError> {
        // Declarations first (any `type ident[...]...;` sequence).
        while let Some(elem) = self.peek_type() {
            self.parse_decl(elem)?;
        }
        // Items.
        while !matches!(self.peek().kind, TokenKind::Eof) {
            self.parse_item()?;
        }
        Ok(())
    }

    fn peek_type(&self) -> Option<ElemType> {
        match &self.peek().kind {
            TokenKind::Ident(s) => match s.as_str() {
                "float" => Some(ElemType::F32),
                "double" => Some(ElemType::F64),
                "int" | "int32_t" => Some(ElemType::I32),
                "int64_t" | "long" => Some(ElemType::I64),
                _ => None,
            },
            _ => None,
        }
    }

    fn parse_decl(&mut self, elem: ElemType) -> Result<(), ParseError> {
        self.bump(); // type
        loop {
            let name = self.expect_ident()?;
            if self.arrays.contains_key(&name) {
                return self.err(format!("array `{name}` is declared twice"));
            }
            let mut dims = Vec::new();
            let mut elems = 1i64;
            while self.eat_punct("[") {
                let d = self.parse_const_expr()?;
                if d < 1 {
                    return self.err(format!("array `{name}` has non-positive dimension {d}"));
                }
                elems = match elems.checked_mul(d) {
                    Some(e) if e <= MAX_ARRAY_ELEMS => e,
                    _ => {
                        return self
                            .err(format!("array `{name}` exceeds {MAX_ARRAY_ELEMS} elements"))
                    }
                };
                dims.push(d);
                self.expect_punct("]")?;
            }
            if dims.is_empty() {
                return self.err(format!("array `{name}` needs at least one dimension"));
            }
            let ndims = dims.len();
            let id = self.builder.array(&name, dims, elem);
            self.arrays.insert(name, (id, ndims));
            if self.eat_punct(",") {
                continue;
            }
            self.expect_punct(";")?;
            break;
        }
        Ok(())
    }

    /// Evaluates a compile-time constant integer expression.
    fn parse_const_expr(&mut self) -> Result<i64, ParseError> {
        let e = self.parse_affine()?;
        if !e.is_constant() {
            return self.err("expected a compile-time constant");
        }
        Ok(e.constant_term())
    }

    fn parse_item(&mut self) -> Result<(), ParseError> {
        self.nesting += 1;
        if self.nesting > MAX_NESTING {
            return self.err(format!(
                "statements nest deeper than the supported {MAX_NESTING} levels"
            ));
        }
        let r = if self.eat_ident("for") {
            self.parse_for()
        } else if self.eat_ident("if") {
            self.parse_if()
        } else {
            self.parse_assign()
        };
        self.nesting -= 1;
        r
    }

    fn parse_block(&mut self) -> Result<(), ParseError> {
        if self.eat_punct("{") {
            while !self.eat_punct("}") {
                if matches!(self.peek().kind, TokenKind::Eof) {
                    return self.err("unterminated block");
                }
                self.parse_item()?;
            }
            Ok(())
        } else {
            self.parse_item()
        }
    }

    fn parse_for(&mut self) -> Result<(), ParseError> {
        self.expect_punct("(")?;
        self.eat_ident("int");
        let var = self.expect_ident()?;
        self.expect_punct("=")?;
        let begin = self.parse_const_expr()?;
        self.expect_punct(";")?;
        let v2 = self.expect_ident()?;
        if v2 != var {
            return self.err(format!("loop condition must test `{var}`"));
        }
        let strict = if self.eat_punct("<") {
            true
        } else if self.eat_punct("<=") {
            false
        } else {
            return self.err("loop condition must be `<` or `<=`");
        };
        let bound = self.parse_const_expr()?;
        self.expect_punct(";")?;
        let v3 = self.expect_ident()?;
        if v3 != var {
            return self.err(format!("loop increment must update `{var}`"));
        }
        let stride = if self.eat_punct("++") {
            1
        } else if self.eat_punct("+=") {
            let s = self.parse_const_expr()?;
            if s < 1 {
                return self.err("loop stride must be positive");
            }
            s
        } else {
            return self.err("loop increment must be `++` or `+= C`");
        };
        self.expect_punct(")")?;

        // `begin`, `bound` and `stride` came through `parse_const_expr`, so
        // their magnitudes are bounded by `MAX_AFFINE` and none of the
        // arithmetic below can overflow.
        let last = if strict { bound - 1 } else { bound };
        if last < begin {
            return self.err("loop executes zero iterations");
        }
        let count = (last - begin) / stride + 1;
        if count > MAX_LOOP_COUNT {
            return self.err(format!(
                "loop `{var}` runs {count} iterations (max {MAX_LOOP_COUNT})"
            ));
        }
        let total = match self.open_iters.checked_mul(count) {
            Some(t) if t <= MAX_TOTAL_ITERS => t,
            _ => {
                return self.err(format!(
                    "loop nest iteration space exceeds {MAX_TOTAL_ITERS} instances"
                ))
            }
        };
        let saved_iters = self.open_iters;
        self.open_iters = total;
        let id = self.builder.begin_loop(&var, begin, stride, count);
        let shadowed = self.loops.insert(var.clone(), id);
        self.parse_block()?;
        match shadowed {
            Some(old) => {
                self.loops.insert(var, old);
            }
            None => {
                self.loops.remove(&var);
            }
        }
        self.open_iters = saved_iters;
        self.builder.end_loop();
        Ok(())
    }

    fn parse_if(&mut self) -> Result<(), ParseError> {
        self.expect_punct("(")?;
        let mut cond = Cond::always();
        loop {
            let lhs = self.parse_affine()?;
            let op = if self.eat_punct("==") {
                CmpOp::Eq
            } else if self.eat_punct(">=") {
                CmpOp::Ge
            } else if self.eat_punct(">") {
                CmpOp::Gt
            } else if self.eat_punct("<=") {
                CmpOp::Le
            } else if self.eat_punct("<") {
                CmpOp::Lt
            } else {
                return self.err("expected comparison operator in condition");
            };
            let rhs = self.parse_affine()?;
            cond = cond.and(Cond::atom(lhs.sub(&rhs), op));
            if !self.eat_punct("&&") {
                break;
            }
        }
        self.expect_punct(")")?;
        self.builder.begin_if(cond);
        self.parse_block()?;
        self.builder.end_if();
        Ok(())
    }

    fn parse_assign(&mut self) -> Result<(), ParseError> {
        let name = self.expect_ident()?;
        let Some(&(array, ndims)) = self.arrays.get(&name) else {
            return self.err(format!("unknown array `{name}`"));
        };
        let mut indices = Vec::new();
        while self.eat_punct("[") {
            indices.push(self.parse_affine()?);
            self.expect_punct("]")?;
        }
        if indices.len() != ndims {
            return self.err(format!(
                "array `{name}` has {ndims} dimensions but {} indices",
                indices.len()
            ));
        }
        let kind = if self.eat_punct("=") {
            AssignKind::Assign
        } else if self.eat_punct("+=") {
            AssignKind::AddAssign
        } else {
            return self.err("expected `=` or `+=`");
        };
        let rhs = self.parse_data_expr()?;
        self.expect_punct(";")?;
        self.builder.stmt(array, indices, kind, rhs);
        Ok(())
    }

    /// Affine expression over loop variables and named constants.
    fn parse_affine(&mut self) -> Result<IdxExpr, ParseError> {
        match self.parse_value(true)? {
            Val::Affine(e) => Ok(e),
            Val::Float(_) | Val::Data(_) => self.err("expected an affine integer expression"),
        }
    }

    /// Data (floating) expression for statement right-hand sides.
    fn parse_data_expr(&mut self) -> Result<Expr, ParseError> {
        Ok(to_data(self.parse_value(false)?))
    }

    /// Pratt-lite parser over `+ - * /` with unary minus, parentheses, array
    /// loads, `MAX`/`MIN` calls, loop variables and named constants.
    /// `affine_ctx` selects whether array loads are allowed.
    fn parse_value(&mut self, affine_ctx: bool) -> Result<Val, ParseError> {
        let mut lhs = self.parse_term(affine_ctx)?;
        loop {
            let op = if self.eat_punct("+") {
                '+'
            } else if self.eat_punct("-") {
                '-'
            } else {
                break;
            };
            let rhs = self.parse_term(affine_ctx)?;
            lhs = self.combine(lhs, rhs, op)?;
        }
        Ok(lhs)
    }

    fn parse_term(&mut self, affine_ctx: bool) -> Result<Val, ParseError> {
        let mut lhs = self.parse_factor(affine_ctx)?;
        loop {
            let op = if self.eat_punct("*") {
                '*'
            } else if self.eat_punct("/") {
                '/'
            } else {
                break;
            };
            let rhs = self.parse_factor(affine_ctx)?;
            lhs = self.combine(lhs, rhs, op)?;
        }
        Ok(lhs)
    }

    /// Checks every coefficient of an affine result against [`MAX_AFFINE`].
    /// Inputs are bounded by induction, so sums reach at most `2^41` and
    /// never overflow before this check runs; products are pre-checked with
    /// `checked_mul` in [`Parser::combine`].
    fn bounded_affine(&self, e: IdxExpr) -> Result<Val, ParseError> {
        let ok = (-MAX_AFFINE..=MAX_AFFINE).contains(&e.constant_term())
            && e.terms()
                .all(|(_, c)| (-MAX_AFFINE..=MAX_AFFINE).contains(&c));
        if ok {
            Ok(Val::Affine(e))
        } else {
            self.err(format!(
                "affine expression coefficients exceed the supported magnitude {MAX_AFFINE}"
            ))
        }
    }

    fn combine(&self, a: Val, b: Val, op: char) -> Result<Val, ParseError> {
        use Val::*;
        match (a, b, op) {
            (Affine(x), Affine(y), '+') => self.bounded_affine(x.add(&y)),
            (Affine(x), Affine(y), '-') => self.bounded_affine(x.sub(&y)),
            (Affine(x), Affine(y), '*') => {
                let (e, k) = if y.is_constant() {
                    (x, y.constant_term())
                } else if x.is_constant() {
                    (y, x.constant_term())
                } else {
                    return self.err("product of two loop variables is not affine");
                };
                let in_range = |v: i64| (-MAX_AFFINE..=MAX_AFFINE).contains(&v);
                let fits = e.constant_term().checked_mul(k).is_some_and(in_range)
                    && e.terms()
                        .all(|(_, c)| c.checked_mul(k).is_some_and(in_range));
                if !fits {
                    return self.err(format!(
                        "affine expression coefficients exceed the supported magnitude {MAX_AFFINE}"
                    ));
                }
                Ok(Affine(e.scale(k)))
            }
            (Affine(x), Affine(y), '/') => {
                if y.is_constant() && x.is_constant() && y.constant_term() != 0 {
                    Ok(Affine(IdxExpr::constant(
                        x.constant_term() / y.constant_term(),
                    )))
                } else {
                    self.err("division is only allowed between constants")
                }
            }
            (a, b, op) => {
                // Mixed / data context: build an Expr tree.
                let (x, y) = (to_data(a), to_data(b));
                let bop = match op {
                    '+' => BinOp::Add,
                    '-' => BinOp::Sub,
                    '*' => BinOp::Mul,
                    '/' => BinOp::Div,
                    _ => unreachable!(),
                };
                Ok(Data(Expr::bin(bop, x, y)))
            }
        }
    }

    fn parse_factor(&mut self, affine_ctx: bool) -> Result<Val, ParseError> {
        self.expr_depth += 1;
        if self.expr_depth > MAX_EXPR_DEPTH {
            return self.err(format!(
                "expression nests deeper than the supported {MAX_EXPR_DEPTH} levels"
            ));
        }
        let r = self.parse_factor_inner(affine_ctx);
        self.expr_depth -= 1;
        r
    }

    fn parse_factor_inner(&mut self, affine_ctx: bool) -> Result<Val, ParseError> {
        if self.eat_punct("(") {
            let v = self.parse_value(affine_ctx)?;
            self.expect_punct(")")?;
            return Ok(v);
        }
        if self.eat_punct("-") {
            let v = self.parse_factor(affine_ctx)?;
            return Ok(match v {
                Val::Affine(e) => Val::Affine(e.scale(-1)),
                Val::Float(f) => Val::Float(-f),
                Val::Data(e) => Val::Data(Expr::Neg(Box::new(e))),
            });
        }
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.bump();
                if !(-MAX_AFFINE..=MAX_AFFINE).contains(&v) {
                    return self.err(format!(
                        "integer literal {v} exceeds the supported magnitude {MAX_AFFINE}"
                    ));
                }
                Ok(Val::Affine(IdxExpr::constant(v)))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Val::Float(v))
            }
            TokenKind::Ident(name) => {
                self.bump();
                // MAX / MIN / fmax / fmin calls.
                if matches!(
                    name.as_str(),
                    "MAX" | "MIN" | "fmax" | "fmaxf" | "fmin" | "fminf"
                ) && self.eat_punct("(")
                {
                    let a = self.parse_value(false)?;
                    self.expect_punct(",")?;
                    let b = self.parse_value(false)?;
                    self.expect_punct(")")?;
                    let op = if name.to_ascii_lowercase().contains("max") {
                        BinOp::Max
                    } else {
                        BinOp::Min
                    };
                    return Ok(Val::Data(Expr::bin(op, to_data(a), to_data(b))));
                }
                if let Some(&id) = self.loops.get(&name) {
                    return Ok(Val::Affine(IdxExpr::var(id)));
                }
                if let Some(&v) = self.params.get(&name) {
                    if !(-MAX_AFFINE..=MAX_AFFINE).contains(&v) {
                        return self.err(format!(
                            "parameter `{name}` value {v} exceeds the supported magnitude"
                        ));
                    }
                    return Ok(Val::Affine(IdxExpr::constant(v)));
                }
                if let Some(&(array, ndims)) = self.arrays.get(&name) {
                    if affine_ctx {
                        return self.err(format!(
                            "array `{name}` cannot appear in an affine expression"
                        ));
                    }
                    let mut indices = Vec::new();
                    while self.eat_punct("[") {
                        indices.push(self.parse_affine()?);
                        self.expect_punct("]")?;
                    }
                    if indices.is_empty() {
                        return self.err(format!("array `{name}` used without indices"));
                    }
                    if indices.len() != ndims {
                        return self.err(format!(
                            "array `{name}` has {ndims} dimensions but {} indices",
                            indices.len()
                        ));
                    }
                    return Ok(Val::Data(Expr::load(array, indices)));
                }
                self.err(format!("unknown identifier `{name}`"))
            }
            other => self.err(format!("unexpected {other}")),
        }
    }
}

fn to_data(v: Val) -> Expr {
    match v {
        Val::Affine(e) => {
            if e.is_constant() {
                Expr::Const(e.constant_term() as f64)
            } else {
                Expr::Index(e)
            }
        }
        Val::Float(f) => Expr::Const(f),
        Val::Data(e) => e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_ir::{run_program, DataStore, MemStore};

    #[test]
    fn parses_matvec_like_figure_2_3() {
        let src = r#"
            double a[100][100]; double b[100]; double c[100];
            for (int i = 0; i < 100; i++) {
                c[i] = 0.0;
                for (int j = 0; j < 100; j++) {
                    c[i] = c[i] + a[i][j] * b[j];
                }
            }
        "#;
        let p = parse_kernel("matvec", src, &[]).unwrap();
        assert_eq!(p.loop_count, 2);
        assert_eq!(p.stmt_count, 2);
        assert_eq!(p.instance_count(), 100 + 100 * 100);
    }

    #[test]
    fn parses_guards_and_params() {
        let src = r#"
            float x[16];
            for (int t = 0; t < NT; t++)
                if (t > 0)
                    x[t] = x[t - 1] + 1.0;
        "#;
        let p = parse_kernel("scan", src, &[("NT", 16)]).unwrap();
        assert_eq!(p.instance_count(), 15);
        let mut store = MemStore::zeroed(&p);
        run_program(&p, &mut store);
        assert_eq!(store.load(0, &[15]), 15.0);
    }

    #[test]
    fn parses_strided_loops() {
        let src = r#"
            float a[20];
            for (int i = 0; i < 20; i += 3)
                a[i] = 1.0;
        "#;
        let p = parse_kernel("s", src, &[]).unwrap();
        let l = p.find_loop(0).unwrap();
        assert_eq!(l.stride, 3);
        assert_eq!(l.count, 7);
    }

    #[test]
    fn parses_max_calls() {
        let src = r#"
            float o[4]; float x[8];
            for (int i = 0; i < 4; i++)
                o[i] = MAX(x[2 * i], x[2 * i + 1]);
        "#;
        let p = parse_kernel("m", src, &[]).unwrap();
        let mut store = MemStore::zeroed(&p);
        for j in 0..8 {
            store.store(1, &[j], (j as f64) * if j % 2 == 0 { 1.0 } else { -1.0 });
        }
        run_program(&p, &mut store);
        assert_eq!(store.load(0, &[1]), 2.0);
    }

    #[test]
    fn parsed_update_statements_are_recognized_as_reductions() {
        // Both update spellings must survive parsing in a shape
        // `Statement::reduction_op` recognizes: the spelled-out
        // `c[i] = c[i] + …` and an fmax accumulation.
        let src = r#"
            double a[8][16]; double c[8]; double m[8];
            for (int i = 0; i < 8; i++) {
                c[i] = 0.0;
                for (int j = 0; j < 16; j++) {
                    c[i] = c[i] + a[i][j];
                    m[i] = fmax(m[i], a[i][j]);
                }
            }
        "#;
        let p = parse_kernel("rowstats", src, &[]).unwrap();
        let hints = prem_ir::reduction_hints(&p);
        let c = p.array_id("c").unwrap();
        let m = p.array_id("m").unwrap();
        assert_eq!(
            hints.updates,
            vec![
                (1, c, prem_ir::ReduceOp::Add),
                (2, m, prem_ir::ReduceOp::Max)
            ]
        );
        assert_eq!(hints.inits, vec![(0, c)]);
    }

    #[test]
    fn rejects_non_affine_index() {
        let src = r#"
            float a[16];
            for (int i = 0; i < 4; i++)
                for (int j = 0; j < 4; j++)
                    a[i * j] = 0.0;
        "#;
        let e = parse_kernel("bad", src, &[]).unwrap_err();
        assert!(e.message.contains("not affine"), "{e}");
    }

    #[test]
    fn rejects_non_constant_bound() {
        let src = r#"
            float a[16]; float n[1];
            for (int i = 0; i < n; i++) a[i] = 0.0;
        "#;
        assert!(parse_kernel("bad", src, &[]).is_err());
    }

    #[test]
    fn rejects_unknown_identifier() {
        let e = parse_kernel("bad", "float a[4]; a[zz] = 0.0;", &[]).unwrap_err();
        assert!(e.message.contains("unknown identifier"));
    }

    /// The parser is a network-facing boundary in `prem-serve`: every
    /// malformed input must come back as a `ParseError`, never a panic.
    #[test]
    fn malformed_inputs_error_instead_of_panicking() {
        type Case = (&'static str, String, Vec<(&'static str, i64)>);
        let cases: Vec<Case> = vec![
            ("truncated for", "float a[4]; for (int i = 0".into(), vec![]),
            ("junk bytes", "float a[4]; ∆∆ a[0] = 1;".into(), vec![]),
            ("unknown param", "float a[4]; a[N] = 0.0;".into(), vec![]),
            (
                "overflowing literal",
                "float a[4]; for (int i = 0; i < 9223372036854775807; i++) a[i] = 0.0;".into(),
                vec![],
            ),
            (
                "overflowing param",
                "float a[4]; for (int i = 0; i < N; i++) a[i] = 0.0;".into(),
                vec![("N", i64::MAX)],
            ),
            (
                "coefficient overflow",
                "float a[4]; for (int i = 0; i < 4; i++) \
                 a[i * 1099511627776 * 1099511627776] = 0.0;"
                    .into(),
                vec![],
            ),
            ("zero dimension", "float a[0]; a[0] = 0.0;".into(), vec![]),
            (
                "huge array",
                "float a[100000][100000][100000]; a[0][0][0] = 0.0;".into(),
                vec![],
            ),
            (
                "duplicate array",
                "float a[4]; float a[8]; a[0] = 0.0;".into(),
                vec![],
            ),
            (
                "index arity mismatch",
                "float a[4][4]; a[1] = 0.0;".into(),
                vec![],
            ),
            (
                "huge loop nest",
                "float a[4]; \
                 for (int i = 0; i < 16000000; i++) \
                 for (int j = 0; j < 16000000; j++) \
                 for (int k = 0; k < 16000000; k++) a[0] = 0.0;"
                    .into(),
                vec![],
            ),
            (
                "deep statement nesting",
                {
                    let mut s = String::from("float a[4]; ");
                    for i in 0..100 {
                        s.push_str(&format!("for (int i{i} = 0; i{i} < 2; i{i}++) {{ "));
                    }
                    s.push_str("a[0] = 0.0; ");
                    s.push_str(&"} ".repeat(100));
                    s
                },
                vec![],
            ),
            (
                "deep expression nesting",
                format!(
                    "float a[4]; a[0] = {}1.0{};",
                    "(".repeat(5000),
                    ")".repeat(5000)
                ),
                vec![],
            ),
            (
                "deep unary minus",
                format!("float a[4]; a[0] = {}1.0;", "-".repeat(5000)),
                vec![],
            ),
        ];
        for (what, src, params) in cases {
            let r = parse_kernel("bad", &src, &params);
            assert!(r.is_err(), "{what}: expected a parse error");
        }
    }

    #[test]
    fn nesting_caps_do_not_reject_real_kernels() {
        // 32 nested loops with matching 32-dim array: well inside the caps.
        let mut s = String::from("float a");
        for _ in 0..32 {
            s.push_str("[2]");
        }
        s.push_str("; ");
        for i in 0..32 {
            s.push_str(&format!("for (int i{i} = 0; i{i} < 2; i{i}++) "));
        }
        s.push('a');
        for i in 0..32 {
            s.push_str(&format!("[i{i}]"));
        }
        s.push_str(" = 1.0;");
        let p = parse_kernel("deep_ok", &s, &[]).unwrap();
        assert_eq!(p.loop_count, 32);
    }

    #[test]
    fn parsed_cnn_matches_builder_cnn() {
        let src = r#"
            float out_F[1][4][6][6];
            float W[4][3][3][3];
            float inp_F[1][3][8][8];
            for (int n = 0; n < 1; n++)
              for (int k = 0; k < 4; k++)
                for (int p = 0; p < 6; p++)
                  for (int q = 0; q < 6; q++)
                    for (int c = 0; c < 3; c++)
                      for (int r = 0; r < NR; r++)
                        for (int s = 0; s < NS; s++)
                          out_F[n][k][p][q] += W[k][c][r][s]
                              * inp_F[n][c][p + NR - r - 1][q + NS - s - 1];
        "#;
        let parsed = parse_kernel("cnn", src, &[("NR", 3), ("NS", 3)]).unwrap();
        let built = prem_kernels::CnnConfig::small().build();
        // Same functional behaviour on identical inputs.
        let mut s1 = MemStore::patterned(&parsed);
        let mut s2 = MemStore::patterned(&built);
        run_program(&parsed, &mut s1);
        run_program(&built, &mut s2);
        assert_eq!(s1.max_abs_diff(&s2), 0.0);
    }
}
