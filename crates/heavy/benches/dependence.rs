//! Criterion bench for the polyhedral dependence analysis (the PPCG
//! substitute in the toolchain of Figure 5.1).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_dependence(c: &mut Criterion) {
    let mut g = c.benchmark_group("dependence");
    for (name, program) in prem_kernels::all_large() {
        let stmts = prem_ir::lower(&program).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| black_box(prem_polyhedral::analyze_dependences(&stmts)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dependence);
criterion_main!(benches);
