//! Criterion bench for the greedy baseline — the Figure 6.3 table.

use criterion::{criterion_group, criterion_main, Criterion};
use prem_core::{optimize_app_greedy, LoopTree, Platform};
use prem_sim::SimCost;
use std::hint::black_box;

fn bench_greedy(c: &mut Criterion) {
    let mut g = c.benchmark_group("greedy");
    g.sample_size(10);
    for (name, program) in prem_kernels::all_large() {
        let tree = LoopTree::build(&program).unwrap();
        let cost = SimCost::new(&program);
        let platform = Platform::default();
        g.bench_function(name, |b| {
            b.iter(|| black_box(optimize_app_greedy(&tree, &program, &platform, &cost)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_greedy);
criterion_main!(benches);
