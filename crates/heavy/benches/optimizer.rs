//! Criterion bench for Algorithm 1 + 2 — the heuristic optimizer runtime
//! underlying the Figure 6.2 table.

use criterion::{criterion_group, criterion_main, Criterion};
use prem_core::{optimize_app, LoopTree, OptimizerOptions, Platform};
use prem_sim::SimCost;
use std::hint::black_box;

fn bench_optimizer(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimizer");
    g.sample_size(10);
    for (name, program) in [
        ("lstm_small", prem_kernels::LstmConfig { nt: 8, ns: 650, np: 700 }.build()),
        ("maxpool", prem_kernels::PoolConfig::large(prem_kernels::PoolOp::Max).build()),
    ] {
        let tree = LoopTree::build(&program).unwrap();
        let cost = SimCost::new(&program);
        let platform = Platform::default();
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(optimize_app(
                    &tree,
                    &program,
                    &platform,
                    &cost,
                    &OptimizerOptions::default(),
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_optimizer);
criterion_main!(benches);
