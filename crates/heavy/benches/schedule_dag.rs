//! Criterion bench for schedule construction + makespan evaluation (the
//! inner loop of the optimizer, §4.2's DAG traversal).

use criterion::{criterion_group, criterion_main, Criterion};
use prem_core::{build_schedule, evaluate, AnalyticCost, Component, CostProvider, LoopTree, Platform, Solution};
use std::hint::black_box;

fn bench_schedule(c: &mut Criterion) {
    let program = prem_kernels::LstmConfig { nt: 4, ns: 650, np: 700 }.build();
    let tree = LoopTree::build(&program).unwrap();
    let t = &tree.roots[0];
    let comp = Component::extract(&tree, &program, &[&t.children[0], &t.children[0].children[0]]);
    let cost = AnalyticCost::new(&program);
    let model = cost.exec_model(&comp);
    let platform = Platform::default().with_cores(3).with_spm_bytes(2 << 20);
    let mut g = c.benchmark_group("schedule");
    for (label, k) in [("12_segments", vec![109i64, 350]), ("650_segments", vec![3, 350]), ("4550_segments", vec![3, 50])] {
        let sol = Solution { k, r: vec![3, 1] };
        g.bench_function(label, |b| {
            b.iter(|| {
                let s = build_schedule(&comp, &sol, &platform, &model).unwrap();
                black_box(evaluate(&s))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_schedule);
criterion_main!(benches);
