//! Criterion bench for the discrete-event PREM machine simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use prem_core::{build_schedule, AnalyticCost, Component, CostProvider, LoopTree, Platform, Solution};
use prem_sim::simulate;
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let program = prem_kernels::LstmConfig { nt: 4, ns: 650, np: 700 }.build();
    let tree = LoopTree::build(&program).unwrap();
    let t = &tree.roots[0];
    let comp = Component::extract(&tree, &program, &[&t.children[0], &t.children[0].children[0]]);
    let cost = AnalyticCost::new(&program);
    let model = cost.exec_model(&comp);
    let platform = Platform::default().with_cores(3).with_spm_bytes(2 << 20);
    let sol = Solution { k: vec![3, 350], r: vec![3, 1] };
    let sched = build_schedule(&comp, &sol, &platform, &model).unwrap();
    c.bench_function("simulate_650_segments", |b| {
        b.iter(|| black_box(simulate(&sched)))
    });
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
