//! Placeholder library target for the heavy (network-dependent) suite.
//!
//! All substance lives in `tests/` (proptest property suites) and `benches/`
//! (criterion micro-benchmarks). See the package manifest for why this
//! package sits outside the hermetic root workspace.
