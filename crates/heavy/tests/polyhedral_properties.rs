//! Property-based tests of the polyhedral substrate: interval arithmetic
//! soundness, dependence-analysis soundness against brute-force conflict
//! enumeration, and tiling-legality consistency.

use prem_polyhedral::{
    analyze_dependences, div_ceil, div_floor, mod_floor, AccessInfo, AffExpr, Carry, Interval,
    LoopInfo, StmtPoly,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn interval_add_is_sound(a in -50i64..50, b in -50i64..50, c in -50i64..50, d in -50i64..50) {
        let x = Interval::new(a.min(b), a.max(b));
        let y = Interval::new(c.min(d), c.max(d));
        let s = x + y;
        for &u in &[x.lo, x.hi] {
            for &v in &[y.lo, y.hi] {
                prop_assert!(s.contains(u + v));
            }
        }
    }

    #[test]
    fn interval_scale_is_exact(a in -50i64..50, b in -50i64..50, k in -7i64..7) {
        let x = Interval::new(a.min(b), a.max(b));
        let s = x.scale(k);
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for v in x.lo..=x.hi {
            lo = lo.min(v * k);
            hi = hi.max(v * k);
        }
        prop_assert_eq!(s, Interval::new(lo, hi));
    }

    #[test]
    fn div_floor_ceil_mod_laws(a in -1000i64..1000, b in 1i64..50) {
        prop_assert_eq!(div_floor(a, b) * b + mod_floor(a, b), a);
        prop_assert!(mod_floor(a, b) >= 0 && mod_floor(a, b) < b);
        prop_assert!(div_ceil(a, b) >= div_floor(a, b));
        prop_assert!(div_ceil(a, b) - div_floor(a, b) <= 1);
    }

    /// Soundness of dependence analysis: for a single-statement 2-deep loop
    /// with a write `a[c0·i + c1·j + k0]` and a read `a[d0·i + d1·j + k1]`,
    /// every actual conflicting iteration pair must be covered by some
    /// reported dependence box.
    #[test]
    fn dependence_analysis_is_sound(
        n0 in 2i64..7, n1 in 2i64..7,
        c0 in 0i64..3, c1 in 0i64..3, k0 in 0i64..3,
        d0 in 0i64..3, d1 in 0i64..3, k1 in 0i64..3,
    ) {
        let write = AccessInfo::write(0, vec![AffExpr::from_parts(vec![c0, c1], k0)]);
        let read = AccessInfo::read(0, vec![AffExpr::from_parts(vec![d0, d1], k1)]);
        let stmt = StmtPoly {
            id: 0,
            loops: vec![LoopInfo::new(0, n0), LoopInfo::new(1, n1)],
            guards: vec![],
            position: vec![0, 0, 0],
            accesses: vec![read, write],
        };
        let deps = analyze_dependences(std::slice::from_ref(&stmt));

        // Brute force: all ordered pairs (src before snk) touching the same
        // element with at least the write involved.
        for i in 0..n0 { for j in 0..n1 {
            for i2 in 0..n0 { for j2 in 0..n1 {
                let src = (i, j);
                let snk = (i2, j2);
                if src >= snk { continue; }
                let w_src = c0 * i + c1 * j + k0;
                let r_snk = d0 * i2 + d1 * j2 + k1;
                if w_src != r_snk { continue; }
                // Flow conflict src→snk must be covered by a Flow box whose
                // distance intervals contain (i2-i, j2-j).
                let delta = (i2 - i, j2 - j);
                let covered = deps.iter().any(|dp| {
                    dp.kind == prem_polyhedral::DepKind::Flow
                        && dp.dist_at(0).contains(delta.0)
                        && dp.dist_at(1).contains(delta.1)
                });
                prop_assert!(
                    covered,
                    "uncovered flow conflict at src {src:?} snk {snk:?} (δ {delta:?}); deps: {deps:?}"
                );
            }}
        }}
    }

    /// Carried boxes are lexicographically positive and Equal boxes all-zero.
    #[test]
    fn dependence_boxes_are_lex_ordered(
        n0 in 2i64..8, n1 in 2i64..8, shift in -2i64..3,
    ) {
        let write = AccessInfo::write(0, vec![
            AffExpr::from_parts(vec![1, 0], 0),
            AffExpr::from_parts(vec![0, 1], 0),
        ]);
        let read = AccessInfo::read(0, vec![
            AffExpr::from_parts(vec![1, 0], shift),
            AffExpr::from_parts(vec![0, 1], 0),
        ]);
        let stmt = StmtPoly {
            id: 0,
            loops: vec![LoopInfo::new(0, n0), LoopInfo::new(1, n1)],
            guards: vec![],
            position: vec![0, 0, 0],
            accesses: vec![read, write],
        };
        for d in analyze_dependences(std::slice::from_ref(&stmt)) {
            match d.carry {
                Carry::Level(l) => {
                    for k in 0..l {
                        prop_assert!(d.dist_at(k).is_zero());
                    }
                    prop_assert!(d.dist_at(l).lo >= 1, "{d}");
                }
                Carry::Equal => {
                    for k in 0..d.dist.len() {
                        prop_assert!(d.dist_at(k).is_zero());
                    }
                }
            }
        }
    }
}
