//! Property-based tests over randomly generated kernels: any loop nest from
//! the generated family, compiled with any feasible solution the optimizer
//! or a random probe produces, must execute identically to the plain
//! interpreter through the PREM machine. Also checks polyhedral invariants.

use proptest::prelude::*;
use prem::core::{
    build_schedule, evaluate, AnalyticCost, Component, CostProvider, LoopTree, Platform, Solution,
};
use prem::ir::{
    run_program, AssignKind, CmpOp, Cond, ElemType, Expr, IdxExpr, MemStore, Program,
    ProgramBuilder,
};
use prem::sim::{run_app_prem, simulate, PlannedComponent};

/// A generated kernel family: 2-3 perfectly nested loops computing
/// `out[i][j] (+)= w[i][k-ish] * inp[...]` with optional guard-initialized
/// accumulators and optional constant offsets — affine, legal SCoPs by
/// construction.
#[derive(Debug, Clone)]
struct GenKernel {
    n1: i64,
    n2: i64,
    n3: i64,
    accumulate: bool,
    offset: i64,
    guard_init: bool,
}

fn gen_kernel() -> impl Strategy<Value = GenKernel> {
    (
        2i64..12,
        2i64..12,
        1i64..8,
        any::<bool>(),
        0i64..3,
        any::<bool>(),
    )
        .prop_map(|(n1, n2, n3, accumulate, offset, guard_init)| GenKernel {
            n1,
            n2,
            n3,
            accumulate,
            offset,
            guard_init,
        })
}

fn build(k: &GenKernel) -> Program {
    let mut b = ProgramBuilder::new("gen");
    let out = b.array("out", vec![k.n1, k.n2], ElemType::F32);
    let w = b.array("w", vec![k.n1, k.n3], ElemType::F32);
    let inp = b.array("inp", vec![k.n3, k.n2 + k.offset], ElemType::F32);
    let i = b.begin_loop("i", 0, 1, k.n1);
    let j = b.begin_loop("j", 0, 1, k.n2);
    let l3 = b.begin_loop("l3", 0, 1, k.n3);
    if k.guard_init {
        b.begin_if(Cond::atom(IdxExpr::var(l3), CmpOp::Eq));
        b.stmt(
            out,
            vec![IdxExpr::var(i), IdxExpr::var(j)],
            AssignKind::Assign,
            Expr::Const(0.5),
        );
        b.end_if();
    }
    b.stmt(
        out,
        vec![IdxExpr::var(i), IdxExpr::var(j)],
        if k.accumulate {
            AssignKind::AddAssign
        } else {
            AssignKind::Assign
        },
        Expr::mul(
            Expr::load(w, vec![IdxExpr::var(i), IdxExpr::var(l3)]),
            Expr::load(
                inp,
                vec![IdxExpr::var(l3), IdxExpr::var(j).plus_const(k.offset)],
            ),
        ),
    );
    b.end_loop();
    b.end_loop();
    b.end_loop();
    b.finish()
}

/// Extracts the maximal tilable chain of the generated kernels (single-root,
/// perfectly nested by construction).
fn chain_component(tree: &LoopTree, program: &Program) -> Component {
    let mut chain = Vec::new();
    let mut node = &tree.roots[0];
    loop {
        chain.push(node);
        match node.children.first() {
            Some(c) if node.children.len() == 1 && c.tilable => node = c,
            _ => break,
        }
    }
    Component::extract(tree, program, &chain)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prem_execution_matches_interpreter(k in gen_kernel(), k1 in 1i64..6, k2 in 1i64..6, cores in 1usize..5) {
        let program = build(&k);
        let tree = LoopTree::build(&program).unwrap();
        let comp = chain_component(&tree, &program);
        // Random-but-clamped solution over the component's levels.
        let depth = comp.depth();
        let mut sol = Solution {
            k: comp.levels.iter().map(|l| l.count).collect(),
            r: vec![1; depth],
        };
        sol.k[0] = k1.min(comp.levels[0].count);
        if depth > 1 {
            sol.k[1] = k2.min(comp.levels[1].count);
        }
        if comp.levels[0].parallel {
            sol.r[0] = (cores as i64).min(comp.levels[0].count);
        }
        let platform = Platform::default().with_cores(cores.max(sol.r[0] as usize)).with_spm_bytes(1 << 20);
        let cost = AnalyticCost::new(&program);
        let model = cost.exec_model(&comp);
        // Any solution the builder accepts must be functionally correct.
        if build_schedule(&comp, &sol, &platform, &model).is_ok() {
            let planned = vec![PlannedComponent { component: comp, solution: sol }];
            let mut reference = MemStore::patterned(&program);
            run_program(&program, &mut reference);
            let mut prem_mem = MemStore::patterned(&program);
            run_app_prem(&program, &planned, &platform, &mut prem_mem).unwrap();
            prop_assert!(reference.max_abs_diff(&prem_mem) < 1e-9);
        }
    }

    #[test]
    fn analytic_recurrence_matches_explicit_dag(k in gen_kernel(), k1 in 1i64..6) {
        let program = build(&k);
        let tree = LoopTree::build(&program).unwrap();
        let comp = chain_component(&tree, &program);
        let mut sol = Solution {
            k: comp.levels.iter().map(|l| l.count).collect(),
            r: vec![1; comp.depth()],
        };
        sol.k[0] = k1.min(comp.levels[0].count);
        let platform = Platform::default().with_cores(2).with_spm_bytes(1 << 20);
        let cost = AnalyticCost::new(&program);
        let model = cost.exec_model(&comp);
        if let Ok(sched) = build_schedule(&comp, &sol, &platform, &model) {
            let recurrence = evaluate(&sched).makespan_ns;
            let dag = prem::core::build_dag(&sched).longest_path_ns();
            prop_assert!((recurrence - dag).abs() <= 1e-6 * recurrence.max(1.0),
                "recurrence {recurrence} vs DAG {dag}");
            // The event-driven simulator may only be faster (it skips
            // blocked DMA slots).
            let sim = simulate(&sched).makespan_ns;
            prop_assert!(sim <= recurrence * (1.0 + 1e-9), "sim {sim} > model {recurrence}");
        }
    }

    #[test]
    fn dependence_distances_respect_actual_conflicts(n1 in 2i64..10, n2 in 2i64..10, shift in 1i64..3) {
        // a[i] = a[i - shift] scan: flow distance must be exactly `shift`.
        let mut b = ProgramBuilder::new("scan");
        let a = b.array("a", vec![n1 * n2 + shift], ElemType::F32);
        let i = b.begin_loop("i", shift, 1, n1 * n2);
        b.stmt(a, vec![IdxExpr::var(i)], AssignKind::Assign,
               Expr::load(a, vec![IdxExpr::var(i).plus_const(-shift)]));
        b.end_loop();
        let program = b.finish();
        let stmts = prem::ir::lower(&program).unwrap();
        let deps = prem::polyhedral::analyze_dependences(&stmts);
        let flow: Vec<_> = deps.iter().filter(|d| d.kind == prem::polyhedral::DepKind::Flow).collect();
        prop_assert!(!flow.is_empty());
        for d in flow {
            prop_assert_eq!(d.dist_at(0), prem::polyhedral::Interval::point(shift));
        }
    }

    #[test]
    fn interval_arithmetic_is_exact_for_affine(c0 in -5i64..5, c1 in -5i64..5, n0 in 1i64..9, n1 in 1i64..9, konst in -10i64..10) {
        use prem::polyhedral::{AffExpr, Interval};
        let e = AffExpr::from_parts(vec![c0, c1], konst);
        let b = [Interval::new(0, n0 - 1), Interval::new(0, n1 - 1)];
        let bounds = e.bounds(&b);
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for x in 0..n0 {
            for y in 0..n1 {
                let v = e.eval(&[x, y]);
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        prop_assert_eq!(bounds, Interval::new(lo, hi));
    }
}
