//! Index expressions, statement expressions and affine conditions.
//!
//! Index expressions ([`IdxExpr`]) are affine combinations of *loop
//! identities* (not positional counters — the positional form is produced by
//! lowering in [`mod@crate::lower`]). Statement right-hand sides ([`Expr`]) are
//! small arithmetic trees over array loads and constants.

use crate::types::ArrayId;
use std::collections::BTreeMap;
use std::fmt;

/// An affine expression `c₀ + Σ cᵢ·loopᵢ` over loop identities.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct IdxExpr {
    /// Map from loop id to coefficient (zero coefficients are not stored).
    terms: BTreeMap<usize, i64>,
    /// Constant term.
    constant: i64,
}

impl IdxExpr {
    /// A constant expression.
    pub fn constant(v: i64) -> Self {
        IdxExpr {
            terms: BTreeMap::new(),
            constant: v,
        }
    }

    /// The expression `1·loop`.
    pub fn var(loop_id: usize) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(loop_id, 1);
        IdxExpr { terms, constant: 0 }
    }

    /// Adds `c·loop` to the expression.
    pub fn plus_var(mut self, loop_id: usize, c: i64) -> Self {
        let e = self.terms.entry(loop_id).or_insert(0);
        *e += c;
        if *e == 0 {
            self.terms.remove(&loop_id);
        }
        self
    }

    /// Adds a constant.
    pub fn plus_const(mut self, c: i64) -> Self {
        self.constant += c;
        self
    }

    /// Sum of two expressions.
    pub fn add(&self, other: &IdxExpr) -> IdxExpr {
        let mut out = self.clone();
        for (&v, &c) in &other.terms {
            out = out.plus_var(v, c);
        }
        out.constant += other.constant;
        out
    }

    /// Difference of two expressions.
    pub fn sub(&self, other: &IdxExpr) -> IdxExpr {
        self.add(&other.scale(-1))
    }

    /// The expression multiplied by a constant.
    pub fn scale(&self, k: i64) -> IdxExpr {
        if k == 0 {
            return IdxExpr::constant(0);
        }
        IdxExpr {
            terms: self.terms.iter().map(|(&v, &c)| (v, c * k)).collect(),
            constant: self.constant * k,
        }
    }

    /// Constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Iterates over `(loop id, coefficient)` terms.
    pub fn terms(&self) -> impl Iterator<Item = (usize, i64)> + '_ {
        self.terms.iter().map(|(&v, &c)| (v, c))
    }

    /// Coefficient of a loop (zero if absent).
    pub fn coeff(&self, loop_id: usize) -> i64 {
        self.terms.get(&loop_id).copied().unwrap_or(0)
    }

    /// Returns `true` if the expression references no loop.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the expression under a loop-value environment.
    ///
    /// # Panics
    ///
    /// Panics if a referenced loop has no value in `env`.
    pub fn eval(&self, env: &Env) -> i64 {
        let mut acc = self.constant;
        for (&v, &c) in &self.terms {
            acc += c * env.get(v);
        }
        acc
    }

    /// Renders the expression using a loop-name resolver.
    pub fn display_with<'a, F>(&'a self, names: F) -> DisplayIdx<'a, F>
    where
        F: Fn(usize) -> String,
    {
        DisplayIdx { expr: self, names }
    }
}

impl fmt::Display for IdxExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_with(|id| format!("l{id}")))
    }
}

/// Helper returned by [`IdxExpr::display_with`].
pub struct DisplayIdx<'a, F> {
    expr: &'a IdxExpr,
    names: F,
}

impl<F: Fn(usize) -> String> fmt::Display for DisplayIdx<'_, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in self.expr.terms() {
            let name = (self.names)(v);
            if first {
                match c {
                    1 => write!(f, "{name}")?,
                    -1 => write!(f, "-{name}")?,
                    _ => write!(f, "{c}*{name}")?,
                }
                first = false;
            } else if c > 0 {
                if c == 1 {
                    write!(f, " + {name}")?;
                } else {
                    write!(f, " + {c}*{name}")?;
                }
            } else if c == -1 {
                write!(f, " - {name}")?;
            } else {
                write!(f, " - {}*{name}", -c)?;
            }
        }
        let k = self.expr.constant_term();
        if first {
            write!(f, "{k}")?;
        } else if k > 0 {
            write!(f, " + {k}")?;
        } else if k < 0 {
            write!(f, " - {}", -k)?;
        }
        Ok(())
    }
}

/// Loop-value environment used by evaluation (indexed by loop id).
#[derive(Debug, Clone, Default)]
pub struct Env {
    values: Vec<Option<i64>>,
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Env { values: Vec::new() }
    }

    /// Binds a loop id to a value.
    pub fn set(&mut self, loop_id: usize, value: i64) {
        if loop_id >= self.values.len() {
            self.values.resize(loop_id + 1, None);
        }
        self.values[loop_id] = Some(value);
    }

    /// Removes a binding.
    pub fn unset(&mut self, loop_id: usize) {
        if loop_id < self.values.len() {
            self.values[loop_id] = None;
        }
    }

    /// Current value of a loop id.
    ///
    /// # Panics
    ///
    /// Panics if the loop is unbound.
    pub fn get(&self, loop_id: usize) -> i64 {
        self.values
            .get(loop_id)
            .copied()
            .flatten()
            .unwrap_or_else(|| panic!("loop l{loop_id} is unbound"))
    }

    /// Value of a loop id if bound.
    pub fn try_get(&self, loop_id: usize) -> Option<i64> {
        self.values.get(loop_id).copied().flatten()
    }
}

/// An array access: the array plus one index expression per dimension.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Access {
    /// Accessed array.
    pub array: ArrayId,
    /// Index expression per dimension, outermost first.
    pub indices: Vec<IdxExpr>,
}

impl Access {
    /// Creates an access.
    pub fn new(array: ArrayId, indices: Vec<IdxExpr>) -> Self {
        Access { array, indices }
    }

    /// Evaluates all index expressions under an environment.
    pub fn eval_indices(&self, env: &Env) -> Vec<i64> {
        self.indices.iter().map(|e| e.eval(env)).collect()
    }
}

/// Binary operators available in statement right-hand sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Maximum (used by MaxPool).
    Max,
    /// Minimum.
    Min,
}

impl BinOp {
    /// Applies the operator to two values.
    pub fn apply(&self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Max => a.max(b),
            BinOp::Min => a.min(b),
        }
    }

    /// C rendering; `Max`/`Min` render as function-style macros.
    pub fn c_infix(&self) -> Option<&'static str> {
        match self {
            BinOp::Add => Some("+"),
            BinOp::Sub => Some("-"),
            BinOp::Mul => Some("*"),
            BinOp::Div => Some("/"),
            BinOp::Max | BinOp::Min => None,
        }
    }
}

/// A statement right-hand-side expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Array element load.
    Load(Access),
    /// Floating-point constant.
    Const(f64),
    /// The value of a loop index (e.g. `2*i + 1` as data).
    Index(IdxExpr),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
}

impl Expr {
    /// Load helper.
    pub fn load(array: ArrayId, indices: Vec<IdxExpr>) -> Expr {
        Expr::Load(Access::new(array, indices))
    }

    /// Builds `a op b`.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Builds `a + b`.
    #[allow(clippy::should_implement_trait)] // builder DSL constructor, not `self + rhs`
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Add, a, b)
    }

    /// Builds `a * b`.
    #[allow(clippy::should_implement_trait)] // builder DSL constructor, not `self * rhs`
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Mul, a, b)
    }

    /// All loads in the expression, in evaluation order.
    pub fn loads(&self) -> Vec<&Access> {
        let mut out = Vec::new();
        self.collect_loads(&mut out);
        out
    }

    fn collect_loads<'a>(&'a self, out: &mut Vec<&'a Access>) {
        match self {
            Expr::Load(a) => out.push(a),
            Expr::Const(_) | Expr::Index(_) => {}
            Expr::Bin(_, a, b) => {
                a.collect_loads(out);
                b.collect_loads(out);
            }
            Expr::Neg(a) => a.collect_loads(out),
        }
    }

    /// Number of arithmetic operations in the tree (used by the synthetic
    /// per-instance cost model).
    pub fn op_count(&self) -> u64 {
        match self {
            Expr::Load(_) | Expr::Const(_) | Expr::Index(_) => 0,
            Expr::Bin(_, a, b) => 1 + a.op_count() + b.op_count(),
            Expr::Neg(a) => 1 + a.op_count(),
        }
    }
}

/// Comparison operators usable in affine `if` conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
}

/// One affine condition atom `lhs op 0` (the parser normalizes `a op b` to
/// `a - b op 0`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CondAtom {
    /// Left-hand side after normalization.
    pub lhs: IdxExpr,
    /// Comparison against zero.
    pub op: CmpOp,
}

impl CondAtom {
    /// Creates an atom.
    pub fn new(lhs: IdxExpr, op: CmpOp) -> Self {
        CondAtom { lhs, op }
    }

    /// Evaluates the atom under an environment.
    pub fn holds(&self, env: &Env) -> bool {
        let v = self.lhs.eval(env);
        match self.op {
            CmpOp::Eq => v == 0,
            CmpOp::Gt => v > 0,
            CmpOp::Ge => v >= 0,
            CmpOp::Lt => v < 0,
            CmpOp::Le => v <= 0,
        }
    }
}

/// A conjunction of affine condition atoms.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Cond {
    /// Atoms, all of which must hold.
    pub atoms: Vec<CondAtom>,
}

impl Cond {
    /// The always-true condition.
    pub fn always() -> Self {
        Cond { atoms: Vec::new() }
    }

    /// A single-atom condition.
    pub fn atom(lhs: IdxExpr, op: CmpOp) -> Self {
        Cond {
            atoms: vec![CondAtom::new(lhs, op)],
        }
    }

    /// Conjunction with another condition.
    pub fn and(mut self, other: Cond) -> Self {
        self.atoms.extend(other.atoms);
        self
    }

    /// Evaluates the conjunction.
    pub fn holds(&self, env: &Env) -> bool {
        self.atoms.iter().all(|a| a.holds(env))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_expr_algebra() {
        let e = IdxExpr::var(3).plus_var(5, 2).plus_const(-1);
        let mut env = Env::new();
        env.set(3, 4);
        env.set(5, 10);
        assert_eq!(e.eval(&env), 4 + 20 - 1);
        assert_eq!(e.coeff(5), 2);
        assert_eq!(e.coeff(7), 0);
        let cancelled = e.clone().plus_var(3, -1);
        assert_eq!(cancelled.coeff(3), 0);
        assert!(IdxExpr::constant(7).is_constant());
    }

    #[test]
    fn idx_expr_add_sub_scale() {
        let a = IdxExpr::var(0).plus_const(2);
        let b = IdxExpr::var(1).scale(3);
        let s = a.add(&b);
        let mut env = Env::new();
        env.set(0, 5);
        env.set(1, 2);
        assert_eq!(s.eval(&env), 5 + 2 + 6);
        assert_eq!(a.sub(&a).eval(&env), 0);
    }

    #[test]
    fn cond_atoms() {
        // t > 0  →  t > 0 atom
        let c = Cond::atom(IdxExpr::var(0), CmpOp::Gt);
        let mut env = Env::new();
        env.set(0, 0);
        assert!(!c.holds(&env));
        env.set(0, 1);
        assert!(c.holds(&env));
        let both = c.and(Cond::atom(IdxExpr::var(0).plus_const(-5), CmpOp::Lt));
        assert!(both.holds(&env));
    }

    #[test]
    fn expr_ops_and_loads() {
        let e = Expr::add(
            Expr::mul(
                Expr::load(0, vec![IdxExpr::var(0)]),
                Expr::load(1, vec![IdxExpr::var(1)]),
            ),
            Expr::Const(1.0),
        );
        assert_eq!(e.op_count(), 2);
        assert_eq!(e.loads().len(), 2);
    }

    #[test]
    fn binop_apply() {
        assert_eq!(BinOp::Max.apply(2.0, 5.0), 5.0);
        assert_eq!(BinOp::Sub.apply(2.0, 5.0), -3.0);
        assert_eq!(BinOp::Div.apply(6.0, 3.0), 2.0);
    }

    #[test]
    fn display_idx() {
        let e = IdxExpr::var(0).plus_var(1, -1).plus_const(2);
        assert_eq!(format!("{e}"), "l0 - l1 + 2");
    }
}
