//! Functional interpreter for loop-nest programs.
//!
//! The interpreter executes the *original* sequential program on concrete
//! array data; the PREM machine simulator in `prem-sim` executes the
//! *transformed* program on scratchpad buffers through the same [`DataStore`]
//! abstraction, so the two results can be compared bit-for-bit to validate
//! transformation legality end-to-end.

use crate::expr::{Env, Expr};
use crate::program::{Node, Program};
use crate::types::{ArrayDecl, ArrayId};

/// Abstract array storage used by statement execution.
pub trait DataStore {
    /// Loads one element.
    fn load(&self, array: ArrayId, idx: &[i64]) -> f64;
    /// Stores one element.
    fn store(&mut self, array: ArrayId, idx: &[i64], value: f64);
}

/// Evaluates a right-hand-side expression.
pub fn eval_expr<S: DataStore>(expr: &Expr, env: &Env, store: &S) -> f64 {
    match expr {
        Expr::Load(a) => {
            let idx = a.eval_indices(env);
            store.load(a.array, &idx)
        }
        Expr::Const(c) => *c,
        Expr::Index(e) => e.eval(env) as f64,
        Expr::Bin(op, a, b) => {
            let x = eval_expr(a, env, store);
            let y = eval_expr(b, env, store);
            op.apply(x, y)
        }
        Expr::Neg(a) => -eval_expr(a, env, store),
    }
}

/// Flat row-major storage for every array of a program.
#[derive(Debug, Clone, PartialEq)]
pub struct MemStore {
    arrays: Vec<Vec<f64>>,
    decls: Vec<ArrayDecl>,
}

impl MemStore {
    /// Allocates zero-initialized storage for a program's arrays.
    pub fn zeroed(program: &Program) -> Self {
        MemStore {
            arrays: program
                .arrays
                .iter()
                .map(|a| vec![0.0; a.len() as usize])
                .collect(),
            decls: program.arrays.clone(),
        }
    }

    /// Allocates storage initialized by a deterministic pseudo-random pattern
    /// (distinct per array and element), handy for end-to-end comparisons.
    pub fn patterned(program: &Program) -> Self {
        let mut s = Self::zeroed(program);
        for (ai, data) in s.arrays.iter_mut().enumerate() {
            for (i, v) in data.iter_mut().enumerate() {
                // Cheap deterministic hash → value in [-1, 1).
                let h = (ai as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add((i as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9));
                let h = (h ^ (h >> 31)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *v = ((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
            }
        }
        s
    }

    /// Raw contents of one array.
    pub fn raw(&self, array: ArrayId) -> &[f64] {
        &self.arrays[array]
    }

    /// Mutable raw contents of one array.
    pub fn raw_mut(&mut self, array: ArrayId) -> &mut [f64] {
        &mut self.arrays[array]
    }

    /// Maximum absolute element difference with another store.
    ///
    /// # Panics
    ///
    /// Panics if the stores hold different array sets.
    pub fn max_abs_diff(&self, other: &MemStore) -> f64 {
        assert_eq!(
            self.decls, other.decls,
            "stores describe different programs"
        );
        self.arrays
            .iter()
            .zip(&other.arrays)
            .flat_map(|(a, b)| a.iter().zip(b).map(|(x, y)| (x - y).abs()))
            .fold(0.0, f64::max)
    }
}

impl DataStore for MemStore {
    fn load(&self, array: ArrayId, idx: &[i64]) -> f64 {
        let off = self.decls[array].linear_offset(idx) as usize;
        self.arrays[array][off]
    }

    fn store(&mut self, array: ArrayId, idx: &[i64], value: f64) {
        let off = self.decls[array].linear_offset(idx) as usize;
        self.arrays[array][off] = value;
    }
}

/// Statistics gathered while interpreting a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InterpStats {
    /// Number of statement instances executed.
    pub instances: u64,
    /// Total arithmetic operations executed.
    pub ops: u64,
}

/// Runs a program to completion on the given store and returns statistics.
pub fn run_program<S: DataStore>(program: &Program, store: &mut S) -> InterpStats {
    let mut env = Env::new();
    let mut stats = InterpStats::default();
    run_nodes(&program.body, &mut env, store, &mut stats);
    stats
}

/// Runs a block of nodes under an existing loop environment, accumulating
/// into `stats`. Used by the PREM machine simulator to execute tile bodies
/// with the tiled counters bound externally.
pub fn run_block<S: DataStore>(
    nodes: &[Node],
    env: &mut Env,
    store: &mut S,
    stats: &mut InterpStats,
) {
    run_nodes(nodes, env, store, stats);
}

fn run_nodes<S: DataStore>(nodes: &[Node], env: &mut Env, store: &mut S, stats: &mut InterpStats) {
    for n in nodes {
        match n {
            Node::Loop(l) => {
                let mut v = l.begin;
                for _ in 0..l.count {
                    env.set(l.id, v);
                    run_nodes(&l.body, env, store, stats);
                    v += l.stride;
                }
                env.unset(l.id);
            }
            Node::If(i) => {
                if i.cond.holds(env) {
                    run_nodes(&i.body, env, store, stats);
                }
            }
            Node::Stmt(s) => {
                s.execute(env, store);
                stats.instances += 1;
                stats.ops += s.op_count();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, CmpOp, Cond, IdxExpr};
    use crate::program::{AssignKind, ProgramBuilder};
    use crate::types::ElemType;

    /// The matrix–vector program of the paper's Figure 2.3.
    fn matvec(n: i64) -> Program {
        let mut b = ProgramBuilder::new("matvec");
        let a = b.array("a", vec![n, n], ElemType::F64);
        let x = b.array("b", vec![n], ElemType::F64);
        let c = b.array("c", vec![n], ElemType::F64);
        let i = b.begin_loop("i", 0, 1, n);
        b.stmt(
            c,
            vec![IdxExpr::var(i)],
            AssignKind::Assign,
            Expr::Const(0.0),
        );
        let j = b.begin_loop("j", 0, 1, n);
        b.stmt(
            c,
            vec![IdxExpr::var(i)],
            AssignKind::AddAssign,
            Expr::mul(
                Expr::load(a, vec![IdxExpr::var(i), IdxExpr::var(j)]),
                Expr::load(x, vec![IdxExpr::var(j)]),
            ),
        );
        b.end_loop();
        b.end_loop();
        b.finish()
    }

    #[test]
    fn matvec_executes_correctly() {
        let p = matvec(4);
        let mut store = MemStore::zeroed(&p);
        // a = identity, b = [1,2,3,4]
        for i in 0..4 {
            store.store(0, &[i, i], 1.0);
            store.store(1, &[i], (i + 1) as f64);
        }
        let stats = run_program(&p, &mut store);
        for i in 0..4 {
            assert_eq!(store.load(2, &[i]), (i + 1) as f64);
        }
        assert_eq!(stats.instances, 4 + 16);
    }

    #[test]
    fn guarded_statement_skipped() {
        let mut b = ProgramBuilder::new("g");
        let a = b.array("a", vec![10], ElemType::F64);
        let i = b.begin_loop("i", 0, 1, 10);
        b.begin_if(Cond::atom(IdxExpr::var(i).plus_const(-5), CmpOp::Ge));
        b.stmt(
            a,
            vec![IdxExpr::var(i)],
            AssignKind::Assign,
            Expr::Const(1.0),
        );
        b.end_if();
        b.end_loop();
        let p = b.finish();
        let mut store = MemStore::zeroed(&p);
        let stats = run_program(&p, &mut store);
        assert_eq!(stats.instances, 5);
        assert_eq!(store.load(0, &[4]), 0.0);
        assert_eq!(store.load(0, &[5]), 1.0);
    }

    #[test]
    fn patterned_store_is_deterministic() {
        let p = matvec(4);
        let s1 = MemStore::patterned(&p);
        let s2 = MemStore::patterned(&p);
        assert_eq!(s1.max_abs_diff(&s2), 0.0);
        // Values differ across elements.
        assert_ne!(s1.load(0, &[0, 0]), s1.load(0, &[0, 1]));
    }

    #[test]
    fn eval_expr_variants() {
        let p = matvec(2);
        let store = MemStore::patterned(&p);
        let mut env = Env::new();
        env.set(0, 1);
        let e = Expr::bin(
            BinOp::Max,
            Expr::Index(IdxExpr::var(0).scale(2).plus_const(1)),
            Expr::Neg(Box::new(Expr::Const(5.0))),
        );
        assert_eq!(eval_expr(&e, &env, &store), 3.0);
    }
}
