//! Loop-nest intermediate representation for the PREM compiler.
//!
//! Programs are trees of constant-bound, uniform-stride loops, affine `if`
//! guards and assignment statements with affine array accesses — exactly the
//! SCoP class accepted by the paper (§3.2). The crate provides:
//!
//! * [`ProgramBuilder`] — ergonomic construction of kernels;
//! * [`lower()`](lower::lower) — extraction of polyhedral statement summaries (the *pet*
//!   substitute);
//! * [`run_program`] / [`MemStore`] — a functional interpreter used as the
//!   ground truth when validating PREM transformations.
//!
//! # Example
//!
//! ```
//! use prem_ir::{
//!     lower, run_program, AssignKind, ElemType, Expr, IdxExpr, MemStore, ProgramBuilder,
//! };
//!
//! let mut b = ProgramBuilder::new("scale");
//! let a = b.array("a", vec![8], ElemType::F32);
//! let i = b.begin_loop("i", 0, 1, 8);
//! b.stmt(
//!     a,
//!     vec![IdxExpr::var(i)],
//!     AssignKind::Assign,
//!     Expr::Index(IdxExpr::var(i).scale(2).plus_const(1)),
//! );
//! b.end_loop();
//! let prog = b.finish();
//!
//! let mut store = MemStore::zeroed(&prog);
//! run_program(&prog, &mut store);
//! assert_eq!(store.raw(a)[3], 7.0);
//! assert_eq!(lower(&prog).unwrap().len(), 1);
//! ```

#![warn(missing_docs)]

pub mod expr;
pub mod interp;
pub mod lower;
pub mod program;
pub mod types;

pub use expr::{Access, BinOp, CmpOp, Cond, CondAtom, Env, Expr, IdxExpr};
pub use interp::{eval_expr, run_block, run_program, DataStore, InterpStats, MemStore};
pub use lower::{lower, reduction_hints, LowerError};
pub use prem_polyhedral::{ReduceOp, ReductionHints};
pub use program::{
    guarded_span, AssignKind, IfNode, Loop, Node, Program, ProgramBuilder, Statement,
};
pub use types::{ArrayDecl, ArrayId, ElemType};
