//! Lowering from the loop IR to polyhedral statement summaries.
//!
//! This is the reproduction's counterpart of *pet* extracting a schedule tree
//! (§5.1): each statement is summarized as a [`StmtPoly`] with loop counters
//! normalized to `0..N` — loop `begin` and `stride` are folded into the
//! access and guard expressions.

use crate::expr::{CmpOp, Cond, IdxExpr};
use crate::program::{AssignKind, Node, Program};
use prem_polyhedral::{AccessInfo, AffExpr, Guard, LoopInfo, ReductionHints, StmtPoly};
use std::fmt;

/// Error raised when a program is not lowerable (e.g. an index expression
/// references a loop that does not enclose the statement).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// Offending statement id.
    pub stmt: usize,
    /// Offending loop id.
    pub loop_id: usize,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "statement S{} references loop l{} that does not enclose it",
            self.stmt, self.loop_id
        )
    }
}

impl std::error::Error for LowerError {}

/// Converts an [`IdxExpr`] over loop *values* to an [`AffExpr`] over the
/// statement's normalized counters. `chain` lists the enclosing loops
/// (id, begin, stride), outermost first.
fn to_aff(expr: &IdxExpr, chain: &[(usize, i64, i64)], stmt: usize) -> Result<AffExpr, LowerError> {
    let n = chain.len();
    let mut coeffs = vec![0i64; n];
    let mut constant = expr.constant_term();
    for (loop_id, c) in expr.terms() {
        match chain.iter().position(|&(id, _, _)| id == loop_id) {
            Some(k) => {
                let (_, begin, stride) = chain[k];
                coeffs[k] += c * stride;
                constant += c * begin;
            }
            None => return Err(LowerError { stmt, loop_id }),
        }
    }
    Ok(AffExpr::from_parts(coeffs, constant))
}

/// Converts a condition atom into a `>= 0` / `== 0` guard over counters.
fn to_guards(
    cond: &Cond,
    chain: &[(usize, i64, i64)],
    stmt: usize,
) -> Result<Vec<Guard>, LowerError> {
    cond.atoms
        .iter()
        .map(|atom| {
            let e = to_aff(&atom.lhs, chain, stmt)?;
            Ok(match atom.op {
                CmpOp::Eq => Guard::eq(e),
                CmpOp::Ge => Guard::ge(e),
                CmpOp::Gt => Guard::ge(e.add_const(-1)),
                CmpOp::Le => Guard::ge(e.scale(-1)),
                CmpOp::Lt => Guard::ge(e.scale(-1).add_const(-1)),
            })
        })
        .collect()
}

/// Lowers a program to one [`StmtPoly`] per statement, in statement-id order.
///
/// # Errors
///
/// Returns [`LowerError`] if an index or guard expression references a loop
/// that does not enclose its statement.
///
/// # Examples
///
/// ```
/// use prem_ir::{lower, AssignKind, ElemType, Expr, IdxExpr, ProgramBuilder};
///
/// let mut b = ProgramBuilder::new("k");
/// let a = b.array("a", vec![64], ElemType::F32);
/// let i = b.begin_loop("i", 0, 2, 32); // i = 0, 2, …, 62
/// b.stmt(a, vec![IdxExpr::var(i)], AssignKind::Assign, Expr::Const(0.0));
/// b.end_loop();
/// let polys = lower(&b.finish()).unwrap();
/// // Counter-normalized access: a[2*t] for t in 0..32.
/// assert_eq!(polys[0].accesses[0].indices[0].coeff(0), 2);
/// ```
pub fn lower(program: &Program) -> Result<Vec<StmtPoly>, LowerError> {
    let mut out: Vec<Option<StmtPoly>> = vec![None; program.stmt_count];

    // Walk the tree tracking loop chain, guards and textual positions.
    struct Ctx<'a> {
        out: &'a mut Vec<Option<StmtPoly>>,
        chain: Vec<(usize, i64, i64)>, // (id, begin, stride)
        loops: Vec<LoopInfo>,
        guards: Vec<(usize, Cond)>, // (chain depth at guard, cond)
        position: Vec<i64>,
        err: Option<LowerError>,
    }

    fn walk(nodes: &[Node], pos_counter: &mut i64, ctx: &mut Ctx<'_>) {
        for n in nodes {
            if ctx.err.is_some() {
                return;
            }
            match n {
                Node::Loop(l) => {
                    ctx.position.push(*pos_counter);
                    *pos_counter += 1;
                    ctx.chain.push((l.id, l.begin, l.stride));
                    ctx.loops.push(LoopInfo::new(l.id, l.count));
                    let mut inner_counter = 0;
                    walk(&l.body, &mut inner_counter, ctx);
                    ctx.loops.pop();
                    ctx.chain.pop();
                    ctx.position.pop();
                }
                Node::If(i) => {
                    ctx.guards.push((ctx.chain.len(), i.cond.clone()));
                    walk(&i.body, pos_counter, ctx);
                    ctx.guards.pop();
                }
                Node::Stmt(s) => {
                    let mut position = ctx.position.clone();
                    position.push(*pos_counter);
                    *pos_counter += 1;

                    let mut accesses = Vec::new();
                    let lower_access = |acc: &crate::expr::Access,
                                        write: bool|
                     -> Result<AccessInfo, LowerError> {
                        let indices = acc
                            .indices
                            .iter()
                            .map(|e| to_aff(e, &ctx.chain, s.id))
                            .collect::<Result<Vec<_>, _>>()?;
                        Ok(AccessInfo {
                            array: acc.array,
                            indices,
                            is_write: write,
                        })
                    };

                    let build = (|| -> Result<(), LowerError> {
                        // Reads first (implicit read of the target for +=),
                        // then RHS loads, then the target write — matching
                        // Statement::accesses().
                        if s.kind == AssignKind::AddAssign {
                            accesses.push(lower_access(&s.target, false)?);
                        }
                        for l in s.rhs.loads() {
                            accesses.push(lower_access(l, false)?);
                        }
                        accesses.push(lower_access(&s.target, true)?);

                        let mut guards = Vec::new();
                        for (_, cond) in &ctx.guards {
                            guards.extend(to_guards(cond, &ctx.chain, s.id)?);
                        }
                        ctx.out[s.id] = Some(StmtPoly {
                            id: s.id,
                            loops: ctx.loops.clone(),
                            guards,
                            position,
                            accesses: std::mem::take(&mut accesses),
                        });
                        Ok(())
                    })();
                    if let Err(e) = build {
                        ctx.err = Some(e);
                    }
                }
            }
        }
    }

    let mut ctx = Ctx {
        out: &mut out,
        chain: Vec::new(),
        loops: Vec::new(),
        guards: Vec::new(),
        position: Vec::new(),
        err: None,
    };
    let mut counter = 0;
    walk(&program.body, &mut counter, &mut ctx);
    if let Some(e) = ctx.err {
        return Err(e);
    }
    Ok(out
        .into_iter()
        .map(|s| s.expect("every statement visited"))
        .collect())
}

/// Collects IR-level reduction facts for
/// [`prem_polyhedral::analyze_dependences_with`]: every statement recognized
/// as an associative-commutative accumulator update
/// ([`crate::Statement::reduction_op`]) and every constant initializer
/// ([`crate::Statement::is_const_init`]). Statement ids match the
/// [`lower`]-produced [`StmtPoly`] ids, so the hints pair directly with the
/// lowered summaries.
pub fn reduction_hints(program: &Program) -> ReductionHints {
    let mut hints = ReductionHints::default();
    program.visit_statements(|s, _, _| {
        if let Some(op) = s.reduction_op() {
            hints.updates.push((s.id, s.target.array, op));
        } else if s.is_const_init() {
            hints.inits.push((s.id, s.target.array));
        }
    });
    hints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::program::ProgramBuilder;
    use crate::types::ElemType;
    use prem_polyhedral::Interval;

    #[test]
    fn lowering_normalizes_begin_and_stride() {
        let mut b = ProgramBuilder::new("k");
        let a = b.array("a", vec![100], ElemType::F32);
        let i = b.begin_loop("i", 5, 3, 10); // i = 5, 8, …, 32
        b.stmt(
            a,
            vec![IdxExpr::var(i).plus_const(1)],
            AssignKind::Assign,
            Expr::Const(0.0),
        );
        b.end_loop();
        let polys = lower(&b.finish()).unwrap();
        let acc = &polys[0].accesses.last().unwrap().indices[0];
        // a[i + 1] with i = 5 + 3t  →  3t + 6
        assert_eq!(acc.coeff(0), 3);
        assert_eq!(acc.constant_term(), 6);
        assert_eq!(polys[0].loops[0].count, 10);
    }

    #[test]
    fn lowering_converts_guards() {
        let mut b = ProgramBuilder::new("k");
        let a = b.array("a", vec![100], ElemType::F32);
        let t = b.begin_loop("t", 0, 1, 10);
        b.begin_if(Cond::atom(IdxExpr::var(t), CmpOp::Gt)); // t > 0
        b.stmt(
            a,
            vec![IdxExpr::var(t)],
            AssignKind::Assign,
            Expr::Const(0.0),
        );
        b.end_if();
        b.end_loop();
        let polys = lower(&b.finish()).unwrap();
        assert_eq!(polys[0].guards.len(), 1);
        assert_eq!(polys[0].tightened_bounds(), vec![Interval::new(1, 9)]);
    }

    #[test]
    fn positions_order_statements_textually() {
        let mut b = ProgramBuilder::new("k");
        let a = b.array("a", vec![10], ElemType::F32);
        let i = b.begin_loop("i", 0, 1, 10);
        b.stmt(
            a,
            vec![IdxExpr::var(i)],
            AssignKind::Assign,
            Expr::Const(0.0),
        );
        b.begin_if(Cond::atom(IdxExpr::var(i), CmpOp::Gt));
        b.stmt(
            a,
            vec![IdxExpr::var(i)],
            AssignKind::Assign,
            Expr::Const(1.0),
        );
        b.end_if();
        b.stmt(
            a,
            vec![IdxExpr::var(i)],
            AssignKind::Assign,
            Expr::Const(2.0),
        );
        b.end_loop();
        let polys = lower(&b.finish()).unwrap();
        assert!(polys[0].textually_before(&polys[1]));
        assert!(polys[1].textually_before(&polys[2]));
    }

    #[test]
    fn dangling_loop_reference_is_error() {
        let mut b = ProgramBuilder::new("k");
        let a = b.array("a", vec![10], ElemType::F32);
        let i = b.begin_loop("i", 0, 1, 10);
        b.end_loop();
        let j = b.begin_loop("j", 0, 1, 10);
        // references i, which is closed
        b.stmt(
            a,
            vec![IdxExpr::var(i)],
            AssignKind::Assign,
            Expr::Const(0.0),
        );
        let _ = j;
        b.end_loop();
        let err = lower(&b.finish()).unwrap_err();
        assert_eq!(err.loop_id, 0);
    }

    #[test]
    fn reduction_hints_feed_dependence_marking() {
        use crate::expr::BinOp;
        use prem_polyhedral::{analyze_dependences_with, ReduceOp};

        // for i { for j { if (j == 0) acc[i] = 0; acc[i] = acc[i] + x[i][j] } }
        let mut b = ProgramBuilder::new("rowsum");
        let acc = b.array("acc", vec![8], ElemType::F32);
        let x = b.array("x", vec![8, 16], ElemType::F32);
        let i = b.begin_loop("i", 0, 1, 8);
        let j = b.begin_loop("j", 0, 1, 16);
        b.begin_if(Cond::atom(IdxExpr::var(j), CmpOp::Eq));
        b.stmt(
            acc,
            vec![IdxExpr::var(i)],
            AssignKind::Assign,
            Expr::Const(0.0),
        );
        b.end_if();
        b.stmt(
            acc,
            vec![IdxExpr::var(i)],
            AssignKind::Assign,
            Expr::bin(
                BinOp::Add,
                Expr::load(acc, vec![IdxExpr::var(i)]),
                Expr::load(x, vec![IdxExpr::var(i), IdxExpr::var(j)]),
            ),
        );
        b.end_loop();
        b.end_loop();
        let p = b.finish();

        let hints = reduction_hints(&p);
        assert_eq!(hints.updates, vec![(1, acc, ReduceOp::Add)]);
        assert_eq!(hints.inits, vec![(0, acc)]);

        // End to end: the init is pinned (j == 0), so every dependence on
        // acc — update self-deps and init↔update — is reduction-marked.
        let polys = lower(&p).unwrap();
        let deps = analyze_dependences_with(&polys, &hints);
        assert!(!deps.is_empty());
        for d in &deps {
            assert_eq!(d.reduction, Some(ReduceOp::Add), "{d}");
        }
    }

    #[test]
    fn accesses_match_statement_order() {
        let mut b = ProgramBuilder::new("k");
        let c = b.array("c", vec![10], ElemType::F32);
        let x = b.array("x", vec![10], ElemType::F32);
        let i = b.begin_loop("i", 0, 1, 10);
        b.stmt(
            c,
            vec![IdxExpr::var(i)],
            AssignKind::AddAssign,
            Expr::load(x, vec![IdxExpr::var(i)]),
        );
        b.end_loop();
        let polys = lower(&b.finish()).unwrap();
        let acc = &polys[0].accesses;
        assert_eq!(acc.len(), 3);
        assert!(!acc[0].is_write && acc[0].array == 0); // implicit read of c
        assert!(!acc[1].is_write && acc[1].array == 1); // read of x
        assert!(acc[2].is_write && acc[2].array == 0); // write of c
    }
}
