//! Loop-nest programs: the IR the PREM compiler analyzes and transforms.

use crate::expr::{Access, BinOp, Cond, Env, Expr, IdxExpr};
use crate::types::{ArrayDecl, ArrayId, ElemType};
use prem_polyhedral::ReduceOp;
use std::fmt;

/// Assignment kind of a statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignKind {
    /// `target = rhs`
    Assign,
    /// `target += rhs`
    AddAssign,
}

/// A single assignment statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    /// Statement identifier, unique within the program.
    pub id: usize,
    /// Store target.
    pub target: Access,
    /// Assignment kind.
    pub kind: AssignKind,
    /// Right-hand side.
    pub rhs: Expr,
}

impl Statement {
    /// Executes the statement once under the given loop environment and data
    /// store.
    pub fn execute<S: crate::interp::DataStore>(&self, env: &Env, store: &mut S) {
        let value = crate::interp::eval_expr(&self.rhs, env, store);
        let idx = self.target.eval_indices(env);
        match self.kind {
            AssignKind::Assign => store.store(self.target.array, &idx, value),
            AssignKind::AddAssign => {
                let old = store.load(self.target.array, &idx);
                store.store(self.target.array, &idx, old + value);
            }
        }
    }

    /// All accesses of the statement: the target write plus — for `+=` —
    /// the implicit read of the target, plus every load of the RHS.
    pub fn accesses(&self) -> Vec<(Access, bool)> {
        let mut out = Vec::new();
        if self.kind == AssignKind::AddAssign {
            out.push((self.target.clone(), false));
        }
        for l in self.rhs.loads() {
            out.push((l.clone(), false));
        }
        out.push((self.target.clone(), true));
        out
    }

    /// Number of arithmetic operations performed per instance (including the
    /// implicit add of `+=`).
    pub fn op_count(&self) -> u64 {
        self.rhs.op_count() + u64::from(self.kind == AssignKind::AddAssign)
    }

    /// Recognizes the statement as an associative-commutative accumulator
    /// update and returns its operator.
    ///
    /// Two shapes qualify:
    ///
    /// * `a[..] += e` where `e` does not read array `a` (reading it — e.g.
    ///   `a[i] += a[i-1]` — is a recurrence, not a reorderable reduction);
    /// * the spelled-out `a[..] = op(a[..], e)` for `op ∈ {+, max, min}`,
    ///   where exactly one operand is a load of the *same element* being
    ///   written and the other does not read array `a`.
    pub fn reduction_op(&self) -> Option<ReduceOp> {
        let reads_target_array = |e: &Expr| e.loads().iter().any(|l| l.array == self.target.array);
        match self.kind {
            AssignKind::AddAssign => (!reads_target_array(&self.rhs)).then_some(ReduceOp::Add),
            AssignKind::Assign => {
                let Expr::Bin(op, l, r) = &self.rhs else {
                    return None;
                };
                let op = match op {
                    BinOp::Add => ReduceOp::Add,
                    BinOp::Max => ReduceOp::Max,
                    BinOp::Min => ReduceOp::Min,
                    BinOp::Sub | BinOp::Mul | BinOp::Div => return None,
                };
                let is_self_load = |e: &Expr| matches!(e, Expr::Load(a) if *a == self.target);
                match (is_self_load(l), is_self_load(r)) {
                    (true, false) if !reads_target_array(r) => Some(op),
                    (false, true) if !reads_target_array(l) => Some(op),
                    _ => None,
                }
            }
        }
    }

    /// True when the statement overwrites its target with a value loading
    /// nothing — the constant-initializer shape that may be folded into a
    /// reduction when its domain is pinned (see
    /// [`prem_polyhedral::analyze_dependences_with`]).
    pub fn is_const_init(&self) -> bool {
        self.kind == AssignKind::Assign && self.rhs.loads().is_empty()
    }
}

/// A syntactic loop: `for (v = begin; v < begin + stride*count; v += stride)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Loop {
    /// Globally unique loop identifier.
    pub id: usize,
    /// Source-level name.
    pub name: String,
    /// First index value.
    pub begin: i64,
    /// Constant stride (`>= 1`).
    pub stride: i64,
    /// Number of iterations `N`.
    pub count: i64,
    /// Loop body.
    pub body: Vec<Node>,
}

impl Loop {
    /// Last index value `begin + stride*(count-1)`.
    pub fn last(&self) -> i64 {
        self.begin + self.stride * (self.count - 1)
    }
}

/// A node of the program tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A nested loop.
    Loop(Loop),
    /// A guarded block.
    If(IfNode),
    /// A statement.
    Stmt(Statement),
}

/// An affine `if` guard around a block.
#[derive(Debug, Clone, PartialEq)]
pub struct IfNode {
    /// Conjunction of affine atoms over enclosing loop variables.
    pub cond: Cond,
    /// Guarded body.
    pub body: Vec<Node>,
}

/// A complete loop-nest program (one SCoP in the paper's terminology).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Program name (kernel name).
    pub name: String,
    /// Declared arrays.
    pub arrays: Vec<ArrayDecl>,
    /// Top-level nodes.
    pub body: Vec<Node>,
    /// Number of loops (loop ids are `0..loop_count`).
    pub loop_count: usize,
    /// Number of statements (statement ids are `0..stmt_count`).
    pub stmt_count: usize,
}

impl Program {
    /// Looks up an array id by name.
    pub fn array_id(&self, name: &str) -> Option<ArrayId> {
        self.arrays.iter().position(|a| a.name == name)
    }

    /// Array declaration by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id]
    }

    /// Visits every statement with its enclosing loop chain and guards.
    pub fn visit_statements<'a, F>(&'a self, mut f: F)
    where
        F: FnMut(&'a Statement, &[&'a Loop], &[&'a Cond]),
    {
        fn walk<'a, F>(
            nodes: &'a [Node],
            loops: &mut Vec<&'a Loop>,
            conds: &mut Vec<&'a Cond>,
            f: &mut F,
        ) where
            F: FnMut(&'a Statement, &[&'a Loop], &[&'a Cond]),
        {
            for n in nodes {
                match n {
                    Node::Loop(l) => {
                        loops.push(l);
                        walk(&l.body, loops, conds, f);
                        loops.pop();
                    }
                    Node::If(i) => {
                        conds.push(&i.cond);
                        walk(&i.body, loops, conds, f);
                        conds.pop();
                    }
                    Node::Stmt(s) => f(s, loops, conds),
                }
            }
        }
        let mut loops = Vec::new();
        let mut conds = Vec::new();
        walk(&self.body, &mut loops, &mut conds, &mut f);
    }

    /// Finds the loop with the given id.
    pub fn find_loop(&self, id: usize) -> Option<&Loop> {
        fn walk(nodes: &[Node], id: usize) -> Option<&Loop> {
            for n in nodes {
                match n {
                    Node::Loop(l) => {
                        if l.id == id {
                            return Some(l);
                        }
                        if let Some(x) = walk(&l.body, id) {
                            return Some(x);
                        }
                    }
                    Node::If(i) => {
                        if let Some(x) = walk(&i.body, id) {
                            return Some(x);
                        }
                    }
                    Node::Stmt(_) => {}
                }
            }
            None
        }
        walk(&self.body, id)
    }

    /// Total number of innermost statement instances, respecting guards.
    ///
    /// Guards restrict counts only when each atom involves a single loop
    /// variable (the class our kernels use); multi-variable guards are
    /// counted as always-true (an over-approximation).
    pub fn instance_count(&self) -> u64 {
        let mut total = 0u64;
        self.visit_statements(|_s, loops, conds| {
            let mut n = 1u64;
            for l in loops {
                n = n.saturating_mul(guarded_span(l, conds));
            }
            total += n;
        });
        total
    }
}

/// Number of iterations of a loop after tightening its index range with the
/// single-variable atoms of the given guard conjunctions (multi-variable
/// atoms are ignored, an over-approximation).
pub fn guarded_span(l: &Loop, conds: &[&Cond]) -> u64 {
    let mut lo = l.begin;
    let mut hi = l.last();
    for c in conds {
        for atom in &c.atoms {
            let mut vars = atom.lhs.terms();
            let first = vars.next();
            if vars.next().is_some() {
                continue;
            }
            if let Some((v, coef)) = first {
                if v != l.id {
                    continue;
                }
                let k = atom.lhs.constant_term();
                // coef * x + k (op) 0
                use crate::expr::CmpOp::*;
                match (atom.op, coef > 0) {
                    (Eq, _) => {
                        if (-k) % coef == 0 {
                            lo = lo.max(-k / coef);
                            hi = hi.min(-k / coef);
                        } else {
                            hi = lo - 1;
                        }
                    }
                    (Gt, true) => lo = lo.max(div_floor_local(-k, coef) + 1),
                    (Ge, true) => lo = lo.max(div_ceil_local(-k, coef)),
                    (Lt, true) => hi = hi.min(div_ceil_local(-k, coef) - 1),
                    (Le, true) => hi = hi.min(div_floor_local(-k, coef)),
                    (Gt, false) => hi = hi.min(div_ceil_local(-k, coef) - 1),
                    (Ge, false) => hi = hi.min(div_floor_local(-k, coef)),
                    (Lt, false) => lo = lo.max(div_floor_local(-k, coef) + 1),
                    (Le, false) => lo = lo.max(div_ceil_local(-k, coef)),
                }
            }
        }
    }
    if hi < lo {
        0
    } else {
        ((hi - lo) / l.stride + 1) as u64
    }
}

fn div_floor_local(a: i64, b: i64) -> i64 {
    prem_polyhedral::div_floor(a, b)
}

fn div_ceil_local(a: i64, b: i64) -> i64 {
    prem_polyhedral::div_ceil(a, b)
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "// kernel {}", self.name)?;
        for a in &self.arrays {
            writeln!(f, "{a};")?;
        }
        fn name_of(p: &Program, id: usize) -> String {
            p.find_loop(id)
                .map(|l| l.name.clone())
                .unwrap_or_else(|| format!("l{id}"))
        }
        fn pp(
            p: &Program,
            nodes: &[Node],
            indent: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            let pad = "  ".repeat(indent);
            for n in nodes {
                match n {
                    Node::Loop(l) => {
                        writeln!(
                            f,
                            "{pad}for ({name} = {b}; {name} <= {e}; {name} += {s}) {{",
                            name = l.name,
                            b = l.begin,
                            e = l.last(),
                            s = l.stride
                        )?;
                        pp(p, &l.body, indent + 1, f)?;
                        writeln!(f, "{pad}}}")?;
                    }
                    Node::If(i) => {
                        write!(f, "{pad}if (")?;
                        for (k, a) in i.cond.atoms.iter().enumerate() {
                            if k > 0 {
                                write!(f, " && ")?;
                            }
                            let op = match a.op {
                                crate::expr::CmpOp::Eq => "==",
                                crate::expr::CmpOp::Gt => ">",
                                crate::expr::CmpOp::Ge => ">=",
                                crate::expr::CmpOp::Lt => "<",
                                crate::expr::CmpOp::Le => "<=",
                            };
                            write!(f, "{} {op} 0", a.lhs.display_with(|id| name_of(p, id)))?;
                        }
                        writeln!(f, ") {{")?;
                        pp(p, &i.body, indent + 1, f)?;
                        writeln!(f, "{pad}}}")?;
                    }
                    Node::Stmt(s) => {
                        let arr = &p.arrays[s.target.array].name;
                        write!(f, "{pad}{arr}")?;
                        for e in &s.target.indices {
                            write!(f, "[{}]", e.display_with(|id| name_of(p, id)))?;
                        }
                        let op = match s.kind {
                            AssignKind::Assign => "=",
                            AssignKind::AddAssign => "+=",
                        };
                        writeln!(f, " {op} <expr>; // S{}", s.id)?;
                    }
                }
            }
            Ok(())
        }
        pp(self, &self.body, 0, f)
    }
}

/// Incremental builder for [`Program`] values.
///
/// # Examples
///
/// ```
/// use prem_ir::{AssignKind, ElemType, Expr, IdxExpr, ProgramBuilder};
///
/// let mut b = ProgramBuilder::new("axpy");
/// let x = b.array("x", vec![100], ElemType::F32);
/// let y = b.array("y", vec![100], ElemType::F32);
/// let i = b.begin_loop("i", 0, 1, 100);
/// b.stmt(
///     y,
///     vec![IdxExpr::var(i)],
///     AssignKind::AddAssign,
///     Expr::load(x, vec![IdxExpr::var(i)]),
/// );
/// b.end_loop();
/// let prog = b.finish();
/// assert_eq!(prog.loop_count, 1);
/// assert_eq!(prog.instance_count(), 100);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
    /// Stack of open scopes; each holds the nodes accumulated so far plus the
    /// frame that will consume them.
    stack: Vec<Frame>,
    nodes: Vec<Node>,
}

#[derive(Debug)]
enum Frame {
    Loop {
        id: usize,
        name: String,
        begin: i64,
        stride: i64,
        count: i64,
        saved: Vec<Node>,
    },
    If {
        cond: Cond,
        saved: Vec<Node>,
    },
}

impl ProgramBuilder {
    /// Starts building a program with the given kernel name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            program: Program {
                name: name.into(),
                ..Program::default()
            },
            stack: Vec::new(),
            nodes: Vec::new(),
        }
    }

    /// Declares an array and returns its id.
    pub fn array(&mut self, name: impl Into<String>, dims: Vec<i64>, elem: ElemType) -> ArrayId {
        self.program.arrays.push(ArrayDecl::new(name, dims, elem));
        self.program.arrays.len() - 1
    }

    /// Opens a loop scope and returns the loop's id (usable in [`IdxExpr`]).
    pub fn begin_loop(
        &mut self,
        name: impl Into<String>,
        begin: i64,
        stride: i64,
        count: i64,
    ) -> usize {
        assert!(stride >= 1, "loop stride must be >= 1");
        assert!(count >= 1, "loop count must be >= 1");
        let id = self.program.loop_count;
        self.program.loop_count += 1;
        let saved = std::mem::take(&mut self.nodes);
        self.stack.push(Frame::Loop {
            id,
            name: name.into(),
            begin,
            stride,
            count,
            saved,
        });
        id
    }

    /// Closes the innermost loop scope.
    ///
    /// # Panics
    ///
    /// Panics if the innermost open scope is not a loop.
    pub fn end_loop(&mut self) {
        match self.stack.pop() {
            Some(Frame::Loop {
                id,
                name,
                begin,
                stride,
                count,
                saved,
            }) => {
                let body = std::mem::replace(&mut self.nodes, saved);
                self.nodes.push(Node::Loop(Loop {
                    id,
                    name,
                    begin,
                    stride,
                    count,
                    body,
                }));
            }
            other => panic!("end_loop without matching begin_loop: {other:?}"),
        }
    }

    /// Opens an `if` scope.
    pub fn begin_if(&mut self, cond: Cond) {
        let saved = std::mem::take(&mut self.nodes);
        self.stack.push(Frame::If { cond, saved });
    }

    /// Closes the innermost `if` scope.
    ///
    /// # Panics
    ///
    /// Panics if the innermost open scope is not an `if`.
    pub fn end_if(&mut self) {
        match self.stack.pop() {
            Some(Frame::If { cond, saved }) => {
                let body = std::mem::replace(&mut self.nodes, saved);
                self.nodes.push(Node::If(IfNode { cond, body }));
            }
            other => panic!("end_if without matching begin_if: {other:?}"),
        }
    }

    /// Appends a statement to the current scope and returns its id.
    pub fn stmt(
        &mut self,
        target: ArrayId,
        indices: Vec<IdxExpr>,
        kind: AssignKind,
        rhs: Expr,
    ) -> usize {
        let id = self.program.stmt_count;
        self.program.stmt_count += 1;
        self.nodes.push(Node::Stmt(Statement {
            id,
            target: Access::new(target, indices),
            kind,
            rhs,
        }));
        id
    }

    /// Finishes building.
    ///
    /// # Panics
    ///
    /// Panics if any scope is still open.
    pub fn finish(mut self) -> Program {
        assert!(self.stack.is_empty(), "unclosed loop or if scope");
        self.program.body = std::mem::take(&mut self.nodes);
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    fn small_program() -> Program {
        let mut b = ProgramBuilder::new("test");
        let a = b.array("a", vec![10, 10], ElemType::F32);
        let i = b.begin_loop("i", 0, 1, 10);
        let j = b.begin_loop("j", 0, 1, 10);
        b.begin_if(Cond::atom(IdxExpr::var(i), CmpOp::Gt));
        b.stmt(
            a,
            vec![IdxExpr::var(i), IdxExpr::var(j)],
            AssignKind::Assign,
            Expr::Const(1.0),
        );
        b.end_if();
        b.end_loop();
        b.end_loop();
        b.finish()
    }

    #[test]
    fn builder_produces_nested_structure() {
        let p = small_program();
        assert_eq!(p.loop_count, 2);
        assert_eq!(p.stmt_count, 1);
        let mut seen = 0;
        p.visit_statements(|s, loops, conds| {
            seen += 1;
            assert_eq!(s.id, 0);
            assert_eq!(loops.len(), 2);
            assert_eq!(loops[0].name, "i");
            assert_eq!(conds.len(), 1);
        });
        assert_eq!(seen, 1);
    }

    #[test]
    fn instance_count_respects_guards() {
        let p = small_program();
        // i > 0 excludes i = 0: 9 * 10 instances.
        assert_eq!(p.instance_count(), 90);
    }

    #[test]
    fn instance_count_with_strides() {
        let mut b = ProgramBuilder::new("strided");
        let a = b.array("a", vec![100], ElemType::F32);
        let i = b.begin_loop("i", 2, 3, 5); // 2, 5, 8, 11, 14
        b.stmt(
            a,
            vec![IdxExpr::var(i)],
            AssignKind::Assign,
            Expr::Const(0.0),
        );
        b.end_loop();
        let p = b.finish();
        assert_eq!(p.instance_count(), 5);
        let l = p.find_loop(0).unwrap();
        assert_eq!(l.last(), 14);
    }

    #[test]
    fn find_loop_by_id() {
        let p = small_program();
        assert_eq!(p.find_loop(1).unwrap().name, "j");
        assert!(p.find_loop(7).is_none());
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn unbalanced_scopes_panic() {
        let mut b = ProgramBuilder::new("bad");
        b.begin_loop("i", 0, 1, 4);
        let _ = b.finish();
    }

    #[test]
    fn reduction_op_recognizes_update_shapes() {
        let mut b = ProgramBuilder::new("red");
        let a = b.array("a", vec![8], ElemType::F32);
        let x = b.array("x", vec![8], ElemType::F32);
        let i = b.begin_loop("i", 0, 1, 8);
        let at = |arr| Expr::load(arr, vec![IdxExpr::var(i)]);
        // s0: a[i] += x[i]                      → Add
        b.stmt(a, vec![IdxExpr::var(i)], AssignKind::AddAssign, at(x));
        // s1: a[i] = a[i] + x[i]  (spelled out) → Add
        b.stmt(
            a,
            vec![IdxExpr::var(i)],
            AssignKind::Assign,
            Expr::bin(crate::expr::BinOp::Add, at(a), at(x)),
        );
        // s2: a[i] = max(x[i], a[i]) (operand order flipped) → Max
        b.stmt(
            a,
            vec![IdxExpr::var(i)],
            AssignKind::Assign,
            Expr::bin(crate::expr::BinOp::Max, at(x), at(a)),
        );
        // s3: a[i] = a[i] - x[i] — subtraction is not commutative-mergeable
        b.stmt(
            a,
            vec![IdxExpr::var(i)],
            AssignKind::Assign,
            Expr::bin(crate::expr::BinOp::Sub, at(a), at(x)),
        );
        // s4: a[i] += a[i] — rhs reads the accumulator array: a recurrence
        b.stmt(a, vec![IdxExpr::var(i)], AssignKind::AddAssign, at(a));
        // s5: a[i] = max(a[i], a[i]) — both operands are the accumulator
        b.stmt(
            a,
            vec![IdxExpr::var(i)],
            AssignKind::Assign,
            Expr::bin(crate::expr::BinOp::Max, at(a), at(a)),
        );
        // s6: a[i] = 0.0 — initializer, not an update
        b.stmt(
            a,
            vec![IdxExpr::var(i)],
            AssignKind::Assign,
            Expr::Const(0.0),
        );
        b.end_loop();
        let p = b.finish();
        let mut ops = Vec::new();
        let mut inits = Vec::new();
        p.visit_statements(|s, _, _| {
            ops.push(s.reduction_op());
            inits.push(s.is_const_init());
        });
        use prem_polyhedral::ReduceOp::*;
        assert_eq!(
            ops,
            vec![Some(Add), Some(Add), Some(Max), None, None, None, None]
        );
        assert_eq!(inits, vec![false, false, false, false, false, false, true]);
    }

    #[test]
    fn statement_accesses_include_implicit_read() {
        let mut b = ProgramBuilder::new("acc");
        let a = b.array("a", vec![4], ElemType::F32);
        let x = b.array("x", vec![4], ElemType::F32);
        let i = b.begin_loop("i", 0, 1, 4);
        b.stmt(
            a,
            vec![IdxExpr::var(i)],
            AssignKind::AddAssign,
            Expr::load(x, vec![IdxExpr::var(i)]),
        );
        b.end_loop();
        let p = b.finish();
        p.visit_statements(|s, _, _| {
            let acc = s.accesses();
            // implicit read of a, read of x, write of a
            assert_eq!(acc.len(), 3);
            assert_eq!(acc.iter().filter(|(_, w)| *w).count(), 1);
            assert_eq!(s.op_count(), 1);
        });
    }
}
