//! Array declarations and element types.

use std::fmt;

/// Element type of an array.
///
/// The paper's kernels use 32-bit elements (`int32_t`/`float`); the DMA and
/// bus model only need the element *size*, so a small closed set suffices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemType {
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
}

impl ElemType {
    /// Size of one element in bytes.
    pub fn size_bytes(&self) -> i64 {
        match self {
            ElemType::F32 | ElemType::I32 => 4,
            ElemType::F64 | ElemType::I64 => 8,
        }
    }

    /// C type name, used by code generation.
    pub fn c_name(&self) -> &'static str {
        match self {
            ElemType::F32 => "float",
            ElemType::F64 => "double",
            ElemType::I32 => "int32_t",
            ElemType::I64 => "int64_t",
        }
    }
}

impl fmt::Display for ElemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.c_name())
    }
}

/// Identifier of an array within a [`crate::Program`].
pub type ArrayId = usize;

/// A statically shaped array declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Source-level name.
    pub name: String,
    /// Extent of each dimension, outermost first.
    pub dims: Vec<i64>,
    /// Element type.
    pub elem: ElemType,
}

impl ArrayDecl {
    /// Creates a declaration.
    pub fn new(name: impl Into<String>, dims: Vec<i64>, elem: ElemType) -> Self {
        ArrayDecl {
            name: name.into(),
            dims,
            elem,
        }
    }

    /// Total number of elements.
    pub fn len(&self) -> i64 {
        self.dims.iter().product()
    }

    /// Returns `true` if the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> i64 {
        self.len() * self.elem.size_bytes()
    }

    /// Row-major linear offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the index has the wrong arity or is out of
    /// bounds.
    pub fn linear_offset(&self, idx: &[i64]) -> i64 {
        debug_assert_eq!(idx.len(), self.dims.len(), "index arity for {}", self.name);
        let mut off = 0;
        for (d, (&i, &n)) in idx.iter().zip(&self.dims).enumerate() {
            debug_assert!(
                i >= 0 && i < n,
                "index {i} out of bounds for dim {d} (extent {n}) of {}",
                self.name
            );
            off = off * n + i;
        }
        off
    }
}

impl fmt::Display for ArrayDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.elem, self.name)?;
        for d in &self.dims {
            write!(f, "[{d}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        let a = ArrayDecl::new("a", vec![3, 5], ElemType::F32);
        assert_eq!(a.len(), 15);
        assert_eq!(a.size_bytes(), 60);
        assert_eq!(ElemType::F64.size_bytes(), 8);
    }

    #[test]
    fn linear_offsets_row_major() {
        let a = ArrayDecl::new("a", vec![3, 5], ElemType::F32);
        assert_eq!(a.linear_offset(&[0, 0]), 0);
        assert_eq!(a.linear_offset(&[1, 0]), 5);
        assert_eq!(a.linear_offset(&[2, 4]), 14);
    }

    #[test]
    fn display() {
        let a = ArrayDecl::new("w", vec![2, 3], ElemType::I32);
        assert_eq!(format!("{a}"), "int32_t w[2][3]");
    }
}
