//! Classic PolyBench linear-algebra kernels, defined as C source and parsed
//! through the frontend — both extra workloads for the compiler and a
//! dog-food test of the `prem-frontend` / builder equivalence.

use prem_frontend::parse_kernel;
use prem_ir::Program;

/// `gemm`: `C = alpha·A·B + beta·C` with scalar constants folded in
/// (`alpha = 2`, `beta = 1` — `beta` scaling is expressed as a guarded
/// multiply so the kernel stays in the accepted subset).
pub fn gemm(ni: i64, nj: i64, nk: i64) -> Program {
    let src = r#"
        float A[NI][NK]; float B[NK][NJ]; float C[NI][NJ];
        for (int i = 0; i < NI; i++)
            for (int j = 0; j < NJ; j++)
                for (int k = 0; k < NK; k++)
                    C[i][j] += 2.0 * A[i][k] * B[k][j];
    "#;
    parse_kernel("gemm", src, &[("NI", ni), ("NJ", nj), ("NK", nk)]).expect("gemm parses")
}

/// `2mm`: `E = A·B; F = E·D` — two chained matrix products forming two
/// tilable components with a flow dependence between them.
pub fn two_mm(ni: i64, nj: i64, nk: i64, nl: i64) -> Program {
    let src = r#"
        float A[NI][NK]; float B[NK][NJ]; float E[NI][NJ];
        float D[NJ][NL]; float F[NI][NL];
        for (int i = 0; i < NI; i++)
            for (int j = 0; j < NJ; j++)
                for (int k = 0; k < NK; k++) {
                    if (k == 0)
                        E[i][j] = 0.0;
                    E[i][j] += A[i][k] * B[k][j];
                }
        for (int i2 = 0; i2 < NI; i2++)
            for (int l = 0; l < NL; l++)
                for (int j2 = 0; j2 < NJ; j2++) {
                    if (j2 == 0)
                        F[i2][l] = 0.0;
                    F[i2][l] += E[i2][j2] * D[j2][l];
                }
    "#;
    parse_kernel(
        "two_mm",
        src,
        &[("NI", ni), ("NJ", nj), ("NK", nk), ("NL", nl)],
    )
    .expect("2mm parses")
}

/// `atax`: `y = Aᵀ(A·x)` — a matvec followed by a transposed matvec.
pub fn atax(m: i64, n: i64) -> Program {
    let src = r#"
        float A[M][N]; float x[N]; float tmp[M]; float y[N];
        for (int i = 0; i < M; i++)
            for (int j = 0; j < N; j++) {
                if (j == 0)
                    tmp[i] = 0.0;
                tmp[i] += A[i][j] * x[j];
            }
        for (int j2 = 0; j2 < N; j2++)
            for (int i2 = 0; i2 < M; i2++) {
                if (i2 == 0)
                    y[j2] = 0.0;
                y[j2] += A[i2][j2] * tmp[i2];
            }
    "#;
    parse_kernel("atax", src, &[("M", m), ("N", n)]).expect("atax parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_ir::{run_program, DataStore, MemStore};

    #[test]
    fn gemm_computes_correctly() {
        let p = gemm(6, 5, 4);
        let mut store = MemStore::patterned(&p);
        let want = {
            let mut c = vec![0.0f64; 30];
            for i in 0..6i64 {
                for j in 0..5i64 {
                    let mut acc = store.load(2, &[i, j]);
                    for k in 0..4i64 {
                        acc += 2.0 * store.load(0, &[i, k]) * store.load(1, &[k, j]);
                    }
                    c[(i * 5 + j) as usize] = acc;
                }
            }
            c
        };
        run_program(&p, &mut store);
        for i in 0..6i64 {
            for j in 0..5i64 {
                let got = store.load(2, &[i, j]);
                assert!((got - want[(i * 5 + j) as usize]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn two_mm_has_two_components_with_cross_flow() {
        use prem_core::LoopTree;
        let p = two_mm(12, 10, 8, 6);
        let tree = LoopTree::build(&p).unwrap();
        assert_eq!(tree.roots.len(), 2);
        // Both matmuls parallel over their two outer levels, reduction inner.
        for root in &tree.roots {
            assert!(root.parallel);
            assert!(root.children[0].parallel);
            assert!(!root.children[0].children[0].parallel);
        }
    }

    #[test]
    fn classic_kernels_compile_end_to_end() {
        use prem_core::{optimize_app, LoopTree, OptimizerOptions, Platform};
        for p in [gemm(24, 20, 16), two_mm(16, 12, 10, 8), atax(20, 16)] {
            let tree = LoopTree::build(&p).unwrap();
            let cost = prem_core::AnalyticCost::new(&p);
            let platform = Platform::default().with_spm_bytes(4 * 1024);
            let out = optimize_app(&tree, &p, &platform, &cost, &OptimizerOptions::default());
            assert!(out.makespan_ns.is_finite(), "{} infeasible", p.name);
        }
    }
}
