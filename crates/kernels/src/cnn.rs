//! The PolyBench-NN CNN (convolution) kernel, Listing 6.1 of the thesis:
//!
//! ```c
//! for (n) for (k) for (p) for (q) for (c) for (r) for (s)
//!   out_F[n][k][p][q] += W[k][c][r][s]
//!                      * inp_F[n][c][p + NR - r - 1][q + NS - s - 1];
//! ```

use prem_ir::{AssignKind, ElemType, Expr, IdxExpr, Program, ProgramBuilder};

/// Convolution layer shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CnnConfig {
    /// Batch size `NN`.
    pub nn: i64,
    /// Output feature maps `NK`.
    pub nk: i64,
    /// Output height `NP`.
    pub np: i64,
    /// Output width `NQ`.
    pub nq: i64,
    /// Input feature maps `NC`.
    pub nc: i64,
    /// Filter height `NR`.
    pub nr: i64,
    /// Filter width `NS`.
    pub ns: i64,
}

impl CnnConfig {
    /// The LARGE problem size used by §6.2 (≈ 23 MB footprint; the suite's
    /// exact constants are not given in the thesis, see DESIGN.md).
    pub fn large() -> Self {
        CnnConfig {
            nn: 2,
            nk: 64,
            np: 112,
            nq: 112,
            nc: 160,
            nr: 3,
            ns: 3,
        }
    }

    /// A small size for functional tests.
    pub fn small() -> Self {
        CnnConfig {
            nn: 1,
            nk: 4,
            np: 6,
            nq: 6,
            nc: 3,
            nr: 3,
            ns: 3,
        }
    }

    /// The GoogLeNet-derived shape used throughout §6.3
    /// (`k128/p28/q28/c96/r3/s3`, batch 1).
    pub fn googlenet_study() -> Self {
        CnnConfig {
            nn: 1,
            nk: 128,
            np: 28,
            nq: 28,
            nc: 96,
            nr: 3,
            ns: 3,
        }
    }

    /// Total data footprint in bytes (all three arrays, f32).
    pub fn footprint_bytes(&self) -> i64 {
        let out = self.nn * self.nk * self.np * self.nq;
        let w = self.nk * self.nc * self.nr * self.ns;
        let inp = self.nn * self.nc * (self.np + self.nr - 1) * (self.nq + self.ns - 1);
        (out + w + inp) * 4
    }

    /// Builds the kernel as loop IR.
    pub fn build(&self) -> Program {
        let mut b = ProgramBuilder::new("cnn");
        let out = b.array(
            "out_F",
            vec![self.nn, self.nk, self.np, self.nq],
            ElemType::F32,
        );
        let w = b.array("W", vec![self.nk, self.nc, self.nr, self.ns], ElemType::F32);
        let inp = b.array(
            "inp_F",
            vec![
                self.nn,
                self.nc,
                self.np + self.nr - 1,
                self.nq + self.ns - 1,
            ],
            ElemType::F32,
        );
        let n = b.begin_loop("n", 0, 1, self.nn);
        let k = b.begin_loop("k", 0, 1, self.nk);
        let p = b.begin_loop("p", 0, 1, self.np);
        let q = b.begin_loop("q", 0, 1, self.nq);
        let c = b.begin_loop("c", 0, 1, self.nc);
        let r = b.begin_loop("r", 0, 1, self.nr);
        let s = b.begin_loop("s", 0, 1, self.ns);
        b.stmt(
            out,
            vec![
                IdxExpr::var(n),
                IdxExpr::var(k),
                IdxExpr::var(p),
                IdxExpr::var(q),
            ],
            AssignKind::AddAssign,
            Expr::mul(
                Expr::load(
                    w,
                    vec![
                        IdxExpr::var(k),
                        IdxExpr::var(c),
                        IdxExpr::var(r),
                        IdxExpr::var(s),
                    ],
                ),
                Expr::load(
                    inp,
                    vec![
                        IdxExpr::var(n),
                        IdxExpr::var(c),
                        IdxExpr::var(p).plus_var(r, -1).plus_const(self.nr - 1),
                        IdxExpr::var(q).plus_var(s, -1).plus_const(self.ns - 1),
                    ],
                ),
            ),
        );
        for _ in 0..7 {
            b.end_loop();
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_counts() {
        let cfg = CnnConfig::small();
        let p = cfg.build();
        assert_eq!(p.loop_count, 7);
        assert_eq!(p.stmt_count, 1);
        assert_eq!(
            p.instance_count() as i64,
            cfg.nn * cfg.nk * cfg.np * cfg.nq * cfg.nc * cfg.nr * cfg.ns
        );
    }

    #[test]
    fn large_footprint_near_25mb() {
        let f = CnnConfig::large().footprint_bytes();
        assert!(f > 20 << 20 && f < 30 << 20, "footprint {f}");
    }

    #[test]
    fn executes_functionally() {
        use prem_ir::{run_program, DataStore, MemStore};
        let cfg = CnnConfig {
            nn: 1,
            nk: 1,
            np: 2,
            nq: 2,
            nc: 1,
            nr: 2,
            ns: 2,
        };
        let p = cfg.build();
        let mut store = MemStore::zeroed(&p);
        // W = all ones (2×2), inp = index pattern.
        for r in 0..2 {
            for s in 0..2 {
                store.store(1, &[0, 0, r, s], 1.0);
            }
        }
        for y in 0..3 {
            for x in 0..3 {
                store.store(2, &[0, 0, y, x], (y * 3 + x) as f64);
            }
        }
        run_program(&p, &mut store);
        // out[0][0][p][q] = Σ_{r,s} inp[p + 1 - r][q + 1 - s]
        let expect = |pp: i64, qq: i64| -> f64 {
            let mut acc = 0.0;
            for r in 0..2 {
                for s in 0..2 {
                    let y = pp + 1 - r;
                    let x = qq + 1 - s;
                    acc += (y * 3 + x) as f64;
                }
            }
            acc
        };
        for pp in 0..2 {
            for qq in 0..2 {
                assert_eq!(store.load(0, &[0, 0, pp, qq]), expect(pp, qq));
            }
        }
    }
}
