//! GoogLeNet 3×3 convolution shapes used in §6.3 (Figure 6.6).

use crate::cnn::CnnConfig;

/// The six (NK, NP, NQ, NC) layer shapes of Figure 6.6, batch 1, 3×3
/// filters, stride 1.
pub fn study_shapes() -> Vec<CnnConfig> {
    [
        (128, 28, 28, 96),
        (192, 28, 28, 128),
        (208, 14, 14, 96),
        (320, 14, 14, 160),
        (320, 7, 7, 160),
        (384, 7, 7, 192),
    ]
    .into_iter()
    .map(|(nk, np, nq, nc)| CnnConfig {
        nn: 1,
        nk,
        np,
        nq,
        nc,
        nr: 3,
        ns: 3,
    })
    .collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn six_shapes() {
        let shapes = super::study_shapes();
        assert_eq!(shapes.len(), 6);
        assert_eq!(shapes[0].nk, 128);
        assert_eq!(shapes[5].nc, 192);
        assert!(shapes.iter().all(|s| s.nn == 1 && s.nr == 3 && s.ns == 3));
    }
}
