//! PolyBench-NN kernels for the PREM compiler reproduction.
//!
//! The five forward passes the paper evaluates (§6.2) — CNN, LSTM, MaxPool,
//! SumPool and RNN — rebuilt as [`prem_ir`] loop nests from the thesis'
//! listings (3.1, 6.1) and descriptions, plus the GoogLeNet layer shapes of
//! §6.3 and independent reference implementations used for end-to-end
//! validation.
//!
//! # Example
//!
//! ```
//! use prem_kernels::{all_large, CnnConfig};
//!
//! let suite = all_large();
//! assert_eq!(suite.len(), 5);
//! let cnn = CnnConfig::small().build();
//! assert_eq!(cnn.loop_count, 7);
//! ```

#![warn(missing_docs)]

pub mod classic;
pub mod cnn;
pub mod googlenet;
pub mod lstm;
pub mod pool;
pub mod reference;
pub mod rnn;

pub use cnn::CnnConfig;
pub use lstm::LstmConfig;
pub use pool::{PoolConfig, PoolOp};
pub use rnn::RnnConfig;

use prem_ir::Program;

/// The five LARGE-size PolyBench-NN forward passes of Figure 6.1, in the
/// paper's order: cnn, lstm, maxpool, sumpool, rnn.
pub fn all_large() -> Vec<(&'static str, Program)> {
    vec![
        ("cnn", CnnConfig::large().build()),
        ("lstm", LstmConfig::large().build()),
        ("maxpool", PoolConfig::large(PoolOp::Max).build()),
        ("sumpool", PoolConfig::large(PoolOp::Sum).build()),
        ("rnn", RnnConfig::large().build()),
    ]
}

/// Small-size variants of the same suite, for tests and simulation.
pub fn all_small() -> Vec<(&'static str, Program)> {
    vec![
        ("cnn", CnnConfig::small().build()),
        ("lstm", LstmConfig::small().build()),
        ("maxpool", PoolConfig::small(PoolOp::Max).build()),
        ("sumpool", PoolConfig::small(PoolOp::Sum).build()),
        ("rnn", RnnConfig::small().build()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_footprints_are_kernel_scale() {
        // §6.2: the LARGE size uses approximately 25 MB per kernel.
        let budget = (20 << 20)..(32 << 20);
        assert!(budget.contains(&CnnConfig::large().footprint_bytes()));
        assert!(budget.contains(&LstmConfig::large().footprint_bytes()));
        assert!(budget.contains(&PoolConfig::large(PoolOp::Max).footprint_bytes()));
        assert!(budget.contains(&RnnConfig::large().footprint_bytes()));
    }

    #[test]
    fn all_suites_lower_cleanly() {
        for (name, p) in all_small() {
            assert!(prem_ir::lower(&p).is_ok(), "{name} fails to lower");
        }
    }
}
