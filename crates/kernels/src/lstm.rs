//! The PolyBench-NN LSTM forward pass, Listing 3.1 of the thesis.
//!
//! Per timestep: four gate pre-activations accumulate the input projection
//! (`U_* · inp_F[t]`) and, for `t > 0`, the recurrent projection
//! (`W_* · s_F[t-1]`); the cell and hidden states are then updated
//! element-wise. The suite's LARGE size is `NS = 650`, `NP = 700` (§3.4).

use prem_ir::{AssignKind, CmpOp, Cond, ElemType, Expr, IdxExpr, Program, ProgramBuilder};

/// LSTM layer shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LstmConfig {
    /// Sequence length `NT`.
    pub nt: i64,
    /// State size `NS`.
    pub ns: i64,
    /// Input size `NP`.
    pub np: i64,
}

impl LstmConfig {
    /// LARGE problem size (`NS`/`NP` from the thesis; `NT` sized for the
    /// ≈ 25 MB footprint of §6.2).
    pub fn large() -> Self {
        LstmConfig {
            nt: 1300,
            ns: 650,
            np: 700,
        }
    }

    /// A small size for functional tests.
    pub fn small() -> Self {
        LstmConfig {
            nt: 4,
            ns: 6,
            np: 5,
        }
    }

    /// Total data footprint in bytes (f32).
    pub fn footprint_bytes(&self) -> i64 {
        let gates = 4 * self.ns; // i, f, o, g
        let u = 4 * self.ns * self.np;
        let w = 4 * self.ns * self.ns;
        let seq = self.nt * (self.np + 2 * self.ns); // inp_F, s_F, c_F
        (gates + u + w + seq) * 4
    }

    /// Builds the kernel as loop IR, mirroring Listing 3.1.
    pub fn build(&self) -> Program {
        let mut b = ProgramBuilder::new("lstm");
        let gates: Vec<_> = ["i", "f", "o", "g"]
            .iter()
            .map(|n| b.array(*n, vec![self.ns], ElemType::F32))
            .collect();
        let us: Vec<_> = ["U_i", "U_f", "U_o", "U_g"]
            .iter()
            .map(|n| b.array(*n, vec![self.ns, self.np], ElemType::F32))
            .collect();
        let ws: Vec<_> = ["W_i", "W_f", "W_o", "W_g"]
            .iter()
            .map(|n| b.array(*n, vec![self.ns, self.ns], ElemType::F32))
            .collect();
        let inp_f = b.array("inp_F", vec![self.nt, self.np], ElemType::F32);
        let s_f = b.array("s_F", vec![self.nt, self.ns], ElemType::F32);
        let c_f = b.array("c_F", vec![self.nt, self.ns], ElemType::F32);

        let t = b.begin_loop("t", 0, 1, self.nt);

        // Component (s1_0, p): input projection with gate initialization.
        let s1_0 = b.begin_loop("s1_0", 0, 1, self.ns);
        let p = b.begin_loop("p", 0, 1, self.np);
        b.begin_if(Cond::atom(IdxExpr::var(p), CmpOp::Eq));
        for &gate in &gates {
            b.stmt(
                gate,
                vec![IdxExpr::var(s1_0)],
                AssignKind::Assign,
                Expr::Const(0.0),
            );
        }
        b.end_if();
        for (&gate, &u) in gates.iter().zip(&us) {
            b.stmt(
                gate,
                vec![IdxExpr::var(s1_0)],
                AssignKind::AddAssign,
                Expr::mul(
                    Expr::load(u, vec![IdxExpr::var(s1_0), IdxExpr::var(p)]),
                    Expr::load(inp_f, vec![IdxExpr::var(t), IdxExpr::var(p)]),
                ),
            );
        }
        b.end_loop();
        b.end_loop();

        // Component (s1_1, s2): recurrent projection, only for t > 0.
        b.begin_if(Cond::atom(IdxExpr::var(t), CmpOp::Gt));
        let s1_1 = b.begin_loop("s1_1", 0, 1, self.ns);
        let s2 = b.begin_loop("s2", 0, 1, self.ns);
        for (&gate, &w) in gates.iter().zip(&ws) {
            b.stmt(
                gate,
                vec![IdxExpr::var(s1_1)],
                AssignKind::AddAssign,
                Expr::mul(
                    Expr::load(w, vec![IdxExpr::var(s1_1), IdxExpr::var(s2)]),
                    Expr::load(s_f, vec![IdxExpr::var(t).plus_const(-1), IdxExpr::var(s2)]),
                ),
            );
        }
        b.end_loop();
        b.end_loop();
        b.end_if();

        // Component (b_0): cell update, only for t > 0.
        b.begin_if(Cond::atom(IdxExpr::var(t), CmpOp::Gt));
        let b0 = b.begin_loop("b_0", 0, 1, self.ns);
        b.stmt(
            c_f,
            vec![IdxExpr::var(t), IdxExpr::var(b0)],
            AssignKind::Assign,
            Expr::add(
                Expr::mul(
                    Expr::load(c_f, vec![IdxExpr::var(t).plus_const(-1), IdxExpr::var(b0)]),
                    Expr::load(gates[1], vec![IdxExpr::var(b0)]),
                ),
                Expr::mul(
                    Expr::load(gates[3], vec![IdxExpr::var(b0)]),
                    Expr::load(gates[0], vec![IdxExpr::var(b0)]),
                ),
            ),
        );
        b.end_loop();
        b.end_if();

        // Component (b_1): hidden state update.
        let b1 = b.begin_loop("b_1", 0, 1, self.ns);
        b.stmt(
            s_f,
            vec![IdxExpr::var(t), IdxExpr::var(b1)],
            AssignKind::Assign,
            Expr::mul(
                Expr::load(c_f, vec![IdxExpr::var(t), IdxExpr::var(b1)]),
                Expr::load(gates[2], vec![IdxExpr::var(b1)]),
            ),
        );
        b.end_loop();

        b.end_loop();
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_core::LoopTree;

    #[test]
    fn loop_tree_matches_figure_3_2() {
        let cfg = LstmConfig {
            nt: 10,
            ns: 650,
            np: 700,
        };
        let tree = LoopTree::build(&cfg.build()).unwrap();
        assert_eq!(tree.roots.len(), 1);
        let t = &tree.roots[0];
        assert_eq!(t.name, "t");
        assert!(!t.parallel);
        assert_eq!(t.children.len(), 4);
        let names: Vec<&str> = t.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["s1_0", "s1_1", "b_0", "b_1"]);
        // I counts per Figure 3.2: s1_0 and b_1 run NT times; s1_1 and b_0
        // only NT-1 (guarded by t > 0).
        assert_eq!(t.children[0].exec_count, 10);
        assert_eq!(t.children[1].exec_count, 9);
        assert_eq!(t.children[2].exec_count, 9);
        assert_eq!(t.children[3].exec_count, 10);
        // Parallel flags: all four child loops are parallel.
        for c in &t.children {
            assert!(c.parallel, "{} should be parallel", c.name);
        }
        // The p / s2 reduction loops are not parallel.
        assert!(!t.children[0].children[0].parallel);
        assert!(!t.children[1].children[0].parallel);
    }

    #[test]
    fn executes_like_reference() {
        use prem_ir::{run_program, DataStore, MemStore};
        let cfg = LstmConfig::small();
        let p = cfg.build();
        let mut store = MemStore::patterned(&p);
        // Zero the outputs (gates, s_F, c_F are produced by the kernel;
        // c_F[0] is an input row — keep its pattern).
        for a in [0usize, 1, 2, 3] {
            for s in 0..cfg.ns {
                store.store(a, &[s], 0.0);
            }
        }
        let reference = crate::reference::lstm_reference(&cfg, &store);
        run_program(&p, &mut store);
        let mut max_diff = 0.0f64;
        for tt in 0..cfg.nt {
            for s in 0..cfg.ns {
                let got = store.load(13, &[tt, s]);
                let want = reference.s_f[tt as usize][s as usize];
                max_diff = max_diff.max((got - want).abs());
            }
        }
        assert!(max_diff < 1e-9, "max diff {max_diff}");
    }
}
