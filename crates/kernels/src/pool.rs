//! The PolyBench-NN MaxPool and SumPool kernels.
//!
//! Both pool a `window × window` region with a fixed stride over each feature
//! map. They are written as perfect 6-deep nests with a guarded
//! initialization at the first window element (the same idiom as the LSTM's
//! `p == 0` gate initialization), which keeps the whole nest a single tilable
//! component:
//!
//! ```c
//! for (n) for (c) for (p) for (q) for (r) for (s) {
//!   if (r == 0 && s == 0) out[n][c][p][q] = inp[n][c][p*ST][q*ST];   // or 0
//!   out[n][c][p][q] = max(out[n][c][p][q], inp[n][c][p*ST+r][q*ST+s]); // or +=
//! }
//! ```

use prem_ir::{AssignKind, BinOp, CmpOp, Cond, ElemType, Expr, IdxExpr, Program, ProgramBuilder};

/// Pooling operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolOp {
    /// Max pooling.
    Max,
    /// Sum pooling.
    Sum,
}

/// Pooling layer shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolConfig {
    /// Pooling operation.
    pub op: PoolOp,
    /// Batch size `NN`.
    pub nn: i64,
    /// Feature maps `NC`.
    pub nc: i64,
    /// Output height `NP` (input height = `NP·stride + window - stride`).
    pub np: i64,
    /// Output width `NQ`.
    pub nq: i64,
    /// Window size (both dimensions).
    pub window: i64,
    /// Stride (both dimensions).
    pub stride: i64,
}

impl PoolConfig {
    /// LARGE problem size (≈ 24 MB footprint).
    pub fn large(op: PoolOp) -> Self {
        PoolConfig {
            op,
            nn: 2,
            nc: 144,
            np: 64,
            nq: 64,
            window: 2,
            stride: 2,
        }
    }

    /// A small size for functional tests.
    pub fn small(op: PoolOp) -> Self {
        PoolConfig {
            op,
            nn: 1,
            nc: 2,
            np: 4,
            nq: 4,
            window: 2,
            stride: 2,
        }
    }

    /// A shape whose parallelism lives almost entirely in the pooling
    /// window: only `np · nq = 4` output points but a `6 × 6` reduction per
    /// point. Under the paper's §5.2.1 rule at most 4 threads are legal; the
    /// reduction-aware rule can split the window across further thread
    /// groups. Used to exercise accumulator privatization.
    pub fn window_dominant(op: PoolOp) -> Self {
        PoolConfig {
            op,
            nn: 1,
            nc: 1,
            np: 2,
            nq: 2,
            window: 6,
            stride: 6,
        }
    }

    /// Like [`PoolConfig::window_dominant`] but with a `64 × 64` window, so
    /// the per-point reduction carries enough work (≈ 16 K accumulations)
    /// that splitting it across thread groups beats the per-core API setup
    /// plus the combine phase. This is the shape where reduction-aware
    /// legality *improves* the modeled makespan instead of merely matching
    /// it.
    pub fn reduction_bound(op: PoolOp) -> Self {
        PoolConfig {
            op,
            nn: 1,
            nc: 1,
            np: 2,
            nq: 2,
            window: 64,
            stride: 64,
        }
    }

    /// Input height.
    pub fn in_h(&self) -> i64 {
        self.np * self.stride + self.window - self.stride
    }

    /// Input width.
    pub fn in_w(&self) -> i64 {
        self.nq * self.stride + self.window - self.stride
    }

    /// Total data footprint in bytes (f32).
    pub fn footprint_bytes(&self) -> i64 {
        (self.nn * self.nc * (self.np * self.nq + self.in_h() * self.in_w())) * 4
    }

    /// Builds the kernel as loop IR.
    pub fn build(&self) -> Program {
        let name = match self.op {
            PoolOp::Max => "maxpool",
            PoolOp::Sum => "sumpool",
        };
        let mut b = ProgramBuilder::new(name);
        let out = b.array(
            "out_F",
            vec![self.nn, self.nc, self.np, self.nq],
            ElemType::F32,
        );
        let inp = b.array(
            "inp_F",
            vec![self.nn, self.nc, self.in_h(), self.in_w()],
            ElemType::F32,
        );
        let n = b.begin_loop("n", 0, 1, self.nn);
        let c = b.begin_loop("c", 0, 1, self.nc);
        let p = b.begin_loop("p", 0, 1, self.np);
        let q = b.begin_loop("q", 0, 1, self.nq);
        let r = b.begin_loop("r", 0, 1, self.window);
        let s = b.begin_loop("s", 0, 1, self.window);
        let out_idx = || {
            vec![
                IdxExpr::var(n),
                IdxExpr::var(c),
                IdxExpr::var(p),
                IdxExpr::var(q),
            ]
        };
        let inp_idx = || {
            vec![
                IdxExpr::var(n),
                IdxExpr::var(c),
                IdxExpr::var(p).scale(self.stride).plus_var(r, 1),
                IdxExpr::var(q).scale(self.stride).plus_var(s, 1),
            ]
        };
        // Initialization at the first window element.
        b.begin_if(
            Cond::atom(IdxExpr::var(r), CmpOp::Eq).and(Cond::atom(IdxExpr::var(s), CmpOp::Eq)),
        );
        let init = match self.op {
            PoolOp::Max => Expr::Const(f64::MIN),
            PoolOp::Sum => Expr::Const(0.0),
        };
        b.stmt(out, out_idx(), AssignKind::Assign, init);
        b.end_if();
        match self.op {
            PoolOp::Max => {
                b.stmt(
                    out,
                    out_idx(),
                    AssignKind::Assign,
                    Expr::bin(
                        BinOp::Max,
                        Expr::load(out, out_idx()),
                        Expr::load(inp, inp_idx()),
                    ),
                );
            }
            PoolOp::Sum => {
                b.stmt(
                    out,
                    out_idx(),
                    AssignKind::AddAssign,
                    Expr::load(inp, inp_idx()),
                );
            }
        }
        for _ in 0..6 {
            b.end_loop();
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_ir::{run_program, DataStore, MemStore};

    #[test]
    fn maxpool_executes() {
        let cfg = PoolConfig::small(PoolOp::Max);
        let p = cfg.build();
        let mut store = MemStore::patterned(&p);
        run_program(&p, &mut store);
        for n in 0..cfg.nn {
            for c in 0..cfg.nc {
                for pp in 0..cfg.np {
                    for qq in 0..cfg.nq {
                        let mut want = f64::MIN;
                        for r in 0..cfg.window {
                            for s in 0..cfg.window {
                                want = want.max(
                                    store
                                        .load(1, &[n, c, pp * cfg.stride + r, qq * cfg.stride + s]),
                                );
                            }
                        }
                        assert_eq!(store.load(0, &[n, c, pp, qq]), want);
                    }
                }
            }
        }
    }

    #[test]
    fn sumpool_executes() {
        let cfg = PoolConfig::small(PoolOp::Sum);
        let p = cfg.build();
        let mut store = MemStore::patterned(&p);
        run_program(&p, &mut store);
        let mut checked = 0;
        for pp in 0..cfg.np {
            for qq in 0..cfg.nq {
                let mut want = 0.0;
                for r in 0..cfg.window {
                    for s in 0..cfg.window {
                        want += store.load(1, &[0, 0, pp * cfg.stride + r, qq * cfg.stride + s]);
                    }
                }
                let got = store.load(0, &[0, 0, pp, qq]);
                assert!((got - want).abs() < 1e-12);
                checked += 1;
            }
        }
        assert_eq!(checked, (cfg.np * cfg.nq) as usize);
    }

    #[test]
    fn pool_is_fully_parallel_component() {
        use prem_core::LoopTree;
        for op in [PoolOp::Sum, PoolOp::Max] {
            let cfg = PoolConfig::small(op);
            let tree = LoopTree::build(&cfg.build()).unwrap();
            // All of n, c, p, q are parallel; r and s carry the reduction.
            let mut node = &tree.roots[0];
            for expected in ["n", "c", "p", "q"] {
                assert_eq!(node.name, expected);
                assert!(node.parallel, "{} should be parallel", node.name);
                assert!(
                    !node.reduction_parallel,
                    "{} is plainly parallel, not reduction-parallel",
                    node.name
                );
                node = &node.children[0];
            }
            // r is sequential under the §5.2.1 rule, but every distance it
            // carries belongs to the `out` accumulator update (`+=` /
            // `max=`), so it is reduction-parallel: privatizing `out` makes
            // r a legal thread-group level.
            assert_eq!(node.name, "r");
            assert!(!node.parallel, "r must not be parallel");
            assert!(node.tilable, "r stays tilable");
            assert!(node.reduction_parallel, "r carries only the reduction");
            // s is not even tilable (the window-overlap anti-dependence
            // carried at r has a negative distance component at s), and
            // `reduction_parallel` deliberately implies `tilable` — so s is
            // excluded and folds into the component leaf instead.
            let s = &node.children[0];
            assert_eq!(s.name, "s");
            assert!(!s.parallel && !s.tilable && !s.reduction_parallel);
        }
    }
}
