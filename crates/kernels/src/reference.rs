//! Independent reference implementations of the kernels, written directly in
//! Rust against a [`MemStore`]'s initial contents. They cross-validate both
//! the IR construction and the interpreter, and later the full PREM machine
//! simulation.

// The loop nests below deliberately mirror the kernels index-for-index;
// iterator rewrites would obscure that correspondence.
#![allow(clippy::needless_range_loop)]

use crate::cnn::CnnConfig;
use crate::lstm::LstmConfig;
use crate::pool::{PoolConfig, PoolOp};
use crate::rnn::RnnConfig;
use prem_ir::{DataStore, MemStore};

/// Reference outputs of the LSTM kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmReference {
    /// Hidden states `s_F[t][s]`.
    pub s_f: Vec<Vec<f64>>,
    /// Cell states `c_F[t][s]` (`c_F[0]` is the input row).
    pub c_f: Vec<Vec<f64>>,
}

/// Computes the LSTM forward pass from the initial contents of `store`
/// (array ids as produced by [`LstmConfig::build`]: gates 0–3, `U_*` 4–7,
/// `W_*` 8–11, `inp_F` 12, `s_F` 13, `c_F` 14).
pub fn lstm_reference(cfg: &LstmConfig, store: &MemStore) -> LstmReference {
    let (nt, ns, np) = (cfg.nt as usize, cfg.ns as usize, cfg.np as usize);
    let mut s_f = vec![vec![0.0f64; ns]; nt];
    let mut c_f = vec![vec![0.0f64; ns]; nt];
    // c_F[0] is read before ever being written (the t = 0 iteration skips the
    // cell update): take it from the store.
    for s in 0..ns {
        c_f[0][s] = store.load(14, &[0, s as i64]);
    }
    let mut gates = vec![[0.0f64; 4]; ns];
    for t in 0..nt {
        for s1 in 0..ns {
            for g in 0..4 {
                gates[s1][g] = 0.0;
            }
            for p in 0..np {
                let x = store.load(12, &[t as i64, p as i64]);
                for g in 0..4 {
                    gates[s1][g] += store.load(4 + g, &[s1 as i64, p as i64]) * x;
                }
            }
        }
        if t > 0 {
            for s1 in 0..ns {
                for s2 in 0..ns {
                    let h = s_f[t - 1][s2];
                    for g in 0..4 {
                        gates[s1][g] += store.load(8 + g, &[s1 as i64, s2 as i64]) * h;
                    }
                }
            }
            for b in 0..ns {
                c_f[t][b] = c_f[t - 1][b] * gates[b][1] + gates[b][3] * gates[b][0];
            }
        }
        for b in 0..ns {
            s_f[t][b] = c_f[t][b] * gates[b][2];
        }
    }
    LstmReference { s_f, c_f }
}

/// Computes the CNN forward pass; returns `out_F` flattened row-major
/// (array ids per [`CnnConfig::build`]: `out_F` 0, `W` 1, `inp_F` 2).
pub fn cnn_reference(cfg: &CnnConfig, store: &MemStore) -> Vec<f64> {
    let mut out = vec![0.0f64; (cfg.nn * cfg.nk * cfg.np * cfg.nq) as usize];
    let mut idx = 0usize;
    for n in 0..cfg.nn {
        for k in 0..cfg.nk {
            for p in 0..cfg.np {
                for q in 0..cfg.nq {
                    // out_F starts from its stored contents (+= accumulation).
                    let mut acc = store.load(0, &[n, k, p, q]);
                    for c in 0..cfg.nc {
                        for r in 0..cfg.nr {
                            for s in 0..cfg.ns {
                                acc += store.load(1, &[k, c, r, s])
                                    * store
                                        .load(2, &[n, c, p + cfg.nr - r - 1, q + cfg.ns - s - 1]);
                            }
                        }
                    }
                    out[idx] = acc;
                    idx += 1;
                }
            }
        }
    }
    out
}

/// Computes the pooling forward pass; returns `out_F` flattened row-major
/// (array ids per [`PoolConfig::build`]: `out_F` 0, `inp_F` 1).
pub fn pool_reference(cfg: &PoolConfig, store: &MemStore) -> Vec<f64> {
    let mut out = Vec::with_capacity((cfg.nn * cfg.nc * cfg.np * cfg.nq) as usize);
    for n in 0..cfg.nn {
        for c in 0..cfg.nc {
            for p in 0..cfg.np {
                for q in 0..cfg.nq {
                    let mut acc = match cfg.op {
                        PoolOp::Max => f64::MIN,
                        PoolOp::Sum => 0.0,
                    };
                    for r in 0..cfg.window {
                        for s in 0..cfg.window {
                            let v = store.load(1, &[n, c, p * cfg.stride + r, q * cfg.stride + s]);
                            acc = match cfg.op {
                                PoolOp::Max => acc.max(v),
                                PoolOp::Sum => acc + v,
                            };
                        }
                    }
                    out.push(acc);
                }
            }
        }
    }
    out
}

/// Computes the RNN forward pass; returns the final state vector `s`
/// (array ids per [`RnnConfig::build`]: `tmp` 0, `s` 1, `U` 2, `W` 3,
/// `inp_F` 4).
pub fn rnn_reference(cfg: &RnnConfig, store: &MemStore) -> Vec<f64> {
    let (nt, ns, np) = (cfg.nt as usize, cfg.ns as usize, cfg.np as usize);
    let mut s = vec![0.0f64; ns];
    for i in 0..ns {
        s[i] = store.load(1, &[i as i64]);
    }
    let mut tmp = vec![0.0f64; ns];
    for t in 0..nt {
        for s1 in 0..ns {
            tmp[s1] = 0.0;
            for p in 0..np {
                tmp[s1] +=
                    store.load(2, &[s1 as i64, p as i64]) * store.load(4, &[t as i64, p as i64]);
            }
        }
        // In-place Gauss–Seidel-style sweep, operating directly on `s` so
        // that reads of `s[s3]` observe exactly what the kernel would.
        for s2 in 0..ns {
            s[s2] = tmp[s2];
            for s3 in 0..ns {
                s[s2] += store.load(3, &[s2 as i64, s3 as i64]) * s[s3];
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_ir::run_program;

    #[test]
    fn cnn_reference_matches_interpreter() {
        let cfg = CnnConfig::small();
        let program = cfg.build();
        let mut store = MemStore::patterned(&program);
        let want = cnn_reference(&cfg, &store);
        run_program(&program, &mut store);
        let mut idx = 0;
        for n in 0..cfg.nn {
            for k in 0..cfg.nk {
                for p in 0..cfg.np {
                    for q in 0..cfg.nq {
                        let got = store.load(0, &[n, k, p, q]);
                        assert!((got - want[idx]).abs() < 1e-9);
                        idx += 1;
                    }
                }
            }
        }
    }

    #[test]
    fn pool_reference_matches_interpreter() {
        for op in [PoolOp::Max, PoolOp::Sum] {
            let cfg = PoolConfig::small(op);
            let program = cfg.build();
            let mut store = MemStore::patterned(&program);
            let want = pool_reference(&cfg, &store);
            run_program(&program, &mut store);
            let mut idx = 0;
            for n in 0..cfg.nn {
                for c in 0..cfg.nc {
                    for p in 0..cfg.np {
                        for q in 0..cfg.nq {
                            let got = store.load(0, &[n, c, p, q]);
                            assert!((got - want[idx]).abs() < 1e-9, "{op:?} at {idx}");
                            idx += 1;
                        }
                    }
                }
            }
        }
    }
}
