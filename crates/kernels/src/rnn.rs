//! The PolyBench-NN RNN forward pass.
//!
//! Per timestep the kernel projects the input (`tmp = U · inp_F[t]`, fully
//! parallel over rows) and then updates the state **in place**
//! (`s[s2] (+)= W[s2][s3] · s[s3]` seeded from `tmp`). The in-place state
//! update both reads and writes the state vector across rows, so its
//! outer loop is *not parallelizable* and its inner loop cannot be tiled —
//! this is the "major component that is not parallelizable" responsible for
//! RNN's poor scaling in Figure 6.1 (§6.2).

use prem_ir::{AssignKind, CmpOp, Cond, ElemType, Expr, IdxExpr, Program, ProgramBuilder};

/// RNN layer shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RnnConfig {
    /// Sequence length `NT`.
    pub nt: i64,
    /// State size `NS`.
    pub ns: i64,
    /// Input size `NP`.
    pub np: i64,
}

impl RnnConfig {
    /// LARGE problem size (≈ 25 MB footprint).
    pub fn large() -> Self {
        RnnConfig {
            nt: 7500,
            ns: 650,
            np: 700,
        }
    }

    /// A small size for functional tests.
    pub fn small() -> Self {
        RnnConfig {
            nt: 3,
            ns: 5,
            np: 4,
        }
    }

    /// Total data footprint in bytes (f32).
    pub fn footprint_bytes(&self) -> i64 {
        (self.ns * self.np + self.ns * self.ns + self.nt * self.np + 2 * self.ns) * 4
    }

    /// Builds the kernel as loop IR.
    pub fn build(&self) -> Program {
        let mut b = ProgramBuilder::new("rnn");
        let tmp = b.array("tmp", vec![self.ns], ElemType::F32);
        let s = b.array("s", vec![self.ns], ElemType::F32);
        let u = b.array("U", vec![self.ns, self.np], ElemType::F32);
        let w = b.array("W", vec![self.ns, self.ns], ElemType::F32);
        let inp_f = b.array("inp_F", vec![self.nt, self.np], ElemType::F32);

        let t = b.begin_loop("t", 0, 1, self.nt);

        // Component (s1, p): input projection, parallel over s1.
        let s1 = b.begin_loop("s1", 0, 1, self.ns);
        let p = b.begin_loop("p", 0, 1, self.np);
        b.begin_if(Cond::atom(IdxExpr::var(p), CmpOp::Eq));
        b.stmt(
            tmp,
            vec![IdxExpr::var(s1)],
            AssignKind::Assign,
            Expr::Const(0.0),
        );
        b.end_if();
        b.stmt(
            tmp,
            vec![IdxExpr::var(s1)],
            AssignKind::AddAssign,
            Expr::mul(
                Expr::load(u, vec![IdxExpr::var(s1), IdxExpr::var(p)]),
                Expr::load(inp_f, vec![IdxExpr::var(t), IdxExpr::var(p)]),
            ),
        );
        b.end_loop();
        b.end_loop();

        // Component (s2, s3): in-place recurrent update — NOT parallelizable
        // over s2 because later rows read the state rows earlier iterations
        // already overwrote (a Gauss–Seidel-style sweep).
        let s2 = b.begin_loop("s2", 0, 1, self.ns);
        let s3 = b.begin_loop("s3", 0, 1, self.ns);
        b.begin_if(Cond::atom(IdxExpr::var(s3), CmpOp::Eq));
        b.stmt(
            s,
            vec![IdxExpr::var(s2)],
            AssignKind::Assign,
            Expr::load(tmp, vec![IdxExpr::var(s2)]),
        );
        b.end_if();
        b.stmt(
            s,
            vec![IdxExpr::var(s2)],
            AssignKind::AddAssign,
            Expr::mul(
                Expr::load(w, vec![IdxExpr::var(s2), IdxExpr::var(s3)]),
                Expr::load(s, vec![IdxExpr::var(s3)]),
            ),
        );
        b.end_loop();
        b.end_loop();

        b.end_loop();
        let _ = t;
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_core::LoopTree;

    #[test]
    fn state_update_is_sequential() {
        let cfg = RnnConfig {
            nt: 10,
            ns: 64,
            np: 48,
        };
        let tree = LoopTree::build(&cfg.build()).unwrap();
        let t = &tree.roots[0];
        assert_eq!(t.children.len(), 2);
        let proj = &t.children[0];
        assert!(proj.parallel, "input projection is parallel over s1");
        let upd = &t.children[1];
        assert!(!upd.parallel, "in-place update must not be parallel");
        assert!(upd.tilable, "but it can still be tiled");
        // Its inner loop cannot be tiled (negative distances) → folded.
        assert!(!upd.children[0].tilable, "s3 must fold into the leaf");
    }

    #[test]
    fn executes_functionally() {
        use prem_ir::{run_program, DataStore, MemStore};
        let cfg = RnnConfig::small();
        let p = cfg.build();
        let mut store = MemStore::patterned(&p);
        let want = crate::reference::rnn_reference(&cfg, &store);
        run_program(&p, &mut store);
        for i in 0..cfg.ns {
            let got = store.load(1, &[i]);
            assert!(
                (got - want[i as usize]).abs() < 1e-9,
                "s[{i}] = {got}, want {}",
                want[i as usize]
            );
        }
    }
}
