//! Chrome Trace Format (JSON Array Format) builder.
//!
//! Produces the `{"traceEvents": [...]}` document that Perfetto
//! (<https://ui.perfetto.dev>) and `chrome://tracing` ingest. Only the
//! subset this project needs is implemented: complete duration events
//! (`ph: "X"`) and process/thread-name metadata (`ph: "M"`). Timestamps are
//! microseconds per the format; the simulator's nanosecond times survive as
//! fractional microseconds.

use crate::json::Json;

/// One complete duration event (`ph: "X"`).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Event name (shown on the slice).
    pub name: String,
    /// Category (comma-separated tags; filterable in the UI).
    pub cat: String,
    /// Process id — one process per logical machine/pipeline.
    pub pid: u64,
    /// Thread id — one track per core, plus dedicated tracks (e.g. DMA).
    pub tid: u64,
    /// Start timestamp in microseconds.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Extra `args` shown when the slice is selected.
    pub args: Vec<(String, Json)>,
}

/// A Chrome-trace document under construction.
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    events: Vec<Json>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events recorded so far (metadata included).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Names process `pid` in the UI.
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.metadata("process_name", pid, None, name);
    }

    /// Names thread `tid` of process `pid` in the UI.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.metadata("thread_name", pid, Some(tid), name);
    }

    fn metadata(&mut self, kind: &str, pid: u64, tid: Option<u64>, name: &str) {
        let mut pairs = vec![
            ("name".to_string(), Json::from(kind)),
            ("ph".to_string(), Json::from("M")),
            ("pid".to_string(), Json::from(pid as i64)),
        ];
        if let Some(tid) = tid {
            pairs.push(("tid".to_string(), Json::from(tid as i64)));
        }
        pairs.push(("args".to_string(), Json::obj([("name", name)])));
        self.events.push(Json::Obj(pairs));
    }

    /// Records a complete duration event.
    pub fn span(&mut self, span: TraceSpan) {
        let mut pairs = vec![
            ("name".to_string(), Json::from(span.name)),
            ("cat".to_string(), Json::from(span.cat)),
            ("ph".to_string(), Json::from("X")),
            ("ts".to_string(), Json::from(span.ts_us)),
            ("dur".to_string(), Json::from(span.dur_us)),
            ("pid".to_string(), Json::from(span.pid as i64)),
            ("tid".to_string(), Json::from(span.tid as i64)),
        ];
        if !span.args.is_empty() {
            pairs.push(("args".to_string(), Json::Obj(span.args)));
        }
        self.events.push(Json::Obj(pairs));
    }

    /// The complete document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("traceEvents", Json::Arr(self.events.clone())),
            ("displayTimeUnit", Json::from("ns")),
        ])
    }

    /// Pretty-printed document text.
    pub fn render(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Writes the document to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChromeTrace {
        let mut t = ChromeTrace::new();
        t.process_name(0, "PREM machine");
        t.thread_name(0, 0, "core 0");
        t.thread_name(0, 9, "DMA");
        t.span(TraceSpan {
            name: "exec 1".into(),
            cat: "exec".into(),
            pid: 0,
            tid: 0,
            ts_us: 0.25,
            dur_us: 1.5,
            args: vec![("segment".into(), Json::from(1i64))],
        });
        t
    }

    #[test]
    fn document_has_valid_trace_events() {
        let doc = Json::parse(&sample().render()).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 4);
        for e in events {
            assert!(e.get("ph").and_then(Json::as_str).is_some());
            assert!(e.get("pid").and_then(Json::as_f64).is_some());
        }
        let x = &events[3];
        assert_eq!(x.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(x.get("ts").and_then(Json::as_f64), Some(0.25));
        assert_eq!(x.get("dur").and_then(Json::as_f64), Some(1.5));
        assert_eq!(x.get("tid").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn metadata_events_name_threads() {
        let doc = sample().to_json();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let m = &events[2];
        assert_eq!(m.get("ph").and_then(Json::as_str), Some("M"));
        assert_eq!(m.get("name").and_then(Json::as_str), Some("thread_name"));
        assert_eq!(
            m.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str),
            Some("DMA")
        );
    }
}
