//! Centralized environment-variable override parsing.
//!
//! Every `PREM_*` toggle in the workspace goes through these helpers, so an
//! invalid value is rejected *loudly* — one warning on stderr naming the
//! variable, the rejected value and the documented default — instead of each
//! call site silently treating garbage as "unset" (or worse, as "set": the
//! old bench-side parsing of `PREM_ADAPTIVE` treated `off` as *enabled*
//! because the only recognized spelling of false was `0`).
//!
//! Accepted boolean spellings (case-insensitive, surrounding whitespace
//! ignored): `1`/`0`, `true`/`false`, `on`/`off`, `yes`/`no`. Integer
//! variables accept a plain non-negative decimal.

/// Parses a boolean override value. `None` when the spelling is not one of
/// the accepted forms.
pub fn parse_flag(value: &str) -> Option<bool> {
    match value.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Some(true),
        "0" | "false" | "off" | "no" => Some(false),
        _ => None,
    }
}

/// Reads the boolean environment override `name`, falling back to `default`
/// when unset. An invalid value warns on stderr and falls back to `default`
/// — it is never silently interpreted.
pub fn env_flag(name: &str, default: bool) -> bool {
    match std::env::var(name) {
        Err(std::env::VarError::NotPresent) => default,
        Err(std::env::VarError::NotUnicode(raw)) => {
            eprintln!(
                "warning: {name}={raw:?} is not valid unicode; \
                 using the default ({default})"
            );
            default
        }
        Ok(v) => match parse_flag(&v) {
            Some(b) => b,
            None => {
                eprintln!(
                    "warning: {name}={v:?} is not a boolean \
                     (accepted: 1/0, true/false, on/off, yes/no); \
                     using the default ({default})"
                );
                default
            }
        },
    }
}

/// Reads the non-negative integer environment override `name`, falling back
/// to `default` when unset. An invalid value warns on stderr and falls back
/// to `default`.
pub fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Err(std::env::VarError::NotPresent) => default,
        Err(std::env::VarError::NotUnicode(raw)) => {
            eprintln!(
                "warning: {name}={raw:?} is not valid unicode; \
                 using the default ({default})"
            );
            default
        }
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!(
                    "warning: {name}={v:?} is not a non-negative integer; \
                     using the default ({default})"
                );
                default
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test uses a variable name unique to itself: tests run on
    // concurrent threads and the process environment is shared.

    #[test]
    fn flag_spellings() {
        for v in ["1", "true", "TRUE", " on ", "Yes"] {
            assert_eq!(parse_flag(v), Some(true), "{v:?}");
        }
        for v in ["0", "false", "OFF", "no", " No"] {
            assert_eq!(parse_flag(v), Some(false), "{v:?}");
        }
        for v in ["", "2", "enabled", "o n", "tru"] {
            assert_eq!(parse_flag(v), None, "{v:?}");
        }
    }

    #[test]
    fn env_flag_unset_uses_default() {
        assert!(env_flag("PREM_TEST_FLAG_UNSET_A", true));
        assert!(!env_flag("PREM_TEST_FLAG_UNSET_B", false));
    }

    #[test]
    fn env_flag_reads_valid_values() {
        std::env::set_var("PREM_TEST_FLAG_VALID", "off");
        assert!(!env_flag("PREM_TEST_FLAG_VALID", true));
        std::env::set_var("PREM_TEST_FLAG_VALID", "1");
        assert!(env_flag("PREM_TEST_FLAG_VALID", false));
    }

    #[test]
    fn env_flag_rejects_garbage_to_default() {
        std::env::set_var("PREM_TEST_FLAG_GARBAGE", "maybe");
        assert!(env_flag("PREM_TEST_FLAG_GARBAGE", true));
        assert!(!env_flag("PREM_TEST_FLAG_GARBAGE", false));
    }

    #[test]
    fn env_u64_parses_and_rejects() {
        std::env::set_var("PREM_TEST_U64_VALID", " 480 ");
        assert_eq!(env_u64("PREM_TEST_U64_VALID", 240), 480);
        std::env::set_var("PREM_TEST_U64_BAD", "4m");
        assert_eq!(env_u64("PREM_TEST_U64_BAD", 240), 240);
        assert_eq!(env_u64("PREM_TEST_U64_UNSET", 7), 7);
    }
}
