//! Minimal ordered JSON: value model, compact/pretty writer, strict parser.
//!
//! Object member order is preserved (insertion order on build, document
//! order on parse) so reports and traces diff cleanly across runs. Numbers
//! are `f64`; non-finite values serialize as `null` (JSON has no `Infinity`),
//! which is exactly what an infeasible (`+∞`) makespan should become in a
//! report.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers included; printed without a fraction when exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion/document order. Duplicate keys are kept
    /// verbatim by the parser; [`Json::get`] returns the first match.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>, V: Into<Json>>(pairs: impl IntoIterator<Item = (K, V)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// First value under `key` if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Compact serialization.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with two-space indentation and a trailing
    /// newline — the format of everything written under `results/`.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => out.push_str(&fmt_number(*v)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed, nothing
    /// else after the value).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

/// Formats a number the way JSON requires: integers without a fraction,
/// non-finite values as `null`.
fn fmt_number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 9.007_199_254_740_992e15 {
        // Exactly representable integer: print without ".0" so eval counts
        // and ids read naturally.
        return format!("{}", v as i64);
    }
    let s = format!("{v}");
    debug_assert!(s.parse::<f64>().is_ok());
    s
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse error with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container (array/object) nesting the parser accepts. The parser
/// is recursive, so without a cap a short `[[[[…` document overflows the
/// stack — unacceptable for a value that crosses a network boundary.
const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(self.err("arrays/objects nest deeper than the supported 128 levels"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the sequence
                    // is valid; copy its remaining bytes through.
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    self.pos = start + len;
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad hex in \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Json::obj([
            ("name", Json::from("cnn")),
            ("makespan_ns", Json::from(1.25e9)),
            ("evals", Json::from(1234usize)),
            ("flags", Json::from(vec![true, false])),
            (
                "nested",
                Json::obj([("k", Json::from(vec![32i64, 14, 28]))]),
            ),
            ("nothing", Json::Null),
        ]);
        for text in [v.to_compact(), v.to_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::from(42i64).to_compact(), "42");
        assert_eq!(Json::from(-7i64).to_compact(), "-7");
        assert_eq!(Json::from(0.5).to_compact(), "0.5");
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a\"b\\c\nd\te\u{1}f — π 🚀";
        let text = Json::from(s).to_compact();
        assert_eq!(Json::parse(&text).unwrap(), Json::from(s));
    }

    #[test]
    fn parses_standard_escapes_and_surrogates() {
        let v = Json::parse(r#""\u00e9\ud83d\ude80\/""#).unwrap();
        assert_eq!(v.as_str(), Some("é🚀/"));
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::parse(r#"{"z":1,"a":2,"z":3}"#).unwrap();
        match &v {
            Json::Obj(pairs) => {
                assert_eq!(pairs[0].0, "z");
                assert_eq!(pairs[1].0, "a");
            }
            _ => panic!(),
        }
        assert_eq!(v.get("z").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\\x\"", "nan"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        // Well within the cap: parses.
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&ok).is_ok());
        // Past the cap (including truncated documents): a structured error,
        // not a stack overflow.
        for doc in ["[".repeat(10_000), "[".repeat(200) + &"]".repeat(200)] {
            let e = Json::parse(&doc).unwrap_err();
            assert!(e.msg.contains("nest deeper"), "{e}");
        }
    }

    #[test]
    fn scientific_numbers_parse() {
        assert_eq!(
            Json::parse("[1e3,-2.5E-2,0.0]").unwrap(),
            Json::from(vec![1000.0, -0.025, 0.0])
        );
    }
}
