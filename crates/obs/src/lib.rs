//! Observability layer for the PREM compiler reproduction.
//!
//! The hermetic-build rule of this repository (the tier-1 verify must pass
//! with the crates.io index unreachable) means no `serde`, no `serde_json`,
//! no tracing framework: everything here is hand-rolled on `std` alone.
//!
//! Four pieces:
//!
//! * [`json`] — a small ordered JSON value model with a writer and a strict
//!   parser, the substrate for every other module;
//! * [`chrome`] — a builder for Chrome Trace Format JSON (the
//!   `traceEvents` array Perfetto and `chrome://tracing` ingest), used to
//!   export simulated PREM timelines and compile-pipeline phase timings;
//! * [`telemetry`] — structured optimizer search telemetry: per-assignment
//!   eval counts, memo-cache hit rates and per-sweep best-makespan
//!   convergence curves;
//! * [`report`] — machine-readable run reports the bench binaries write
//!   under `results/`, plus [`phase::PhaseTimings`] for wall-clock per
//!   compile-pipeline phase;
//! * [`env`] — centralized parsing of the `PREM_*` environment overrides,
//!   warning loudly on invalid values instead of silently ignoring them.

#![warn(missing_docs)]

pub mod chrome;
pub mod env;
pub mod json;
pub mod phase;
pub mod report;
pub mod telemetry;

pub use chrome::{ChromeTrace, TraceSpan};
pub use env::{env_flag, env_u64};
pub use json::{Json, JsonError};
pub use phase::{PhaseTimings, Stopwatch};
pub use report::RunReport;
pub use telemetry::{AssignmentTelemetry, SearchTelemetry};
