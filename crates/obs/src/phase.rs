//! Wall-clock accounting per compile-pipeline phase.

use crate::chrome::{ChromeTrace, TraceSpan};
use crate::json::Json;
use std::time::Instant;

/// Ordered, accumulating map from phase name to wall-clock seconds.
///
/// The compile pipeline interleaves its phases (component extraction and
/// tiling search alternate per component), so each phase accumulates the
/// total time spent in it rather than a single span.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseTimings {
    entries: Vec<(String, f64)>,
}

impl PhaseTimings {
    /// An empty accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `seconds` to `phase` (creating it at the end of the order).
    pub fn add(&mut self, phase: &str, seconds: f64) {
        match self.entries.iter_mut().find(|(n, _)| n == phase) {
            Some((_, s)) => *s += seconds,
            None => self.entries.push((phase.to_string(), seconds)),
        }
    }

    /// Seconds accumulated for `phase`, if any.
    pub fn get(&self, phase: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(n, _)| n == phase)
            .map(|(_, s)| *s)
    }

    /// Phases in insertion order.
    pub fn phases(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(n, s)| (n.as_str(), *s))
    }

    /// Sum over all phases.
    pub fn total_s(&self) -> f64 {
        self.entries.iter().map(|(_, s)| s).sum()
    }

    /// Folds another accounting into this one.
    pub fn absorb(&mut self, other: &PhaseTimings) {
        for (n, s) in other.phases() {
            self.add(n, s);
        }
    }

    /// JSON object `{phase: seconds, ...}` in insertion order.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.entries
                .iter()
                .map(|(n, s)| (n.clone(), Json::from(*s)))
                .collect(),
        )
    }

    /// Renders the phases as consecutive spans on one Chrome-trace track
    /// (`tid`), starting at `ts_us`. Returns the end timestamp.
    pub fn to_chrome(&self, trace: &mut ChromeTrace, pid: u64, tid: u64, ts_us: f64) -> f64 {
        let mut t = ts_us;
        for (name, s) in self.phases() {
            let dur_us = s * 1e6;
            trace.span(TraceSpan {
                name: name.to_string(),
                cat: "pipeline".into(),
                pid,
                tid,
                ts_us: t,
                dur_us,
                args: Vec::new(),
            });
            t += dur_us;
        }
        t
    }

    /// Like [`PhaseTimings::to_chrome`], but also names the process and the
    /// track (thread) so the phases stay identifiable when merged with other
    /// processes — e.g. a simulated PREM timeline — in one trace document.
    /// Returns the end timestamp.
    pub fn to_chrome_track(
        &self,
        trace: &mut ChromeTrace,
        pid: u64,
        tid: u64,
        ts_us: f64,
        process: &str,
        track: &str,
    ) -> f64 {
        trace.process_name(pid, process);
        trace.thread_name(pid, tid, track);
        self.to_chrome(trace, pid, tid, ts_us)
    }
}

/// A restartable stopwatch for feeding [`PhaseTimings`].
#[derive(Debug)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Seconds since start (or the last [`Stopwatch::lap`]), restarting.
    pub fn lap(&mut self) -> f64 {
        let now = Instant::now();
        let s = now.duration_since(self.0).as_secs_f64();
        self.0 = now;
        s
    }

    /// Seconds since start without restarting.
    pub fn elapsed_s(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_in_order() {
        let mut t = PhaseTimings::new();
        t.add("analysis", 0.5);
        t.add("search", 1.0);
        t.add("analysis", 0.25);
        assert_eq!(t.get("analysis"), Some(0.75));
        assert_eq!(
            t.phases().map(|(n, _)| n.to_string()).collect::<Vec<_>>(),
            vec!["analysis", "search"]
        );
        assert!((t.total_s() - 1.75).abs() < 1e-12);

        let mut u = PhaseTimings::new();
        u.add("search", 1.0);
        u.absorb(&t);
        assert_eq!(u.get("search"), Some(2.0));
    }

    #[test]
    fn chrome_spans_are_consecutive() {
        let mut t = PhaseTimings::new();
        t.add("a", 1e-6);
        t.add("b", 2e-6);
        let mut trace = ChromeTrace::new();
        let end = t.to_chrome(&mut trace, 1, 0, 10.0);
        assert!((end - 13.0).abs() < 1e-9);
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn stopwatch_laps_are_positive() {
        let mut w = Stopwatch::start();
        assert!(w.lap() >= 0.0);
        assert!(w.elapsed_s() >= 0.0);
    }
}
