//! Machine-readable run reports for the bench binaries.
//!
//! Every `crates/bench/src/bin/*` binary writes one of these under
//! `results/<bench>.json` next to its CSV, so the evaluation trajectory can
//! be tracked by tooling instead of by scraping stdout tables.

use crate::json::Json;
use std::path::{Path, PathBuf};

/// Schema identifier stamped into every report.
pub const SCHEMA: &str = "prem-run-report/v1";

/// An ordered collection of report fields, serialized as one JSON object.
///
/// The constructor stamps `schema` and `bench`; everything else is appended
/// with [`RunReport::set`] in whatever order the binary finds natural.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    fields: Vec<(String, Json)>,
}

impl RunReport {
    /// A fresh report for bench binary `bench`.
    pub fn new(bench: &str) -> Self {
        RunReport {
            fields: vec![
                ("schema".to_string(), Json::from(SCHEMA)),
                ("bench".to_string(), Json::from(bench)),
            ],
        }
    }

    /// Sets `key` (replacing an earlier value, keeping its position).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        let value = value.into();
        match self.fields.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => self.fields.push((key.to_string(), value)),
        }
        self
    }

    /// The bench name the report was created with.
    pub fn bench(&self) -> &str {
        self.fields[1].1.as_str().unwrap_or("")
    }

    /// The whole report as JSON.
    pub fn to_json(&self) -> Json {
        Json::Obj(self.fields.clone())
    }

    /// Writes `<dir>/<bench>.json` (pretty-printed), creating `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_dir(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.bench()));
        std::fs::write(&path, self.to_json().to_pretty())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_stamps_schema_and_bench() {
        let mut r = RunReport::new("tab6_2_6_3");
        r.set("makespan_ns", 1.5e9).set("evals", 123usize);
        let j = r.to_json();
        assert_eq!(j.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(j.get("bench").and_then(Json::as_str), Some("tab6_2_6_3"));
        assert_eq!(j.get("evals").and_then(Json::as_f64), Some(123.0));
    }

    #[test]
    fn set_replaces_in_place() {
        let mut r = RunReport::new("x");
        r.set("a", 1i64).set("b", 2i64).set("a", 3i64);
        match r.to_json() {
            Json::Obj(pairs) => {
                assert_eq!(pairs[2], ("a".to_string(), Json::from(3i64)));
                assert_eq!(pairs.len(), 4);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn writes_parseable_file() {
        let dir = std::env::temp_dir().join("prem_obs_report_test");
        let mut r = RunReport::new("smoke");
        r.set("wall_s", 0.5);
        let path = r.write_dir(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let j = Json::parse(&text).unwrap();
        assert_eq!(j.get("bench").and_then(Json::as_str), Some("smoke"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
