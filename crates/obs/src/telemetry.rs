//! Structured optimizer search telemetry.
//!
//! The component optimizer (Algorithm 1) explores one coordinate-descent
//! search per non-dominated thread-group assignment; each search memoizes
//! makespan evaluations. The types here record, per assignment: how many
//! schedules were actually built (`evals`), how many lookups the memo cache
//! absorbed (`cache_hits`) and the best-so-far makespan after each
//! coordinate sweep (`sweep_best_ns`, a convergence curve that is monotone
//! non-increasing by construction).

use crate::json::Json;

/// Telemetry of the coordinate descent for one thread-group assignment.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AssignmentTelemetry {
    /// The thread-group assignment `R` (threads per level, outermost first).
    pub r: Vec<i64>,
    /// Uncached makespan evaluations (schedule constructions).
    pub evals: usize,
    /// Memoized lookups answered from the cache.
    pub cache_hits: usize,
    /// Best makespan seen so far after each coordinate sweep, in ns
    /// (cumulative minimum across the descent's starts and sweeps).
    pub sweep_best_ns: Vec<f64>,
    /// Final best makespan of this assignment in ns (`+∞` if infeasible).
    pub best_makespan_ns: f64,
    /// Coordinate sweeps actually executed (across the descent's starts) —
    /// fewer than the `max_iter` ceiling when convergence-based early
    /// stopping fired.
    pub sweeps_run: usize,
    /// Relative makespan improvement of each executed sweep (adaptive runs
    /// only; empty in fixed-constant mode).
    pub sweep_rel_delta: Vec<f64>,
}

impl AssignmentTelemetry {
    /// JSON object for reports.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("r", Json::from(self.r.clone())),
            ("evals", Json::from(self.evals)),
            ("cache_hits", Json::from(self.cache_hits)),
            ("sweep_best_ns", Json::from(self.sweep_best_ns.clone())),
            ("best_makespan_ns", Json::from(self.best_makespan_ns)),
            ("sweeps_run", Json::from(self.sweeps_run)),
            ("sweep_rel_delta", Json::from(self.sweep_rel_delta.clone())),
        ])
    }
}

/// Aggregated telemetry of one component optimization.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SearchTelemetry {
    /// Per-assignment records, in deterministic enumeration order.
    pub assignments: Vec<AssignmentTelemetry>,
    /// Total uncached evaluations across assignments.
    pub evals: usize,
    /// Total cache hits across assignments.
    pub cache_hits: usize,
    /// Best makespan across assignments in ns.
    pub best_makespan_ns: f64,
    /// Wall-clock seconds spent searching (descent over all assignments).
    pub search_s: f64,
    /// Wall-clock seconds spent building/evaluating the final schedule.
    pub schedule_build_s: f64,
    /// Evaluations answered by the fast (analysis + fold) cost tier without
    /// materializing a schedule.
    pub fast_evals: usize,
    /// Full materializing `build_schedule` constructions (the winner, plus
    /// any strategy that bypasses the fast tier).
    pub full_builds: usize,
    /// Candidates skipped by dominance pruning (provably infeasible, never
    /// evaluated).
    pub pruned: usize,
    /// Structure analyses served by the shared precompute cache instead of
    /// being rebuilt.
    pub analysis_reuses: usize,
    /// Structure analyses produced by the single-coordinate incremental
    /// rebuild instead of a from-scratch build.
    pub incremental_rebuilds: usize,
    /// Shared-cache entries evicted to admit this search's insertions.
    pub evictions: usize,
    /// Coordinate sweeps executed across all assignments (each bounded by
    /// the `max_iter` ceiling; smaller when early stopping converged).
    pub sweeps_run: usize,
    /// Candidates skipped by the adaptive curvature-sized windows (never
    /// evaluated; 0 in fixed-constant mode).
    pub candidates_pruned_adaptive: usize,
    /// Shared-cache insertions declined by the frequency-based admission
    /// filter (the candidate was colder than the clock victim).
    pub admission_rejects: usize,
    /// Coordinate scans whose incremental delta context declined
    /// construction, falling back to full builds. Nonzero values flag an
    /// incremental-coverage regression — the real kernel suite should
    /// report 0.
    pub delta_declines: usize,
    /// Single-coordinate scans served by one batched landscape rebuild
    /// instead of per-candidate rebuilds.
    pub batched_scans: usize,
    /// Batched-scan candidates answered by the monotone segment-cap
    /// shortcut without walking any tiles.
    pub scan_truncations: usize,
    /// Batched scans whose rebuild walked the frozen SoA columns with at
    /// least one multi-candidate lane group (0 when `PREM_SOA=0`).
    pub soa_scans: usize,
    /// Chunked batch folds that interleaved ≥ 2 landscape points through the
    /// lane-parallel makespan recurrence.
    pub simd_batches: usize,
    /// Scans (or individual oversized candidates) that requested SoA but
    /// fell back to the scalar replay — rank-reduced contexts, depth past
    /// the lane cap, or j-term columns past the arena budget.
    pub soa_fallbacks: usize,
    /// Intra-component dependences classified as reduction chains
    /// (associative-commutative accumulator updates). Counted whether or not
    /// the reduction pass is enabled — the detector always runs.
    pub reduction_deps: usize,
    /// Accumulator arrays actually privatized for parallel execution
    /// (nonzero only when the optimizer runs with reductions enabled).
    pub privatized_accumulators: usize,
}

impl SearchTelemetry {
    /// Aggregates per-assignment records (totals and best makespan).
    pub fn from_assignments(assignments: Vec<AssignmentTelemetry>) -> Self {
        let evals = assignments.iter().map(|a| a.evals).sum();
        let cache_hits = assignments.iter().map(|a| a.cache_hits).sum();
        let sweeps_run = assignments.iter().map(|a| a.sweeps_run).sum();
        let best_makespan_ns = assignments
            .iter()
            .map(|a| a.best_makespan_ns)
            .fold(f64::INFINITY, f64::min);
        SearchTelemetry {
            assignments,
            evals,
            cache_hits,
            best_makespan_ns,
            search_s: 0.0,
            schedule_build_s: 0.0,
            fast_evals: 0,
            full_builds: 0,
            pruned: 0,
            analysis_reuses: 0,
            incremental_rebuilds: 0,
            evictions: 0,
            sweeps_run,
            candidates_pruned_adaptive: 0,
            admission_rejects: 0,
            delta_declines: 0,
            batched_scans: 0,
            scan_truncations: 0,
            soa_scans: 0,
            simd_batches: 0,
            soa_fallbacks: 0,
            reduction_deps: 0,
            privatized_accumulators: 0,
        }
    }

    /// Telemetry of a search that evaluated exactly one candidate (the
    /// greedy baseline and other single-shot strategies). The single
    /// evaluation materializes a full schedule (`full_builds = 1`).
    pub fn single(r: Vec<i64>, makespan_ns: f64) -> Self {
        let mut t = SearchTelemetry::from_assignments(vec![AssignmentTelemetry {
            r,
            evals: 1,
            cache_hits: 0,
            sweep_best_ns: vec![makespan_ns],
            best_makespan_ns: makespan_ns,
            sweeps_run: 0,
            sweep_rel_delta: Vec::new(),
        }]);
        t.full_builds = 1;
        t
    }

    /// Total makespan lookups: uncached evaluations plus cache hits.
    pub fn lookups(&self) -> usize {
        self.evals + self.cache_hits
    }

    /// Fraction of lookups answered by the memo cache (0 when none).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.lookups() as f64
        }
    }

    /// Global convergence curve: best makespan known after each sweep index,
    /// taking every assignment's descent into account. Monotone
    /// non-increasing by construction.
    pub fn convergence(&self) -> Vec<f64> {
        let len = self
            .assignments
            .iter()
            .map(|a| a.sweep_best_ns.len())
            .max()
            .unwrap_or(0);
        let mut curve = Vec::with_capacity(len);
        let mut best = f64::INFINITY;
        for s in 0..len {
            for a in &self.assignments {
                // An assignment whose descent already finished contributes
                // its final value.
                let v = match a.sweep_best_ns.get(s) {
                    Some(&v) => v,
                    None => a.best_makespan_ns,
                };
                best = best.min(v);
            }
            curve.push(best);
        }
        curve
    }

    /// Folds another component's telemetry into an application-level total.
    /// Per-assignment detail is not merged — only counters and times.
    pub fn absorb(&mut self, other: &SearchTelemetry) {
        self.evals += other.evals;
        self.cache_hits += other.cache_hits;
        self.search_s += other.search_s;
        self.schedule_build_s += other.schedule_build_s;
        self.fast_evals += other.fast_evals;
        self.full_builds += other.full_builds;
        self.pruned += other.pruned;
        self.analysis_reuses += other.analysis_reuses;
        self.incremental_rebuilds += other.incremental_rebuilds;
        self.evictions += other.evictions;
        self.sweeps_run += other.sweeps_run;
        self.candidates_pruned_adaptive += other.candidates_pruned_adaptive;
        self.admission_rejects += other.admission_rejects;
        self.delta_declines += other.delta_declines;
        self.batched_scans += other.batched_scans;
        self.scan_truncations += other.scan_truncations;
        self.soa_scans += other.soa_scans;
        self.simd_batches += other.simd_batches;
        self.soa_fallbacks += other.soa_fallbacks;
        self.reduction_deps += other.reduction_deps;
        self.privatized_accumulators += other.privatized_accumulators;
        self.best_makespan_ns = self.best_makespan_ns.min(other.best_makespan_ns);
    }

    /// JSON object for reports. `detail` includes the per-assignment records.
    pub fn to_json(&self, detail: bool) -> Json {
        let mut pairs = vec![
            ("evals".to_string(), Json::from(self.evals)),
            ("cache_hits".to_string(), Json::from(self.cache_hits)),
            (
                "cache_hit_rate".to_string(),
                Json::from(self.cache_hit_rate()),
            ),
            (
                "best_makespan_ns".to_string(),
                Json::from(self.best_makespan_ns),
            ),
            ("search_s".to_string(), Json::from(self.search_s)),
            (
                "schedule_build_s".to_string(),
                Json::from(self.schedule_build_s),
            ),
            ("fast_evals".to_string(), Json::from(self.fast_evals)),
            ("full_builds".to_string(), Json::from(self.full_builds)),
            ("pruned".to_string(), Json::from(self.pruned)),
            (
                "analysis_reuses".to_string(),
                Json::from(self.analysis_reuses),
            ),
            (
                "incremental_rebuilds".to_string(),
                Json::from(self.incremental_rebuilds),
            ),
            ("evictions".to_string(), Json::from(self.evictions)),
            ("sweeps_run".to_string(), Json::from(self.sweeps_run)),
            (
                "candidates_pruned_adaptive".to_string(),
                Json::from(self.candidates_pruned_adaptive),
            ),
            (
                "admission_rejects".to_string(),
                Json::from(self.admission_rejects),
            ),
            (
                "delta_declines".to_string(),
                Json::from(self.delta_declines),
            ),
            ("batched_scans".to_string(), Json::from(self.batched_scans)),
            (
                "scan_truncations".to_string(),
                Json::from(self.scan_truncations),
            ),
            ("soa_scans".to_string(), Json::from(self.soa_scans)),
            ("simd_batches".to_string(), Json::from(self.simd_batches)),
            ("soa_fallbacks".to_string(), Json::from(self.soa_fallbacks)),
            (
                "reduction_deps".to_string(),
                Json::from(self.reduction_deps),
            ),
            (
                "privatized_accumulators".to_string(),
                Json::from(self.privatized_accumulators),
            ),
            ("convergence_ns".to_string(), Json::from(self.convergence())),
        ];
        if detail {
            pairs.push((
                "assignments".to_string(),
                Json::Arr(self.assignments.iter().map(|a| a.to_json()).collect()),
            ));
        }
        Json::Obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SearchTelemetry {
        SearchTelemetry::from_assignments(vec![
            AssignmentTelemetry {
                r: vec![8, 1],
                evals: 10,
                cache_hits: 5,
                sweep_best_ns: vec![100.0, 80.0, 80.0],
                best_makespan_ns: 80.0,
                sweeps_run: 3,
                sweep_rel_delta: vec![0.2, 0.0, 0.0],
            },
            AssignmentTelemetry {
                r: vec![4, 2],
                evals: 7,
                cache_hits: 3,
                sweep_best_ns: vec![90.0, 70.0],
                best_makespan_ns: 70.0,
                sweeps_run: 2,
                sweep_rel_delta: vec![0.25, 0.0],
            },
        ])
    }

    #[test]
    fn totals_sum_over_assignments() {
        let t = sample();
        assert_eq!(t.evals, 17);
        assert_eq!(t.cache_hits, 8);
        assert_eq!(t.lookups(), 25);
        assert!((t.cache_hit_rate() - 8.0 / 25.0).abs() < 1e-12);
        assert_eq!(t.best_makespan_ns, 70.0);
        assert_eq!(t.sweeps_run, 5);
    }

    #[test]
    fn convergence_is_monotone_and_covers_short_assignments() {
        let t = sample();
        let c = t.convergence();
        assert_eq!(c, vec![90.0, 70.0, 70.0]);
        assert!(c.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn single_shot_telemetry() {
        let t = SearchTelemetry::single(vec![8], 42.0);
        assert_eq!(t.evals, 1);
        assert_eq!(t.cache_hit_rate(), 0.0);
        assert_eq!(t.convergence(), vec![42.0]);
    }

    #[test]
    fn absorb_accumulates_counters() {
        let mut t = sample();
        t.fast_evals = 15;
        t.pruned = 4;
        t.analysis_reuses = 2;
        t.incremental_rebuilds = 6;
        t.evictions = 1;
        t.candidates_pruned_adaptive = 9;
        t.admission_rejects = 3;
        t.delta_declines = 2;
        t.batched_scans = 11;
        t.scan_truncations = 4;
        t.soa_scans = 7;
        t.simd_batches = 5;
        t.soa_fallbacks = 1;
        t.reduction_deps = 2;
        t.privatized_accumulators = 1;
        t.absorb(&SearchTelemetry::single(vec![1], 60.0));
        assert_eq!(t.evals, 18);
        assert_eq!(t.best_makespan_ns, 60.0);
        // single() materializes its one candidate.
        assert_eq!(t.full_builds, 1);
        assert_eq!(t.fast_evals, 15);
        assert_eq!(t.pruned, 4);
        assert_eq!(t.analysis_reuses, 2);
        assert_eq!(t.incremental_rebuilds, 6);
        assert_eq!(t.evictions, 1);
        // single() runs no sweeps and never prunes or rejects.
        assert_eq!(t.sweeps_run, 5);
        assert_eq!(t.candidates_pruned_adaptive, 9);
        assert_eq!(t.admission_rejects, 3);
        assert_eq!(t.delta_declines, 2);
        assert_eq!(t.batched_scans, 11);
        assert_eq!(t.scan_truncations, 4);
        assert_eq!(t.soa_scans, 7);
        assert_eq!(t.simd_batches, 5);
        assert_eq!(t.soa_fallbacks, 1);
        assert_eq!(t.reduction_deps, 2);
        assert_eq!(t.privatized_accumulators, 1);
    }

    #[test]
    fn json_has_expected_keys() {
        let j = sample().to_json(true);
        for key in [
            "evals",
            "cache_hits",
            "cache_hit_rate",
            "best_makespan_ns",
            "fast_evals",
            "full_builds",
            "pruned",
            "analysis_reuses",
            "incremental_rebuilds",
            "evictions",
            "sweeps_run",
            "candidates_pruned_adaptive",
            "admission_rejects",
            "delta_declines",
            "batched_scans",
            "scan_truncations",
            "soa_scans",
            "simd_batches",
            "soa_fallbacks",
            "reduction_deps",
            "privatized_accumulators",
            "convergence_ns",
            "assignments",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        assert_eq!(
            j.get("assignments")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );
    }
}
