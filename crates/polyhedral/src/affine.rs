//! Affine expressions over an ordered list of loop counters.
//!
//! Every loop in the PREM compiler is normalized to a zero-based counter
//! `0..N`; loop `begin` and `stride` are folded into the access expressions at
//! IR-construction time. An [`AffExpr`] is therefore a linear combination of
//! counters plus a constant, with the coefficient vector positionally aligned
//! to the enclosing-loop list of the statement it belongs to.

use crate::interval::Interval;
use std::fmt;

/// An affine expression `c₀ + Σ cᵢ·vᵢ` over positional loop counters.
///
/// # Examples
///
/// ```
/// use prem_polyhedral::{AffExpr, Interval};
///
/// // 2*i + j - 1 over loops (i, j)
/// let e = AffExpr::from_parts(vec![2, 1], -1);
/// assert_eq!(e.eval(&[3, 4]), 9);
/// let b = e.bounds(&[Interval::new(0, 9), Interval::new(0, 4)]);
/// assert_eq!(b, Interval::new(-1, 21));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AffExpr {
    coeffs: Vec<i64>,
    constant: i64,
}

impl AffExpr {
    /// A constant expression over `ndims` counters.
    pub fn constant(ndims: usize, value: i64) -> Self {
        AffExpr {
            coeffs: vec![0; ndims],
            constant: value,
        }
    }

    /// The zero expression over `ndims` counters.
    pub fn zero(ndims: usize) -> Self {
        Self::constant(ndims, 0)
    }

    /// A single-variable expression `1·v_dim` over `ndims` counters.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= ndims`.
    pub fn var(dim: usize, ndims: usize) -> Self {
        assert!(dim < ndims, "dimension {dim} out of range for {ndims} dims");
        let mut coeffs = vec![0; ndims];
        coeffs[dim] = 1;
        AffExpr {
            coeffs,
            constant: 0,
        }
    }

    /// Builds an expression from an explicit coefficient vector and constant.
    pub fn from_parts(coeffs: Vec<i64>, constant: i64) -> Self {
        AffExpr { coeffs, constant }
    }

    /// Number of counter dimensions.
    pub fn ndims(&self) -> usize {
        self.coeffs.len()
    }

    /// Coefficient of counter `dim` (0 when out of range).
    pub fn coeff(&self, dim: usize) -> i64 {
        self.coeffs.get(dim).copied().unwrap_or(0)
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// All coefficients, positionally aligned to the loop list.
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }

    /// Returns a copy with coefficient `dim` replaced by `c`.
    pub fn with_coeff(mut self, dim: usize, c: i64) -> Self {
        if dim >= self.coeffs.len() {
            self.coeffs.resize(dim + 1, 0);
        }
        self.coeffs[dim] = c;
        self
    }

    /// Sum of two expressions (dimension counts are max-merged).
    pub fn add(&self, other: &AffExpr) -> AffExpr {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut coeffs = vec![0; n];
        for (i, c) in coeffs.iter_mut().enumerate() {
            *c = self.coeff(i).saturating_add(other.coeff(i));
        }
        AffExpr {
            coeffs,
            constant: self.constant.saturating_add(other.constant),
        }
    }

    /// Difference of two expressions.
    pub fn sub(&self, other: &AffExpr) -> AffExpr {
        self.add(&other.scale(-1))
    }

    /// The expression multiplied by a constant.
    pub fn scale(&self, k: i64) -> AffExpr {
        AffExpr {
            coeffs: self.coeffs.iter().map(|c| c.saturating_mul(k)).collect(),
            constant: self.constant.saturating_mul(k),
        }
    }

    /// Adds a constant to the expression.
    pub fn add_const(mut self, k: i64) -> AffExpr {
        self.constant = self.constant.saturating_add(k);
        self
    }

    /// Evaluates the expression at a concrete counter point.
    ///
    /// Counters beyond `point.len()` are treated as zero, which lets callers
    /// evaluate an expression aligned to a deeper loop list at a shallower
    /// point prefix.
    pub fn eval(&self, point: &[i64]) -> i64 {
        let mut acc = self.constant;
        for (i, &c) in self.coeffs.iter().enumerate() {
            if c != 0 {
                acc += c * point.get(i).copied().unwrap_or(0);
            }
        }
        acc
    }

    /// Exact bounds of the expression over a box of counter ranges.
    ///
    /// Affine functions attain their extrema at box corners, so this is exact
    /// (not an over-approximation) as long as every referenced counter has a
    /// bound in `box_bounds`. Missing dimensions are treated as `[0, 0]`.
    /// Returns the empty interval if any referenced dimension is empty.
    pub fn bounds(&self, box_bounds: &[Interval]) -> Interval {
        let mut acc = Interval::point(self.constant);
        for (i, &c) in self.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let r = box_bounds.get(i).copied().unwrap_or(Interval::zero());
            if r.is_empty() {
                return Interval::empty();
            }
            acc = acc + r.scale(c);
        }
        acc
    }

    /// Returns `true` if the expression is a constant.
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// Returns the dimension index of the single variable with a non-zero
    /// coefficient, or `None` if there are zero or several.
    pub fn single_var(&self) -> Option<usize> {
        let mut found = None;
        for (i, &c) in self.coeffs.iter().enumerate() {
            if c != 0 {
                if found.is_some() {
                    return None;
                }
                found = Some(i);
            }
        }
        found
    }

    /// Re-expresses the expression over a new loop list.
    ///
    /// `mapping[i]` gives the position of old dimension `i` in the new space,
    /// or `None` if the dimension is unused (its coefficient must then be 0).
    ///
    /// # Errors
    ///
    /// Returns `Err` if a dimension with a non-zero coefficient has no image.
    pub fn remap(
        &self,
        mapping: &[Option<usize>],
        new_ndims: usize,
    ) -> Result<AffExpr, RemapError> {
        let mut coeffs = vec![0; new_ndims];
        for (i, &c) in self.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            match mapping.get(i).copied().flatten() {
                Some(j) => coeffs[j] += c,
                None => return Err(RemapError { dim: i }),
            }
        }
        Ok(AffExpr {
            coeffs,
            constant: self.constant,
        })
    }
}

impl fmt::Display for AffExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, &c) in self.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if first {
                if c == 1 {
                    write!(f, "v{i}")?;
                } else if c == -1 {
                    write!(f, "-v{i}")?;
                } else {
                    write!(f, "{c}*v{i}")?;
                }
                first = false;
            } else if c > 0 {
                if c == 1 {
                    write!(f, " + v{i}")?;
                } else {
                    write!(f, " + {c}*v{i}")?;
                }
            } else if c == -1 {
                write!(f, " - v{i}")?;
            } else {
                write!(f, " - {}*v{i}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

/// Error returned by [`AffExpr::remap`] when a live dimension has no image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemapError {
    /// The offending source dimension.
    pub dim: usize,
}

impl fmt::Display for RemapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot remap live affine dimension v{}", self.dim)
    }
}

impl std::error::Error for RemapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_and_display() {
        let e = AffExpr::from_parts(vec![2, -1], 5);
        assert_eq!(e.eval(&[3, 4]), 2 * 3 - 4 + 5);
        assert_eq!(format!("{e}"), "2*v0 - v1 + 5");
        assert_eq!(format!("{}", AffExpr::constant(2, -3)), "-3");
    }

    #[test]
    fn bounds_exact_at_corners() {
        let e = AffExpr::from_parts(vec![2, -3], 1);
        let b = e.bounds(&[Interval::new(0, 4), Interval::new(1, 2)]);
        // min at (0, 2): -5, max at (4, 1): 6
        assert_eq!(b, Interval::new(-5, 6));
    }

    #[test]
    fn bounds_empty_dimension() {
        let e = AffExpr::from_parts(vec![1], 0);
        assert!(e.bounds(&[Interval::empty()]).is_empty());
    }

    #[test]
    fn add_sub_scale() {
        let a = AffExpr::from_parts(vec![1, 0], 2);
        let b = AffExpr::from_parts(vec![0, 3], -1);
        assert_eq!(a.add(&b), AffExpr::from_parts(vec![1, 3], 1));
        assert_eq!(a.sub(&b), AffExpr::from_parts(vec![1, -3], 3));
        assert_eq!(b.scale(-2), AffExpr::from_parts(vec![0, -6], 2));
    }

    #[test]
    fn single_var_detection() {
        assert_eq!(AffExpr::from_parts(vec![0, 5, 0], 1).single_var(), Some(1));
        assert_eq!(AffExpr::from_parts(vec![1, 5], 1).single_var(), None);
        assert_eq!(AffExpr::constant(3, 7).single_var(), None);
    }

    #[test]
    fn remap_moves_coefficients() {
        let e = AffExpr::from_parts(vec![2, 0, -1], 4);
        let r = e.remap(&[Some(1), None, Some(0)], 2).unwrap();
        assert_eq!(r, AffExpr::from_parts(vec![-1, 2], 4));
        // dim 0 live but unmapped → error
        assert!(e.remap(&[None, None, Some(0)], 1).is_err());
    }
}
