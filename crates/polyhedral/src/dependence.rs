//! Dependence analysis with exact-or-interval distance vectors.
//!
//! This is the reproduction's substitute for the PPCG/isl dependence analysis
//! used by the paper (§2.2.2, §5.2.1). For every ordered pair of accesses to
//! the same array with at least one write, we derive the set of feasible
//! *distance vectors* `δ` over the shared loop prefix such that a source
//! instance at iteration `x` and a sink instance at `x + δ` touch the same
//! array element. For uniform affine access pairs the distance is exact; for
//! non-uniform pairs it is a conservative interval box (an over-approximation,
//! which can only forbid — never wrongly allow — a transformation).
//!
//! Each feasible box is then decomposed along the lexicographic order into
//! *carried* boxes (`δ_k = 0` for `k < ℓ`, `δ_ℓ ≥ 1`) plus an *equal* box
//! (`δ = 0`, textual order decides), mirroring how isl splits dependences by
//! the level that carries them.

use crate::domain::{AccessInfo, StmtPoly};
use crate::interval::Interval;
use std::fmt;

/// Classification of a dependence by the access kinds of source and sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Write → read (true dependence).
    Flow,
    /// Read → write.
    Anti,
    /// Write → write.
    Output,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepKind::Flow => write!(f, "flow"),
            DepKind::Anti => write!(f, "anti"),
            DepKind::Output => write!(f, "output"),
        }
    }
}

/// Associative-commutative operator of a reduction update statement
/// (`a[..] += e`, `a[..] = max(a[..], e)`, `a[..] = min(a[..], e)`).
///
/// Reductions over these operators may be evaluated in any order, so a
/// dependence that only chains successive updates of the same accumulator
/// can be ignored for parallelization — provided each thread group gets a
/// private copy of the accumulator and the partials are merged with the same
/// operator afterwards (Polly-style reduction handling, arXiv:1505.07716).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// `+=` — merged by addition, identity `0.0`.
    Add,
    /// `max=` — merged by maximum, identity `-inf`.
    Max,
    /// `min=` — merged by minimum, identity `+inf`.
    Min,
}

impl ReduceOp {
    /// The operator's identity element: `combine(identity, x) == x`.
    pub fn identity(self) -> f64 {
        match self {
            ReduceOp::Add => 0.0,
            ReduceOp::Max => f64::NEG_INFINITY,
            ReduceOp::Min => f64::INFINITY,
        }
    }

    /// Applies the operator to two partials.
    pub fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Add => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

impl fmt::Display for ReduceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReduceOp::Add => write!(f, "add"),
            ReduceOp::Max => write!(f, "max"),
            ReduceOp::Min => write!(f, "min"),
        }
    }
}

/// The loop level that carries a dependence box.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Carry {
    /// Carried at shared-prefix level `k` (`δ_k ≥ 1`, `δ_j = 0` for `j < k`).
    Level(usize),
    /// All shared distances are zero; textual order makes source precede sink.
    Equal,
}

/// One dependence box: a pair of statements, the array and accesses involved,
/// the carrying level and the interval distance vector over the shared loops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dependence {
    /// Source statement id.
    pub src: usize,
    /// Sink statement id.
    pub dst: usize,
    /// Array being accessed.
    pub array: usize,
    /// Index of the source access within the source statement.
    pub src_access: usize,
    /// Index of the sink access within the sink statement.
    pub dst_access: usize,
    /// Dependence kind.
    pub kind: DepKind,
    /// Which level carries the dependence.
    pub carry: Carry,
    /// Distance intervals over the shared loop prefix (`dst - src` iteration
    /// counters). `dist[k]` is exactly `[0,0]` for every level above the
    /// carrying level.
    pub dist: Vec<Interval>,
    /// Global loop ids of the shared prefix the distances refer to.
    pub shared: Vec<usize>,
    /// `Some(op)` when the dependence only chains associative-commutative
    /// updates of one accumulator (or connects such an update with its
    /// pinned initializer) and may therefore be ignored for parallelization
    /// under accumulator privatization. Set by [`analyze_dependences_with`]
    /// from IR-level [`ReductionHints`]; always `None` without hints.
    pub reduction: Option<ReduceOp>,
}

impl Dependence {
    /// Distance interval at shared level `k` (`[0,0]` past the vector end,
    /// since levels beyond the shared prefix have no defined distance —
    /// callers must not rely on out-of-range levels).
    pub fn dist_at(&self, k: usize) -> Interval {
        self.dist.get(k).copied().unwrap_or(Interval::zero())
    }

    /// Position of a global loop id within this dependence's shared prefix.
    pub fn level_of(&self, loop_var: usize) -> Option<usize> {
        self.shared.iter().position(|&v| v == loop_var)
    }
}

impl fmt::Display for Dependence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} S{} -> S{} on a{} δ=(",
            self.kind, self.src, self.dst, self.array
        )?;
        for (i, d) in self.dist.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

/// Internal: one linear equation over `(s, δ, x_priv, y_priv)` asserting the
/// equality of a source and sink index expression in one array dimension.
struct Equation {
    /// Coefficients on the source's shared counters (`b_k - a_k`).
    s_coeffs: Vec<i64>,
    /// Coefficients on the distance variables (`b_k`).
    d_coeffs: Vec<i64>,
    /// Coefficients on source-private counters (`-a_m`).
    x_coeffs: Vec<i64>,
    /// Coefficients on sink-private counters (`b_m`).
    y_coeffs: Vec<i64>,
    /// Constant (`c_b - c_a`).
    constant: i64,
}

impl Equation {
    /// Interval of every term except the `δ` terms, over the given bounds.
    fn rest_bounds(
        &self,
        s_bounds: &[Interval],
        x_bounds: &[Interval],
        y_bounds: &[Interval],
    ) -> Interval {
        let mut acc = Interval::point(self.constant);
        for (c, b) in self.s_coeffs.iter().zip(s_bounds) {
            if *c != 0 {
                acc = acc + b.scale(*c);
            }
        }
        for (c, b) in self.x_coeffs.iter().zip(x_bounds) {
            if *c != 0 {
                acc = acc + b.scale(*c);
            }
        }
        for (c, b) in self.y_coeffs.iter().zip(y_bounds) {
            if *c != 0 {
                acc = acc + b.scale(*c);
            }
        }
        acc
    }
}

/// Number of constraint-propagation sweeps used to tighten distance boxes.
const PROPAGATION_PASSES: usize = 3;

/// IR-level facts about reduction statements, fed into
/// [`analyze_dependences_with`] to mark reduction dependences.
///
/// The polyhedral layer cannot see operators — a [`StmtPoly`] only records
/// *which* elements a statement touches, not *how* it combines them. The IR
/// layer recognizes the update patterns (`a[..] += e` and the spelled-out
/// `a[..] = op(a[..], e)` forms) and passes them down here, where they are
/// matched against the computed dependence endpoints.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReductionHints {
    /// `(statement id, array id, operator)` of each recognized
    /// associative-commutative accumulator update.
    pub updates: Vec<(usize, usize, ReduceOp)>,
    /// `(statement id, array id)` of each statement that overwrites the
    /// array with a value loading nothing (a constant initializer). Inits
    /// are only folded into a reduction when their domain is pinned so they
    /// execute inside reduction group 0 (see [`analyze_dependences_with`]).
    pub inits: Vec<(usize, usize)>,
}

impl ReductionHints {
    /// True when no update statements were recognized.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }
}

/// Computes all dependence boxes of a program given as polyhedral statement
/// summaries.
///
/// The result is a conservative over-approximation of the value-based
/// dependences the paper computes with PPCG: memory-based (all pairs with at
/// least one write), with exact distances for uniform access pairs and
/// interval distances otherwise.
///
/// # Examples
///
/// ```
/// use prem_polyhedral::{analyze_dependences, AccessInfo, AffExpr, LoopInfo, StmtPoly};
///
/// // for i { for j { c[i] = c[i] + ... } }  — reduction over j
/// let acc_r = AccessInfo::read(0, vec![AffExpr::var(0, 2)]);
/// let acc_w = AccessInfo::write(0, vec![AffExpr::var(0, 2)]);
/// let s = StmtPoly {
///     id: 0,
///     loops: vec![LoopInfo::new(0, 10), LoopInfo::new(1, 10)],
///     guards: vec![],
///     position: vec![0, 0, 0],
///     accesses: vec![acc_r, acc_w],
/// };
/// let deps = analyze_dependences(std::slice::from_ref(&s));
/// // All dependences have distance 0 on i: i is parallel, j is not.
/// assert!(deps.iter().all(|d| d.dist_at(0).is_zero()));
/// assert!(deps.iter().any(|d| d.dist_at(1).lo >= 1));
/// ```
pub fn analyze_dependences(stmts: &[StmtPoly]) -> Vec<Dependence> {
    analyze_dependences_with(stmts, &ReductionHints::default())
}

/// [`analyze_dependences`] plus reduction classification: dependences that
/// only chain associative-commutative updates of one accumulator get their
/// [`Dependence::reduction`] marker set.
///
/// A dependence on array `A` is marked with operator `op` when some
/// recognized update statement `U` of `(A, op)` satisfies:
///
/// * at least one endpoint of the dependence is `U`, and
/// * the other endpoint is `U` itself, or an initializer of `A` whose
///   domain is *pinned*: every enclosing loop the update's write access
///   does not index must be restricted (by guards) to counter value `0`,
///   so the initializer executes inside reduction thread group 0 and the
///   privatized replicas can start from the operator's identity instead.
///
/// Everything else — in particular dependences connecting two *different*
/// update statements, or an update with an unrelated reader of the
/// accumulated value — keeps `reduction: None` and constrains
/// parallelization exactly as before. With empty hints the result is
/// identical to [`analyze_dependences`].
pub fn analyze_dependences_with(stmts: &[StmtPoly], hints: &ReductionHints) -> Vec<Dependence> {
    let mut deps = Vec::new();
    for a in stmts {
        for b in stmts {
            for (pa, acc_a) in a.accesses.iter().enumerate() {
                for (pb, acc_b) in b.accesses.iter().enumerate() {
                    if acc_a.array != acc_b.array {
                        continue;
                    }
                    if !acc_a.is_write && !acc_b.is_write {
                        continue;
                    }
                    if let Some(mut boxes) = dependence_pair(a, acc_a, pa, b, acc_b, pb) {
                        deps.append(&mut boxes);
                    }
                }
            }
        }
    }
    if !hints.is_empty() {
        for dep in &mut deps {
            dep.reduction = classify_reduction(dep, stmts, hints);
        }
    }
    deps
}

/// Decides whether `dep` is a reduction dependence under `hints`; see
/// [`analyze_dependences_with`] for the rule.
fn classify_reduction(
    dep: &Dependence,
    stmts: &[StmtPoly],
    hints: &ReductionHints,
) -> Option<ReduceOp> {
    for &(u, arr, op) in &hints.updates {
        if arr != dep.array || (dep.src != u && dep.dst != u) {
            continue;
        }
        let endpoints_ok = [dep.src, dep.dst]
            .iter()
            .all(|&e| e == u || is_pinned_init(e, arr, u, stmts, hints));
        if endpoints_ok {
            return Some(op);
        }
    }
    None
}

/// True when statement `init` is a recognized initializer of array `arr`
/// whose domain is pinned to reduction group 0 relative to update `upd`:
/// along every enclosing loop the update's write access does not index, the
/// initializer's guard-tightened bounds must be exactly `[0, 0]`.
fn is_pinned_init(
    init: usize,
    arr: usize,
    upd: usize,
    stmts: &[StmtPoly],
    hints: &ReductionHints,
) -> bool {
    if !hints.inits.contains(&(init, arr)) {
        return false;
    }
    let (Some(init_s), Some(upd_s)) = (
        stmts.iter().find(|s| s.id == init),
        stmts.iter().find(|s| s.id == upd),
    ) else {
        return false;
    };
    let Some(write) = upd_s.accesses.iter().find(|a| a.is_write && a.array == arr) else {
        return false;
    };
    let bounds = init_s.tightened_bounds();
    init_s.loops.iter().enumerate().all(|(k, l)| {
        let indexed = upd_s
            .loops
            .iter()
            .position(|ul| ul.var == l.var)
            .is_some_and(|pos| write.indices.iter().any(|ix| ix.coeff(pos) != 0));
        indexed || bounds[k] == Interval::point(0)
    })
}

/// Computes the lex-decomposed dependence boxes for one ordered access pair
/// (source = `a`, sink = `b`). Returns `None` when the accesses can never
/// conflict.
fn dependence_pair(
    a: &StmtPoly,
    acc_a: &AccessInfo,
    pa: usize,
    b: &StmtPoly,
    acc_b: &AccessInfo,
    pb: usize,
) -> Option<Vec<Dependence>> {
    let shared_len = a.shared_prefix_len(b);
    let s_bounds = a.tightened_bounds();
    let t_bounds = b.tightened_bounds();
    if s_bounds.iter().any(Interval::is_empty) || t_bounds.iter().any(Interval::is_empty) {
        return None;
    }
    let shared: Vec<usize> = a.loops[..shared_len].iter().map(|l| l.var).collect();

    // Initial distance box: δ_k = y_k - x_k over the loops' bounds.
    let mut dist: Vec<Interval> = (0..shared_len).map(|k| t_bounds[k] - s_bounds[k]).collect();

    // Build equations from each array dimension.
    let equations = build_equations(a, acc_a, b, acc_b, shared_len);
    let x_priv: Vec<Interval> = s_bounds[shared_len..].to_vec();
    let y_priv: Vec<Interval> = t_bounds[shared_len..].to_vec();
    let s_shared: Vec<Interval> = s_bounds[..shared_len].to_vec();

    if !propagate(&equations, &mut dist, &s_shared, &x_priv, &y_priv) {
        return None;
    }

    let kind = match (acc_a.is_write, acc_b.is_write) {
        (true, false) => DepKind::Flow,
        (false, true) => DepKind::Anti,
        (true, true) => DepKind::Output,
        (false, false) => unreachable!("filtered by caller"),
    };

    let mut out = Vec::new();
    // Carried boxes: δ_j = 0 for j < ℓ, δ_ℓ ≥ 1.
    for level in 0..shared_len {
        // The prefix must be able to be zero.
        if dist[..level].iter().any(|d| !d.contains(0)) {
            break;
        }
        let mut boxed = dist.clone();
        for d in boxed.iter_mut().take(level) {
            *d = Interval::zero();
        }
        boxed[level] = boxed[level].intersect(&Interval::new(1, i64::MAX));
        if boxed[level].is_empty() {
            continue;
        }
        if !propagate(&equations, &mut boxed, &s_shared, &x_priv, &y_priv) {
            continue;
        }
        out.push(Dependence {
            src: a.id,
            dst: b.id,
            array: acc_a.array,
            src_access: pa,
            dst_access: pb,
            kind,
            carry: Carry::Level(level),
            dist: boxed,
            shared: shared.clone(),
            reduction: None,
        });
    }

    // Equal box: all δ = 0, textual order decides, and statements distinct
    // (intra-instance effects are atomic at statement granularity).
    if a.id != b.id && dist.iter().all(|d| d.contains(0)) && a.textually_before(b) {
        let mut boxed: Vec<Interval> = vec![Interval::zero(); shared_len];
        if propagate(&equations, &mut boxed, &s_shared, &x_priv, &y_priv) {
            out.push(Dependence {
                src: a.id,
                dst: b.id,
                array: acc_a.array,
                src_access: pa,
                dst_access: pb,
                kind,
                carry: Carry::Equal,
                dist: boxed,
                shared,
                reduction: None,
            });
        }
    }

    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

/// Builds one [`Equation`] per array dimension of the access pair.
fn build_equations(
    a: &StmtPoly,
    acc_a: &AccessInfo,
    b: &StmtPoly,
    acc_b: &AccessInfo,
    shared_len: usize,
) -> Vec<Equation> {
    let a_depth = a.depth();
    let b_depth = b.depth();
    acc_a
        .indices
        .iter()
        .zip(acc_b.indices.iter())
        .map(|(ea, eb)| {
            let mut s_coeffs = vec![0i64; shared_len];
            let mut d_coeffs = vec![0i64; shared_len];
            for (k, (sc, dc)) in s_coeffs.iter_mut().zip(d_coeffs.iter_mut()).enumerate() {
                let ak = ea.coeff(k);
                let bk = eb.coeff(k);
                *sc = bk - ak;
                *dc = bk;
            }
            let x_coeffs = (shared_len..a_depth).map(|m| -ea.coeff(m)).collect();
            let y_coeffs = (shared_len..b_depth).map(|m| eb.coeff(m)).collect();
            Equation {
                s_coeffs,
                d_coeffs,
                x_coeffs,
                y_coeffs,
                constant: eb.constant_term() - ea.constant_term(),
            }
        })
        .collect()
}

/// Interval constraint propagation: tightens the distance box against every
/// equation. Returns `false` if the system is infeasible.
fn propagate(
    equations: &[Equation],
    dist: &mut [Interval],
    s_bounds: &[Interval],
    x_bounds: &[Interval],
    y_bounds: &[Interval],
) -> bool {
    for _ in 0..PROPAGATION_PASSES {
        for eq in equations {
            let rest = eq.rest_bounds(s_bounds, x_bounds, y_bounds);
            // Σ d_coeffs[k]·δ_k + rest = 0  →  Σ d_coeffs[k]·δ_k ∈ -rest
            let target = rest.neg();
            let live: Vec<usize> = (0..dist.len()).filter(|&k| eq.d_coeffs[k] != 0).collect();
            if live.is_empty() {
                if !target.contains(0) {
                    return false;
                }
                continue;
            }
            for &k in &live {
                // δ_k ∈ (target - Σ_{j≠k} c_j·δ_j) / c_k
                let mut others = Interval::point(0);
                for &j in &live {
                    if j != k {
                        others = others + dist[j].scale(eq.d_coeffs[j]);
                    }
                }
                let residual = target - others;
                let solved = residual.div_exact_solutions(eq.d_coeffs[k]);
                dist[k] = dist[k].intersect(&solved);
                if dist[k].is_empty() {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::AffExpr;
    use crate::domain::{Guard, LoopInfo};

    /// `for i in 0..n { for j in 0..n { c[i] = c[i] + a[i][j]*b[j] } }`
    fn matvec_stmt(n: i64) -> StmtPoly {
        StmtPoly {
            id: 0,
            loops: vec![LoopInfo::new(0, n), LoopInfo::new(1, n)],
            guards: vec![],
            position: vec![0, 0, 0],
            accesses: vec![
                AccessInfo::read(0, vec![AffExpr::var(0, 2)]),
                AccessInfo::write(0, vec![AffExpr::var(0, 2)]),
                AccessInfo::read(1, vec![AffExpr::var(0, 2), AffExpr::var(1, 2)]),
                AccessInfo::read(2, vec![AffExpr::var(1, 2)]),
            ],
        }
    }

    #[test]
    fn matvec_reduction_dependences() {
        let s = matvec_stmt(100);
        let deps = analyze_dependences(std::slice::from_ref(&s));
        assert!(!deps.is_empty());
        // Every dependence keeps i fixed.
        for d in &deps {
            assert!(d.dist_at(0).is_zero(), "dep {d} moves along i");
        }
        // The reduction is carried at j with distance >= 1.
        assert!(deps
            .iter()
            .any(|d| matches!(d.carry, Carry::Level(1)) && d.dist_at(1).lo >= 1));
        // No Equal deps: single statement.
        assert!(deps.iter().all(|d| d.carry != Carry::Equal));
    }

    #[test]
    fn stencil_shift_exact_distance() {
        // for i in 1..n: a[i] = a[i-1]
        // Normalized counter t in 0..n-1, write a[t+1], read a[t].
        let s = StmtPoly {
            id: 0,
            loops: vec![LoopInfo::new(0, 99)],
            guards: vec![],
            position: vec![0, 0],
            accesses: vec![
                AccessInfo::write(0, vec![AffExpr::var(0, 1).add_const(1)]),
                AccessInfo::read(0, vec![AffExpr::var(0, 1)]),
            ],
        };
        let deps = analyze_dependences(std::slice::from_ref(&s));
        // Flow: write a[t+1] at t, read a[t'] at t' where t' = t+1 → δ = 1.
        let flow: Vec<_> = deps.iter().filter(|d| d.kind == DepKind::Flow).collect();
        assert!(!flow.is_empty());
        for d in flow {
            assert_eq!(d.dist_at(0), Interval::point(1), "{d}");
        }
    }

    #[test]
    fn disjoint_accesses_no_dependence() {
        // for i in 0..10: a[i] = a[i + 100]  (regions never overlap)
        let s = StmtPoly {
            id: 0,
            loops: vec![LoopInfo::new(0, 10)],
            guards: vec![],
            position: vec![0, 0],
            accesses: vec![
                AccessInfo::write(0, vec![AffExpr::var(0, 1)]),
                AccessInfo::read(0, vec![AffExpr::var(0, 1).add_const(100)]),
            ],
        };
        let deps = analyze_dependences(std::slice::from_ref(&s));
        assert!(deps.is_empty(), "got {deps:?}");
    }

    #[test]
    fn textual_order_gives_equal_dependence() {
        // for i { s0: x[i] = ...; s1: ... = x[i]; }
        let s0 = StmtPoly {
            id: 0,
            loops: vec![LoopInfo::new(0, 10)],
            guards: vec![],
            position: vec![0, 0],
            accesses: vec![AccessInfo::write(0, vec![AffExpr::var(0, 1)])],
        };
        let s1 = StmtPoly {
            id: 1,
            loops: vec![LoopInfo::new(0, 10)],
            guards: vec![],
            position: vec![0, 1],
            accesses: vec![AccessInfo::read(0, vec![AffExpr::var(0, 1)])],
        };
        let deps = analyze_dependences(&[s0, s1]);
        let equal: Vec<_> = deps
            .iter()
            .filter(|d| d.carry == Carry::Equal && d.kind == DepKind::Flow)
            .collect();
        assert_eq!(equal.len(), 1);
        assert_eq!(equal[0].src, 0);
        assert_eq!(equal[0].dst, 1);
        // And no Equal flow dep in the reverse direction.
        assert!(!deps
            .iter()
            .any(|d| d.carry == Carry::Equal && d.src == 1 && d.dst == 0));
    }

    #[test]
    fn guard_restricts_dependence() {
        // s0 (under p == 0): i[s1] = 0 ; s1: i[s1] += ...
        // Both in loops (s1, p). Flow from s0 to s1 exists; also deps carried
        // at p for the reduction.
        let guard = Guard::eq(AffExpr::var(1, 2));
        let s0 = StmtPoly {
            id: 0,
            loops: vec![LoopInfo::new(0, 8), LoopInfo::new(1, 8)],
            guards: vec![guard],
            position: vec![0, 0, 0],
            accesses: vec![AccessInfo::write(0, vec![AffExpr::var(0, 2)])],
        };
        let s1 = StmtPoly {
            id: 1,
            loops: vec![LoopInfo::new(0, 8), LoopInfo::new(1, 8)],
            guards: vec![],
            position: vec![0, 0, 1],
            accesses: vec![
                AccessInfo::read(0, vec![AffExpr::var(0, 2)]),
                AccessInfo::write(0, vec![AffExpr::var(0, 2)]),
            ],
        };
        let deps = analyze_dependences(&[s0, s1]);
        // All deps keep s1 (the outer loop) fixed at distance 0.
        for d in &deps {
            assert!(d.dist_at(0).is_zero(), "{d}");
        }
        // Flow s0 → s1 exists at Equal (same iteration, textual order).
        assert!(deps
            .iter()
            .any(|d| d.src == 0 && d.dst == 1 && d.carry == Carry::Equal));
    }

    #[test]
    fn reduction_hints_mark_update_self_deps() {
        // matvec: c[i] = c[i] + ... — a += reduction over j on array 0.
        let s = matvec_stmt(100);
        let hints = ReductionHints {
            updates: vec![(0, 0, ReduceOp::Add)],
            inits: vec![],
        };
        let deps = analyze_dependences_with(std::slice::from_ref(&s), &hints);
        assert!(!deps.is_empty());
        // Every dependence here chains the update with itself → all marked.
        for d in &deps {
            assert_eq!(d.reduction, Some(ReduceOp::Add), "{d}");
        }
        // Without hints nothing is marked and everything else is identical.
        let plain = analyze_dependences(std::slice::from_ref(&s));
        assert_eq!(plain.len(), deps.len());
        for (p, h) in plain.iter().zip(&deps) {
            assert_eq!(p.reduction, None);
            assert_eq!(
                (p.src, p.dst, p.kind, p.carry, &p.dist),
                (h.src, h.dst, h.kind, h.carry, &h.dist)
            );
        }
    }

    #[test]
    fn pinned_init_joins_reduction_unpinned_does_not() {
        // s0 (init, guarded p == 0): acc[s1] = 0 ; s1: acc[s1] += ...
        // over loops (s1, p). The guard pins p to [0,0], so init↔update
        // dependences are reduction dependences. Dropping the guard leaves
        // the init executing at every p — then only update self-deps keep
        // the marker.
        let make = |guards: Vec<Guard>| {
            let s0 = StmtPoly {
                id: 0,
                loops: vec![LoopInfo::new(0, 8), LoopInfo::new(1, 8)],
                guards,
                position: vec![0, 0, 0],
                accesses: vec![AccessInfo::write(0, vec![AffExpr::var(0, 2)])],
            };
            let s1 = StmtPoly {
                id: 1,
                loops: vec![LoopInfo::new(0, 8), LoopInfo::new(1, 8)],
                guards: vec![],
                position: vec![0, 0, 1],
                accesses: vec![
                    AccessInfo::read(0, vec![AffExpr::var(0, 2)]),
                    AccessInfo::write(0, vec![AffExpr::var(0, 2)]),
                ],
            };
            vec![s0, s1]
        };
        let hints = ReductionHints {
            updates: vec![(1, 0, ReduceOp::Add)],
            inits: vec![(0, 0)],
        };

        let pinned = analyze_dependences_with(&make(vec![Guard::eq(AffExpr::var(1, 2))]), &hints);
        assert!(pinned.iter().any(|d| d.src != d.dst));
        for d in &pinned {
            assert_eq!(d.reduction, Some(ReduceOp::Add), "{d}");
        }

        let unpinned = analyze_dependences_with(&make(vec![]), &hints);
        for d in &unpinned {
            let expect = if d.src == 1 && d.dst == 1 {
                Some(ReduceOp::Add)
            } else {
                None
            };
            assert_eq!(d.reduction, expect, "{d}");
        }
    }

    #[test]
    fn unrelated_reader_is_not_a_reduction_dep() {
        // s0: acc[i] += x ; s1: y[i] = acc[i] — the read in s1 observes the
        // running partial, so s0↔s1 dependences must keep blocking.
        let s0 = StmtPoly {
            id: 0,
            loops: vec![LoopInfo::new(0, 8), LoopInfo::new(1, 8)],
            guards: vec![],
            position: vec![0, 0, 0],
            accesses: vec![
                AccessInfo::read(0, vec![AffExpr::var(0, 2)]),
                AccessInfo::write(0, vec![AffExpr::var(0, 2)]),
            ],
        };
        let s1 = StmtPoly {
            id: 1,
            loops: vec![LoopInfo::new(0, 8), LoopInfo::new(1, 8)],
            guards: vec![],
            position: vec![0, 0, 1],
            accesses: vec![
                AccessInfo::read(0, vec![AffExpr::var(0, 2)]),
                AccessInfo::write(1, vec![AffExpr::var(0, 2)]),
            ],
        };
        let hints = ReductionHints {
            updates: vec![(0, 0, ReduceOp::Add)],
            inits: vec![],
        };
        let deps = analyze_dependences_with(&[s0, s1], &hints);
        assert!(deps.iter().any(|d| d.src == 0 && d.dst == 1));
        for d in &deps {
            let expect = if d.src == 0 && d.dst == 0 {
                Some(ReduceOp::Add)
            } else {
                None
            };
            assert_eq!(d.reduction, expect, "{d}");
        }
    }

    #[test]
    fn non_uniform_access_gives_interval() {
        // for i { for r { out[i] = out[i] + in[i + 2 - r] } } with r in 0..3:
        // the `in` array is read-only so deps come only from `out`; they are
        // carried at r with exact distances, i stays 0.
        let s = StmtPoly {
            id: 0,
            loops: vec![LoopInfo::new(0, 10), LoopInfo::new(1, 3)],
            guards: vec![],
            position: vec![0, 0, 0],
            accesses: vec![
                AccessInfo::read(0, vec![AffExpr::var(0, 2)]),
                AccessInfo::write(0, vec![AffExpr::var(0, 2)]),
                AccessInfo::read(
                    1,
                    vec![AffExpr::var(0, 2)
                        .sub(&AffExpr::var(1, 2).with_coeff(0, 0))
                        .add_const(2)],
                ),
            ],
        };
        let deps = analyze_dependences(std::slice::from_ref(&s));
        for d in &deps {
            assert!(d.dist_at(0).is_zero());
        }
        assert!(deps
            .iter()
            .any(|d| matches!(d.carry, Carry::Level(1)) && d.dist_at(1).lo >= 1));
    }
}
