//! Statement domains: loop nests, affine guards and access relations.
//!
//! A [`StmtPoly`] is the polyhedral summary of one program statement, produced
//! by the IR layer: its enclosing loops (normalized to zero-based counters),
//! any affine `if` guards restricting its domain, its textual position vector
//! (the interleaving constants of a schedule tree) and its array accesses.

use crate::affine::AffExpr;
use crate::interval::{div_ceil, div_floor, Interval};
use std::fmt;

/// One enclosing loop of a statement: a global loop identity plus the number
/// of iterations of its zero-based counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoopInfo {
    /// Globally unique loop identifier (one per syntactic loop).
    pub var: usize,
    /// Iteration count `N`; the counter ranges over `0 ..= N-1`.
    pub count: i64,
}

impl LoopInfo {
    /// Creates loop info for a loop with `count` iterations.
    pub fn new(var: usize, count: i64) -> Self {
        LoopInfo { var, count }
    }

    /// The counter interval `[0, N-1]`.
    pub fn counter_range(&self) -> Interval {
        Interval::new(0, self.count - 1)
    }
}

/// Comparison kind of an affine guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpKind {
    /// `expr >= 0`
    Ge,
    /// `expr == 0`
    Eq,
}

/// An affine guard `expr >= 0` or `expr == 0` over the statement's counters.
///
/// Guards come from affine `if` conditions such as `if (t > 0)` or
/// `if (p == 0)` in the source program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Guard {
    /// Guard expression over the statement's loop counters.
    pub expr: AffExpr,
    /// Whether the guard is an inequality or an equality.
    pub kind: CmpKind,
}

impl Guard {
    /// Creates a `expr >= 0` guard.
    pub fn ge(expr: AffExpr) -> Self {
        Guard {
            expr,
            kind: CmpKind::Ge,
        }
    }

    /// Creates a `expr == 0` guard.
    pub fn eq(expr: AffExpr) -> Self {
        Guard {
            expr,
            kind: CmpKind::Eq,
        }
    }

    /// Evaluates the guard at a concrete counter point.
    pub fn holds(&self, point: &[i64]) -> bool {
        let v = self.expr.eval(point);
        match self.kind {
            CmpKind::Ge => v >= 0,
            CmpKind::Eq => v == 0,
        }
    }
}

/// An array access of a statement: one affine index expression per array
/// dimension, over the statement's loop counters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AccessInfo {
    /// Identifier of the accessed array.
    pub array: usize,
    /// Affine index expression per array dimension (outermost first).
    pub indices: Vec<AffExpr>,
    /// `true` if the access writes the element.
    pub is_write: bool,
}

impl AccessInfo {
    /// Creates a read access.
    pub fn read(array: usize, indices: Vec<AffExpr>) -> Self {
        AccessInfo {
            array,
            indices,
            is_write: false,
        }
    }

    /// Creates a write access.
    pub fn write(array: usize, indices: Vec<AffExpr>) -> Self {
        AccessInfo {
            array,
            indices,
            is_write: true,
        }
    }
}

/// Polyhedral summary of a single statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StmtPoly {
    /// Statement identifier (index into the program's statement list).
    pub id: usize,
    /// Enclosing loops, outermost first.
    pub loops: Vec<LoopInfo>,
    /// Affine guards restricting the domain.
    pub guards: Vec<Guard>,
    /// Textual position vector: `position[k]` is the statement's (or its
    /// ancestor's) index within the body at nesting depth `k`. Length is
    /// `loops.len() + 1`. Lexicographic comparison of position vectors gives
    /// the textual execution order of two statements at equal loop counters.
    pub position: Vec<i64>,
    /// Array accesses performed by the statement.
    pub accesses: Vec<AccessInfo>,
}

impl StmtPoly {
    /// Number of enclosing loops.
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// Raw counter bounds `[0, N-1]` per enclosing loop, ignoring guards.
    pub fn raw_bounds(&self) -> Vec<Interval> {
        self.loops.iter().map(LoopInfo::counter_range).collect()
    }

    /// Counter bounds per enclosing loop, tightened by single-variable guards.
    ///
    /// A guard `c·v + d >= 0` tightens `v >= ceil(-d/c)` (for `c > 0`) or
    /// `v <= floor(-d/c)` (for `c < 0`); an equality fixes the variable when
    /// the coefficient divides the constant and empties the domain otherwise.
    /// Multi-variable guards are ignored (a sound over-approximation).
    pub fn tightened_bounds(&self) -> Vec<Interval> {
        let mut bounds = self.raw_bounds();
        for guard in &self.guards {
            let Some(dim) = guard.expr.single_var() else {
                // Constant guards decide emptiness; multi-var guards are kept
                // conservative.
                if guard.expr.is_constant() {
                    let c = guard.expr.constant_term();
                    let holds = match guard.kind {
                        CmpKind::Ge => c >= 0,
                        CmpKind::Eq => c == 0,
                    };
                    if !holds {
                        for b in &mut bounds {
                            *b = Interval::empty();
                        }
                    }
                }
                continue;
            };
            let c = guard.expr.coeff(dim);
            let d = guard.expr.constant_term();
            let restrict = match guard.kind {
                CmpKind::Ge => {
                    // c·v + d >= 0
                    if c > 0 {
                        Interval::new(div_ceil(-d, c), i64::MAX)
                    } else {
                        Interval::new(i64::MIN, div_floor(-d, c))
                    }
                }
                CmpKind::Eq => {
                    if (-d) % c == 0 {
                        Interval::point(-d / c)
                    } else {
                        Interval::empty()
                    }
                }
            };
            if dim < bounds.len() {
                bounds[dim] = bounds[dim].intersect(&restrict);
            }
        }
        bounds
    }

    /// Returns `true` if the (guard-tightened) domain contains no point.
    pub fn is_domain_empty(&self) -> bool {
        self.tightened_bounds().iter().any(Interval::is_empty)
    }

    /// Number of points in the guard-tightened domain box.
    ///
    /// Exact for single-variable guards (the class we tighten); an
    /// over-approximation in the presence of multi-variable guards.
    pub fn domain_size(&self) -> u64 {
        self.tightened_bounds().iter().map(Interval::len).product()
    }

    /// Length of the shared loop prefix with another statement.
    pub fn shared_prefix_len(&self, other: &StmtPoly) -> usize {
        self.loops
            .iter()
            .zip(other.loops.iter())
            .take_while(|(a, b)| a.var == b.var)
            .count()
    }

    /// Returns `true` if `self` textually precedes `other`.
    ///
    /// Comparison is lexicographic on the position vectors; equal prefixes of
    /// different lengths are ordered shorter-first (the shallower statement
    /// wraps the deeper one's loop, and a container position never equals a
    /// contained statement's position in well-formed programs).
    pub fn textually_before(&self, other: &StmtPoly) -> bool {
        self.position < other.position
    }
}

impl fmt::Display for StmtPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}[", self.id)?;
        for (i, l) in self.loops.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "v{}<{}", l.var, l.count)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stmt(loops: Vec<LoopInfo>, guards: Vec<Guard>) -> StmtPoly {
        let depth = loops.len();
        StmtPoly {
            id: 0,
            loops,
            guards,
            position: vec![0; depth + 1],
            accesses: vec![],
        }
    }

    #[test]
    fn raw_bounds_from_counts() {
        let s = stmt(vec![LoopInfo::new(0, 10), LoopInfo::new(1, 4)], vec![]);
        assert_eq!(
            s.raw_bounds(),
            vec![Interval::new(0, 9), Interval::new(0, 3)]
        );
        assert_eq!(s.domain_size(), 40);
    }

    #[test]
    fn guard_tightens_ge() {
        // if (t > 0) i.e. t - 1 >= 0 over t in [0, 9]
        let g = Guard::ge(AffExpr::var(0, 1).add_const(-1));
        let s = stmt(vec![LoopInfo::new(0, 10)], vec![g]);
        assert_eq!(s.tightened_bounds(), vec![Interval::new(1, 9)]);
        assert_eq!(s.domain_size(), 9);
    }

    #[test]
    fn guard_tightens_eq() {
        // if (p == 0) over p in [0, 6]
        let g = Guard::eq(AffExpr::var(0, 1));
        let s = stmt(vec![LoopInfo::new(0, 7)], vec![g]);
        assert_eq!(s.tightened_bounds(), vec![Interval::point(0)]);
    }

    #[test]
    fn contradictory_guard_empties_domain() {
        // -1 >= 0 never holds
        let g = Guard::ge(AffExpr::constant(1, -1));
        let s = stmt(vec![LoopInfo::new(0, 7)], vec![g]);
        assert!(s.is_domain_empty());
    }

    #[test]
    fn guard_holds_pointwise() {
        let g = Guard::ge(AffExpr::var(0, 2).sub(&AffExpr::var(1, 2)));
        assert!(g.holds(&[3, 2]));
        assert!(g.holds(&[2, 2]));
        assert!(!g.holds(&[1, 2]));
    }

    #[test]
    fn shared_prefix_and_position_order() {
        let a = StmtPoly {
            id: 0,
            loops: vec![LoopInfo::new(0, 5), LoopInfo::new(1, 5)],
            guards: vec![],
            position: vec![0, 0, 0],
            accesses: vec![],
        };
        let b = StmtPoly {
            id: 1,
            loops: vec![LoopInfo::new(0, 5), LoopInfo::new(2, 5)],
            guards: vec![],
            position: vec![0, 1, 0],
            accesses: vec![],
        };
        assert_eq!(a.shared_prefix_len(&b), 1);
        assert!(a.textually_before(&b));
        assert!(!b.textually_before(&a));
    }
}
