//! Rectangular hulls of accessed array regions (§5.3.1).
//!
//! The *canonical data element range* of an access over a tile is the
//! smallest axis-aligned box containing every touched element: per array
//! dimension, the min and max index over the tile's iteration box. Affine
//! index expressions attain their extrema at box corners, so the hull is
//! computed exactly by interval arithmetic.

use crate::affine::AffExpr;
use crate::interval::Interval;

/// The rectangular hull of an affine access over an iteration box: one
/// interval per array dimension.
///
/// # Examples
///
/// ```
/// use prem_polyhedral::{access_hull, AffExpr, Interval};
///
/// // a[i][j+2] over i in [0,3], j in [5,9]
/// let idx = vec![AffExpr::var(0, 2), AffExpr::var(1, 2).add_const(2)];
/// let hull = access_hull(&idx, &[Interval::new(0, 3), Interval::new(5, 9)]);
/// assert_eq!(hull, vec![Interval::new(0, 3), Interval::new(7, 11)]);
/// ```
pub fn access_hull(indices: &[AffExpr], iter_box: &[Interval]) -> Vec<Interval> {
    indices.iter().map(|e| e.bounds(iter_box)).collect()
}

/// Componentwise hull of two rectangular ranges (dimension counts must match;
/// empty ranges are absorbed).
pub fn union_hull(a: &[Interval], b: &[Interval]) -> Vec<Interval> {
    assert_eq!(a.len(), b.len(), "hull dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x.hull(y)).collect()
}

/// Returns `true` if two rectangular ranges intersect in every dimension.
pub fn ranges_overlap(a: &[Interval], b: &[Interval]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| !x.intersect(y).is_empty())
}

/// The shape (per-dimension extent) of a rectangular range; empty dimensions
/// yield extent 0.
pub fn shape(range: &[Interval]) -> Vec<i64> {
    range.iter().map(|iv| iv.len() as i64).collect()
}

/// Number of elements in a rectangular range.
pub fn volume(range: &[Interval]) -> u64 {
    range.iter().map(Interval::len).product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hull_of_negative_coefficient_access() {
        // inp[p + 2 - r] over p in [0, 6], r in [0, 2]
        let idx = vec![AffExpr::from_parts(vec![1, -1], 2)];
        let hull = access_hull(&idx, &[Interval::new(0, 6), Interval::new(0, 2)]);
        assert_eq!(hull, vec![Interval::new(0, 8)]);
    }

    #[test]
    fn union_and_overlap() {
        let a = vec![Interval::new(0, 3), Interval::new(0, 3)];
        let b = vec![Interval::new(2, 5), Interval::new(4, 6)];
        assert_eq!(
            union_hull(&a, &b),
            vec![Interval::new(0, 5), Interval::new(0, 6)]
        );
        // Dim 1 does not intersect → no overlap.
        assert!(!ranges_overlap(&a, &b));
        let c = vec![Interval::new(2, 5), Interval::new(3, 6)];
        assert!(ranges_overlap(&a, &c));
    }

    #[test]
    fn shape_and_volume() {
        let r = vec![Interval::new(2, 5), Interval::new(0, 0)];
        assert_eq!(shape(&r), vec![4, 1]);
        assert_eq!(volume(&r), 4);
        assert_eq!(volume(&[Interval::empty()]), 0);
    }
}
