//! Closed integer intervals with saturating arithmetic.
//!
//! Intervals are the workhorse of the bound analysis used throughout the
//! polyhedral layer: affine expressions over rectangular domains attain their
//! extrema at box corners, so interval arithmetic is *exact* for the class of
//! programs the PREM compiler accepts (constant-bound, uniform-stride loops
//! with affine accesses).

use std::fmt;

/// A closed interval `[lo, hi]` over `i64`.
///
/// An interval with `lo > hi` is *empty*. Arithmetic saturates at the `i64`
/// boundaries so overflow cannot silently wrap.
///
/// # Examples
///
/// ```
/// use prem_polyhedral::Interval;
///
/// let a = Interval::new(0, 9);
/// let b = Interval::point(3);
/// assert_eq!(a + b, Interval::new(3, 12));
/// assert!(a.contains(5));
/// assert!(Interval::empty().is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl Interval {
    /// Creates the interval `[lo, hi]`.
    pub const fn new(lo: i64, hi: i64) -> Self {
        Interval { lo, hi }
    }

    /// Creates the singleton interval `[v, v]`.
    pub const fn point(v: i64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// The canonical empty interval (`[1, 0]`).
    pub const fn empty() -> Self {
        Interval { lo: 1, hi: 0 }
    }

    /// The zero singleton `[0, 0]`.
    pub const fn zero() -> Self {
        Interval { lo: 0, hi: 0 }
    }

    /// Returns `true` if the interval contains no integer.
    pub const fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Returns `true` if the interval is a single integer.
    pub const fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// Returns `true` if the interval is exactly `[0, 0]`.
    pub const fn is_zero(&self) -> bool {
        self.lo == 0 && self.hi == 0
    }

    /// Returns `true` if `v` lies inside the interval.
    pub const fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Number of integers in the interval (0 when empty).
    pub fn len(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            // Wrapping subtraction is the correct modular width even when the
            // interval spans more than `i64::MAX` (saturated bounds).
            (self.hi.wrapping_sub(self.lo) as u64).saturating_add(1)
        }
    }

    /// Returns `true` if the interval is empty (alias mirroring `len`).
    ///
    /// Provided so collections-style call sites read naturally.
    pub fn is_len_zero(&self) -> bool {
        self.is_empty()
    }

    /// Intersection of two intervals.
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// Smallest interval containing both operands (convex hull).
    pub fn hull(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Multiplies the interval by a constant (handles negative factors).
    pub fn scale(&self, k: i64) -> Interval {
        if self.is_empty() {
            return Interval::empty();
        }
        let a = self.lo.saturating_mul(k);
        let b = self.hi.saturating_mul(k);
        Interval::new(a.min(b), a.max(b))
    }

    /// Adds a constant to both bounds.
    pub fn shift(&self, k: i64) -> Interval {
        if self.is_empty() {
            return Interval::empty();
        }
        Interval::new(self.lo.saturating_add(k), self.hi.saturating_add(k))
    }

    /// Negates the interval.
    pub fn neg(&self) -> Interval {
        self.scale(-1)
    }

    /// Tightest interval for `x / k` (integer solutions of `k * x ∈ self`).
    ///
    /// Used when solving `k * δ = rest` for the unknown `δ`: the result is
    /// `[ceil(lo / k), floor(hi / k)]`, adjusted for the sign of `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn div_exact_solutions(&self, k: i64) -> Interval {
        assert!(k != 0, "divisor must be non-zero");
        if self.is_empty() {
            return Interval::empty();
        }
        let (lo, hi) = if k > 0 {
            (div_ceil(self.lo, k), div_floor(self.hi, k))
        } else {
            (div_ceil(self.hi, k), div_floor(self.lo, k))
        };
        Interval::new(lo, hi)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "∅")
        } else if self.is_point() {
            write!(f, "{{{}}}", self.lo)
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

impl std::ops::Add for Interval {
    type Output = Interval;
    fn add(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::empty();
        }
        Interval::new(
            self.lo.saturating_add(rhs.lo),
            self.hi.saturating_add(rhs.hi),
        )
    }
}

impl std::ops::Sub for Interval {
    type Output = Interval;
    fn sub(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::empty();
        }
        Interval::new(
            self.lo.saturating_sub(rhs.hi),
            self.hi.saturating_sub(rhs.lo),
        )
    }
}

/// Floor division on `i64` (rounds towards negative infinity); the single
/// overflowing case `(i64::MIN, -1)` saturates to `i64::MAX`.
pub fn div_floor(a: i64, b: i64) -> i64 {
    let Some(q) = a.checked_div(b) else {
        return i64::MAX;
    };
    let r = a % b;
    if (r != 0) && ((r < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division on `i64` (rounds towards positive infinity); the single
/// overflowing case `(i64::MIN, -1)` saturates to `i64::MAX`.
pub fn div_ceil(a: i64, b: i64) -> i64 {
    let Some(q) = a.checked_div(b) else {
        return i64::MAX;
    };
    let r = a % b;
    if (r != 0) && ((r < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

/// Mathematical modulus with result in `[0, |b|)`.
pub fn mod_floor(a: i64, b: i64) -> i64 {
    a - b * div_floor(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_and_empty() {
        assert!(Interval::empty().is_empty());
        assert!(!Interval::point(4).is_empty());
        assert!(Interval::point(4).is_point());
        assert_eq!(Interval::point(4).len(), 1);
        assert_eq!(Interval::empty().len(), 0);
    }

    #[test]
    fn add_sub() {
        let a = Interval::new(-2, 3);
        let b = Interval::new(1, 5);
        assert_eq!(a + b, Interval::new(-1, 8));
        assert_eq!(a - b, Interval::new(-7, 2));
    }

    #[test]
    fn scale_negative() {
        let a = Interval::new(-2, 3);
        assert_eq!(a.scale(-2), Interval::new(-6, 4));
        assert_eq!(a.scale(0), Interval::new(0, 0));
    }

    #[test]
    fn intersect_hull() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 20);
        assert_eq!(a.intersect(&b), Interval::new(5, 10));
        assert_eq!(a.hull(&b), Interval::new(0, 20));
        assert!(a.intersect(&Interval::new(11, 12)).is_empty());
    }

    #[test]
    fn hull_with_empty() {
        let a = Interval::new(2, 4);
        assert_eq!(a.hull(&Interval::empty()), a);
        assert_eq!(Interval::empty().hull(&a), a);
    }

    #[test]
    fn div_solutions_positive_divisor() {
        // 3x ∈ [4, 10]  →  x ∈ [2, 3]
        assert_eq!(
            Interval::new(4, 10).div_exact_solutions(3),
            Interval::new(2, 3)
        );
        // 3x ∈ [4, 5]  →  empty
        assert!(Interval::new(4, 5).div_exact_solutions(3).is_empty());
    }

    #[test]
    fn div_solutions_negative_divisor() {
        // -2x ∈ [2, 7]  →  x ∈ [-3, -1]
        assert_eq!(
            Interval::new(2, 7).div_exact_solutions(-2),
            Interval::new(-3, -1)
        );
    }

    #[test]
    fn floor_ceil_mod() {
        assert_eq!(div_floor(7, 2), 3);
        assert_eq!(div_floor(-7, 2), -4);
        assert_eq!(div_ceil(7, 2), 4);
        assert_eq!(div_ceil(-7, 2), -3);
        assert_eq!(mod_floor(-7, 3), 2);
        assert_eq!(mod_floor(7, 3), 1);
    }
}
