//! Legality of tiling and parallelization transformations (§5.2.1).
//!
//! The paper validates a transformation by checking that every dependence's
//! distance stays lexicographically non-negative under the tiled schedule
//! `(…, ⌊i₁/K₁⌋, …, ⌊i_L/K_L⌋, i₁ mod K₁, …, i_L mod K_L, …)`. This module
//! provides three checks:
//!
//! * [`is_level_parallel`] — the paper's rule that a level can be
//!   parallelized iff every active dependence has distance exactly zero there;
//! * [`is_level_parallel_with_reductions`] — the same rule, except that
//!   reduction-marked dependences are exempt (legal once the accumulator is
//!   privatized per thread group and partials are combined afterwards);
//! * [`tilable_prefix`] — the K-independent top-down test used to build the
//!   loop tree (§3.3): a prefix band of component levels can be rectangularly
//!   tiled for *any* tile sizes iff every active dependence distance is
//!   non-negative on every banded level;
//! * [`verify_tiling`] — a per-`K` verification that enumerates the feasible
//!   `(floor, mod)` decompositions of each distance, used to cross-check the
//!   two fast rules in tests.
//!
//! Levels beyond a dependence's distance vector do not constrain it (the
//! endpoints do not share those loops). That out-of-range convention is
//! defined once, by [`Dependence::dist_at`] returning `[0, 0]` past the
//! vector end — every check here queries distances through it rather than
//! re-deciding the fallback inline.

use crate::dependence::Dependence;
use crate::interval::{div_floor, Interval};

/// Returns `true` if the dependence is *active within one execution* of a
/// component whose outermost level sits at shared-prefix position
/// `component_start`: all distances strictly above the component must be able
/// to be zero, and any dependence carried strictly above the component is a
/// barrier-separated inter-execution dependence.
pub fn is_active_within(dep: &Dependence, component_start: usize) -> bool {
    match dep.carry {
        crate::dependence::Carry::Level(l) if l < component_start => false,
        _ => dep.dist.iter().take(component_start).all(|d| d.contains(0)),
    }
}

/// The paper's parallelization rule (§5.2.1): shared-prefix level `level` can
/// be parallelized iff every dependence in `deps` has distance exactly `[0,0]`
/// at that level. Levels beyond a dependence's shared prefix are unconstrained
/// by it — [`Dependence::dist_at`] yields `[0,0]` there, which passes.
pub fn is_level_parallel<'a, I>(deps: I, level: usize) -> bool
where
    I: IntoIterator<Item = &'a Dependence>,
{
    deps.into_iter().all(|d| d.dist_at(level).is_zero())
}

/// Reduction-aware variant of [`is_level_parallel`]: dependences carrying a
/// [`Dependence::reduction`] marker are exempt from the zero-distance rule,
/// because privatizing the accumulator per thread group and combining the
/// partials afterwards removes the ordering they encode. All other
/// dependences — including unmarked readers of the running partial —
/// constrain the level exactly as in the paper's rule. Callers must only use
/// this when they actually privatize (the marker alone does not make the
/// original shared-accumulator schedule legal).
pub fn is_level_parallel_with_reductions<'a, I>(deps: I, level: usize) -> bool
where
    I: IntoIterator<Item = &'a Dependence>,
{
    deps.into_iter()
        .all(|d| d.reduction.is_some() || d.dist_at(level).is_zero())
}

/// Length of the longest prefix of `levels` (shared-prefix positions,
/// outermost first) that can be rectangularly tiled with arbitrary tile
/// sizes: every dependence must have a non-negative distance at each banded
/// level. Levels past the returned length must be folded into the leaf
/// (§3.3). Out-of-range levels are unconstrained, via [`Dependence::dist_at`]
/// (its `[0,0]` is non-negative).
pub fn tilable_prefix(deps: &[&Dependence], levels: &[usize]) -> usize {
    for (i, &lv) in levels.iter().enumerate() {
        let ok = deps.iter().all(|d| {
            let iv = d.dist_at(lv);
            iv.is_empty() || iv.lo >= 0
        });
        if !ok {
            return i;
        }
    }
    levels.len()
}

/// A violation found by [`verify_tiling`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TilingViolation {
    /// Source statement of the violated dependence.
    pub src: usize,
    /// Sink statement of the violated dependence.
    pub dst: usize,
    /// The offending distance assignment over the banded levels (one entry
    /// per banded level: the original distance value chosen).
    pub witness: Vec<i64>,
}

/// Verifies a concrete rectangular tiling of a band of levels.
///
/// `levels` are shared-prefix positions (outermost first) and `tile_sizes`
/// the corresponding tile sizes `K`. For each dependence, the check
/// enumerates the feasible `(⌊·/K⌋ difference, mod difference)` pairs of every
/// exact distance component (interval components are handled conservatively)
/// and reports a violation if the transformed distance
/// `(tile diffs…, mod diffs…)` can be lexicographically negative.
///
/// This is conservative: `Ok(())` guarantees legality for the modelled
/// dependences; `Err` may occasionally be a false alarm for interval
/// distances.
pub fn verify_tiling(
    deps: &[&Dependence],
    levels: &[usize],
    tile_sizes: &[i64],
) -> Result<(), TilingViolation> {
    assert_eq!(levels.len(), tile_sizes.len());
    for dep in deps {
        // Gather per-level decomposition candidates. Levels beyond the
        // dependence's shared prefix do not constrain it (the endpoints do
        // not share those loops): the band is truncated there rather than
        // fabricating an exact zero distance.
        let mut per_level: Vec<Vec<(Interval, Interval)>> = Vec::with_capacity(levels.len());
        for (&lv, &k) in levels.iter().zip(tile_sizes) {
            if lv >= dep.dist.len() {
                break;
            }
            let d = dep.dist_at(lv);
            if d.is_empty() {
                per_level.clear();
                break;
            }
            per_level.push(decompositions(d, k));
        }
        if per_level.is_empty() {
            continue;
        }
        // DFS over candidate combinations: a combination is a vector of
        // (tile-diff, mod-diff) interval pairs; the transformed distance is
        // (tile diffs…, mod diffs…). Search for any lex-negative possibility.
        let mut combo: Vec<(Interval, Interval)> = Vec::with_capacity(levels.len());
        if let Some(witness) = search_violation(&per_level, &mut combo) {
            return Err(TilingViolation {
                src: dep.src,
                dst: dep.dst,
                witness,
            });
        }
    }
    Ok(())
}

/// Feasible `(tile diff, mod diff)` pairs of a distance interval under tile
/// size `k`. Exact distances give exact pairs; intervals enumerate the
/// (small) range of tile diffs with the per-diff feasible mod interval,
/// falling back to one conservative box when the range is wide.
fn decompositions(d: Interval, k: i64) -> Vec<(Interval, Interval)> {
    assert!(k >= 1);
    if d.is_point() {
        let v = d.lo;
        let t_lo = div_floor(v, k);
        let t_hi = div_floor(v + k - 1, k);
        return (t_lo..=t_hi)
            .map(|t| (Interval::point(t), Interval::point(v - k * t)))
            .collect();
    }
    let t_lo = div_floor(d.lo, k);
    let t_hi = div_floor(d.hi + k - 1, k);
    if t_hi - t_lo <= 8 {
        // Per tile diff `t`, the feasible original distances are
        // δ ∈ [k·t - (k-1), k·t + (k-1)] ∩ d, and mod diff = δ - k·t.
        return (t_lo..=t_hi)
            .filter_map(|t| {
                let feas = Interval::new(k * t - (k - 1), k * t + (k - 1)).intersect(&d);
                if feas.is_empty() {
                    None
                } else {
                    Some((Interval::point(t), feas.shift(-k * t)))
                }
            })
            .collect();
    }
    let m_lo = (-(k - 1)).max(d.lo - k * t_hi);
    let m_hi = (k - 1).min(d.hi - k * t_lo);
    vec![(
        Interval::new(t_lo, t_hi),
        Interval::new(m_lo.min(m_hi), m_hi.max(m_lo)),
    )]
}

/// Depth-first search over decomposition combinations for a lex-negative
/// transformed distance. Returns a witness: the chosen tile-diff lower bound
/// per banded level.
fn search_violation(
    per_level: &[Vec<(Interval, Interval)>],
    combo: &mut Vec<(Interval, Interval)>,
) -> Option<Vec<i64>> {
    if combo.len() == per_level.len() {
        let mut dims: Vec<Interval> = combo.iter().map(|(t, _)| *t).collect();
        dims.extend(combo.iter().map(|(_, m)| *m));
        if can_be_lex_negative(&dims) {
            return Some(combo.iter().map(|(t, _)| t.lo).collect());
        }
        return None;
    }
    for cand in &per_level[combo.len()] {
        combo.push(*cand);
        if let Some(w) = search_violation(per_level, combo) {
            combo.pop();
            return Some(w);
        }
        combo.pop();
    }
    None
}

/// Returns `true` if a vector drawn from the given interval dimensions can be
/// lexicographically negative (first non-zero component negative), assuming
/// dimensions are independent.
pub fn can_be_lex_negative(dims: &[Interval]) -> bool {
    for d in dims {
        if d.is_empty() {
            return false;
        }
        if d.lo > 0 {
            // First component is strictly positive: definitely lex-positive.
            return false;
        }
        if d.lo < 0 {
            // Prefix can be zero (loop invariant) and this one negative.
            return true;
        }
        // d.lo == 0: this component can be zero; if it must be positive when
        // non-zero we still continue with the zero choice.
        if !d.contains(0) {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependence::{Carry, DepKind, Dependence, ReduceOp};

    fn dep(dist: Vec<Interval>, carry: Carry) -> Dependence {
        let shared = (0..dist.len()).collect();
        Dependence {
            src: 0,
            dst: 0,
            array: 0,
            src_access: 0,
            dst_access: 0,
            kind: DepKind::Flow,
            carry,
            dist,
            shared,
            reduction: None,
        }
    }

    #[test]
    fn lex_negative_detection() {
        assert!(!can_be_lex_negative(&[
            Interval::point(1),
            Interval::point(-5)
        ]));
        assert!(can_be_lex_negative(&[
            Interval::point(0),
            Interval::point(-1)
        ]));
        assert!(can_be_lex_negative(&[
            Interval::new(0, 2),
            Interval::new(-3, 1)
        ]));
        assert!(!can_be_lex_negative(&[
            Interval::new(1, 2),
            Interval::new(-3, 1)
        ]));
        assert!(!can_be_lex_negative(&[
            Interval::point(0),
            Interval::point(0)
        ]));
    }

    #[test]
    fn parallel_requires_zero_distance() {
        let d1 = dep(vec![Interval::zero(), Interval::point(1)], Carry::Level(1));
        let deps = [d1];
        assert!(is_level_parallel(deps.iter(), 0));
        assert!(!is_level_parallel(deps.iter(), 1));
    }

    #[test]
    fn out_of_range_levels_are_unconstrained() {
        // Mismatched-depth vectors: a 1-deep dependence queried at deeper
        // levels must not constrain them. The fallback is `dist_at`'s
        // missing-means-zero convention — zero is parallel-compatible and
        // non-negative, so both checks pass past the vector end.
        let shallow = dep(vec![Interval::point(1)], Carry::Level(0));
        let deep = dep(
            vec![Interval::zero(), Interval::zero(), Interval::point(-1)],
            Carry::Level(2),
        );
        let deps = [shallow, deep];
        // Level 1: shallow is out of range (passes), deep is zero (passes).
        assert!(is_level_parallel(deps.iter(), 1));
        // Level 2: shallow is out of range, deep has distance -1.
        assert!(!is_level_parallel(deps.iter(), 2));
        // Way past every vector: vacuously parallel.
        assert!(is_level_parallel(deps.iter(), 17));
        // tilable_prefix sees the same convention: the band stops at the
        // negative in-range distance, never at an out-of-range level.
        let refs = [&deps[0], &deps[1]];
        assert_eq!(tilable_prefix(&refs, &[1, 2, 3]), 1);
        assert_eq!(tilable_prefix(&refs, &[1, 3, 4]), 3);
    }

    #[test]
    fn reduction_marked_deps_are_exempt() {
        let mut red = dep(vec![Interval::zero(), Interval::point(1)], Carry::Level(1));
        red.reduction = Some(ReduceOp::Add);
        let blocking = dep(vec![Interval::zero(), Interval::point(1)], Carry::Level(1));

        // The marker alone legalizes the level…
        let only_red = [red.clone()];
        assert!(!is_level_parallel(only_red.iter(), 1));
        assert!(is_level_parallel_with_reductions(only_red.iter(), 1));

        // …but an unmarked dependence at the same level still blocks.
        let mixed = [red, blocking];
        assert!(!is_level_parallel_with_reductions(mixed.iter(), 1));
    }

    #[test]
    fn tilable_prefix_stops_at_negative() {
        // CNN-like: carried at c (index 1) with r distance spanning negatives.
        let d = dep(
            vec![Interval::zero(), Interval::new(1, 95), Interval::new(-2, 2)],
            Carry::Level(1),
        );
        let deps_vec = [&d];
        assert_eq!(tilable_prefix(&deps_vec, &[0, 1, 2]), 2);
        assert_eq!(tilable_prefix(&deps_vec, &[0, 1]), 2);
        assert_eq!(tilable_prefix(&deps_vec, &[0]), 1);
    }

    #[test]
    fn verify_tiling_accepts_legal_band() {
        // Reduction carried at level 1 with distance 1; tiling both levels
        // with any K is legal (distances non-negative).
        let d = dep(vec![Interval::zero(), Interval::point(1)], Carry::Level(1));
        let deps_vec = [&d];
        assert!(verify_tiling(&deps_vec, &[0, 1], &[3, 4]).is_ok());
    }

    #[test]
    fn verify_tiling_rejects_negative_inner() {
        // Distance (1, -2): tiling both levels can reorder illegally
        // (tile diff (0, -1) is feasible for K = (4, 2)).
        let d = dep(
            vec![Interval::point(1), Interval::point(-2)],
            Carry::Level(0),
        );
        let deps_vec = [&d];
        assert!(verify_tiling(&deps_vec, &[0, 1], &[4, 2]).is_err());
        // With K = 1 on the first level the tile diff equals the distance and
        // is always >= 1, so the tiling is legal.
        assert!(verify_tiling(&deps_vec, &[0, 1], &[1, 2]).is_ok());
    }

    #[test]
    fn verify_tiling_single_tile_is_legal() {
        // K = N (one tile) reduces to the original schedule.
        let d = dep(
            vec![Interval::point(1), Interval::point(-2)],
            Carry::Level(0),
        );
        let deps_vec = [&d];
        assert!(verify_tiling(&deps_vec, &[0, 1], &[100, 100]).is_err());
        // Tiling only the carrying level keeps mods ordered by the original
        // schedule suffix; our verifier sees (tile diff >= 0, mod) and the
        // mod of level 0 is positive whenever the tile diff is zero.
        assert!(verify_tiling(&deps_vec, &[0], &[1]).is_ok());
    }

    #[test]
    fn active_within_component() {
        let carried_outer = dep(
            vec![Interval::point(2), Interval::point(0)],
            Carry::Level(0),
        );
        let equal_outer = dep(vec![Interval::zero(), Interval::point(3)], Carry::Level(1));
        assert!(!is_active_within(&carried_outer, 1));
        assert!(is_active_within(&equal_outer, 1));
        assert!(is_active_within(&carried_outer, 0));
    }
}
