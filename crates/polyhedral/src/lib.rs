//! Polyhedral substrate for the PREM nested-loop compiler.
//!
//! This crate is the reproduction's replacement for the isl/pet/PPCG stack
//! used by *"Optimizing parallel PREM compilation over nested loop
//! structures"* (Gu & Pellizzoni, DAC 2022). It implements exactly the slice
//! of polyhedral machinery the paper's restricted program class needs
//! (§3.2: constant-bound, uniform-stride loop nests with affine accesses and
//! affine guards):
//!
//! * [`AffExpr`] — affine expressions over normalized loop counters, with
//!   exact bound analysis over rectangular domains;
//! * [`StmtPoly`] — per-statement domains, guards, textual positions and
//!   access relations;
//! * [`analyze_dependences`] — dependence analysis producing
//!   lexicographically decomposed distance boxes ([`Dependence`]);
//! * [`legality`] — parallelization and rectangular-tiling legality checks
//!   (§5.2.1);
//! * [`access_hull`] — rectangular hulls of accessed regions, the *canonical
//!   data element ranges* of §5.3.1.
//!
//! # Example
//!
//! ```
//! use prem_polyhedral::{
//!     analyze_dependences, is_level_parallel, AccessInfo, AffExpr, LoopInfo, StmtPoly,
//! };
//!
//! // for i { for j { c[i] = c[i] + a[i][j] * b[j]; } }
//! let stmt = StmtPoly {
//!     id: 0,
//!     loops: vec![LoopInfo::new(0, 100), LoopInfo::new(1, 100)],
//!     guards: vec![],
//!     position: vec![0, 0, 0],
//!     accesses: vec![
//!         AccessInfo::read(0, vec![AffExpr::var(0, 2)]),
//!         AccessInfo::write(0, vec![AffExpr::var(0, 2)]),
//!         AccessInfo::read(1, vec![AffExpr::var(0, 2), AffExpr::var(1, 2)]),
//!         AccessInfo::read(2, vec![AffExpr::var(1, 2)]),
//!     ],
//! };
//! let deps = analyze_dependences(std::slice::from_ref(&stmt));
//! assert!(is_level_parallel(deps.iter(), 0)); // i is parallel
//! assert!(!is_level_parallel(deps.iter(), 1)); // j carries the reduction
//! ```

#![warn(missing_docs)]

pub mod affine;
pub mod dependence;
pub mod domain;
pub mod hull;
pub mod interval;
pub mod legality;

pub use affine::{AffExpr, RemapError};
pub use dependence::{
    analyze_dependences, analyze_dependences_with, Carry, DepKind, Dependence, ReduceOp,
    ReductionHints,
};
pub use domain::{AccessInfo, CmpKind, Guard, LoopInfo, StmtPoly};
pub use hull::{access_hull, ranges_overlap, shape, union_hull, volume};
pub use interval::{div_ceil, div_floor, mod_floor, Interval};
pub use legality::{
    can_be_lex_negative, is_active_within, is_level_parallel, is_level_parallel_with_reductions,
    tilable_prefix, verify_tiling, TilingViolation,
};
