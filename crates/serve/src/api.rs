//! Request validation and response construction for the `/optimize` endpoint.
//!
//! Every request is reduced to a **canonical key** — the compact serialization
//! of the fully-resolved request (defaults spelled out, params sorted) — so
//! that semantically identical requests coalesce onto one computation
//! regardless of key order or which defaults the client spelled out.

use prem_core::{AppOutcome, OptimizerOptions, Platform};
use prem_ir::Program;
use prem_obs::{Json, PhaseTimings};

/// Largest kernel source the server will hand to the frontend parser.
pub const MAX_SOURCE_BYTES: usize = 256 * 1024;

/// A validation failure with the HTTP status it should be reported as.
#[derive(Debug)]
pub struct ApiError {
    /// HTTP status (400 for non-JSON, 422 for schema/semantic violations).
    pub status: u16,
    /// Human-readable description, echoed to the client.
    pub message: String,
}

impl ApiError {
    /// Builds an error with `status` and `message`.
    pub fn new(status: u16, message: impl Into<String>) -> ApiError {
        ApiError {
            status,
            message: message.into(),
        }
    }

    fn invalid(message: impl Into<String>) -> ApiError {
        ApiError::new(422, message)
    }
}

/// Serializes the structured error body `{"error":{"status":…,"message":…}}`.
pub fn error_body(status: u16, message: &str) -> String {
    Json::obj::<&str, Json>([(
        "error",
        Json::obj::<&str, Json>([
            ("status", Json::Num(f64::from(status))),
            ("message", Json::from(message)),
        ]),
    )])
    .to_compact()
}

/// The structured `503 Service Unavailable` body for a full compute queue:
/// the machine-readable `retry_after_s` mirrors the `Retry-After` header so
/// clients that only look at bodies still see the backoff hint.
pub fn overload_body(retry_after_s: u64) -> String {
    Json::obj::<&str, Json>([(
        "error",
        Json::obj::<&str, Json>([
            ("status", Json::Num(503.0)),
            (
                "message",
                Json::from("compute queue is full; retry after retry_after_s seconds"),
            ),
            ("retry_after_s", Json::Num(retry_after_s as f64)),
        ]),
    )])
    .to_compact()
}

/// Which kernel the request targets.
#[derive(Debug, Clone)]
pub enum KernelSpec {
    /// One of the bundled PolyBench-NN kernels by name.
    Builtin {
        /// Kernel name (`cnn`, `lstm`, …).
        name: String,
        /// Use the paper's LARGE problem size instead of the test size.
        large: bool,
    },
    /// A kernel in the frontend's source language, parsed per request.
    Source {
        /// Program name (becomes the generated C entry point's prefix).
        name: String,
        /// Kernel source text.
        source: String,
        /// Named parameter bindings, sorted by name.
        params: Vec<(String, i64)>,
    },
}

/// A fully validated `/optimize` request.
#[derive(Debug, Clone)]
pub struct OptimizeRequest {
    /// The kernel to optimize.
    pub kernel: KernelSpec,
    /// Display name of the kernel (echoed in the response).
    pub kernel_name: String,
    /// Target platform (defaults overridden by the `platform` object).
    pub platform: Platform,
    /// Optimizer options (the server enables `adaptive` + `batched` by
    /// default, matching the bench harness; `analysis_cache` is attached by
    /// the server, never by the client).
    pub options: OptimizerOptions,
    /// Canonical compact-JSON key identifying this computation.
    pub canonical: String,
}

fn check_keys(pairs: &[(String, Json)], allowed: &[&str], ctx: &str) -> Result<(), ApiError> {
    for (key, _) in pairs {
        if !allowed.contains(&key.as_str()) {
            return Err(ApiError::invalid(format!(
                "unknown field {key:?} in {ctx} (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

fn int_field(value: &Json, name: &str, lo: i64, hi: i64) -> Result<i64, ApiError> {
    let x = value
        .as_f64()
        .ok_or_else(|| ApiError::invalid(format!("{name} must be a number")))?;
    if !x.is_finite() || x.fract() != 0.0 || !(-9.0e15..=9.0e15).contains(&x) {
        return Err(ApiError::invalid(format!("{name} must be an integer")));
    }
    let x = x as i64;
    if !(lo..=hi).contains(&x) {
        return Err(ApiError::invalid(format!(
            "{name} must be between {lo} and {hi}, got {x}"
        )));
    }
    Ok(x)
}

fn ident(s: &str, what: &str) -> Result<(), ApiError> {
    let mut chars = s.chars();
    let head_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    if !head_ok || s.len() > 64 || !chars.all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(ApiError::invalid(format!(
            "{what} must be an identifier of at most 64 characters, got {s:?}"
        )));
    }
    Ok(())
}

/// Names of the bundled kernels.
pub fn builtin_names() -> Vec<&'static str> {
    prem_kernels::all_small()
        .into_iter()
        .map(|(name, _)| name)
        .collect()
}

fn parse_kernel_spec(kernel: &Json) -> Result<KernelSpec, ApiError> {
    let Json::Obj(pairs) = kernel else {
        return Err(ApiError::invalid("\"kernel\" must be an object"));
    };
    if kernel.get("builtin").is_some() {
        check_keys(pairs, &["builtin", "size"], "\"kernel\"")?;
        let name = kernel
            .get("builtin")
            .and_then(Json::as_str)
            .ok_or_else(|| ApiError::invalid("\"builtin\" must be a string"))?;
        let known = builtin_names();
        if !known.contains(&name) {
            return Err(ApiError::invalid(format!(
                "unknown builtin kernel {name:?} (available: {})",
                known.join(", ")
            )));
        }
        let large = match kernel.get("size").map(|s| s.as_str()) {
            None => false,
            Some(Some("small")) => false,
            Some(Some("large")) => true,
            Some(_) => {
                return Err(ApiError::invalid("\"size\" must be \"small\" or \"large\""));
            }
        };
        Ok(KernelSpec::Builtin {
            name: name.to_string(),
            large,
        })
    } else if kernel.get("source").is_some() {
        check_keys(pairs, &["name", "source", "params"], "\"kernel\"")?;
        let source = kernel
            .get("source")
            .and_then(Json::as_str)
            .ok_or_else(|| ApiError::invalid("\"source\" must be a string"))?;
        if source.len() > MAX_SOURCE_BYTES {
            return Err(ApiError::invalid(format!(
                "kernel source exceeds the {MAX_SOURCE_BYTES}-byte limit"
            )));
        }
        let name = match kernel.get("name") {
            None => "kernel".to_string(),
            Some(n) => {
                let n = n
                    .as_str()
                    .ok_or_else(|| ApiError::invalid("kernel \"name\" must be a string"))?;
                ident(n, "kernel \"name\"")?;
                n.to_string()
            }
        };
        let mut params: Vec<(String, i64)> = Vec::new();
        if let Some(pv) = kernel.get("params") {
            let Json::Obj(ppairs) = pv else {
                return Err(ApiError::invalid("\"params\" must be an object"));
            };
            for (pname, pval) in ppairs {
                ident(pname, "parameter name")?;
                let v = int_field(pval, &format!("parameter {pname:?}"), -(1 << 40), 1 << 40)?;
                if params.iter().any(|(existing, _)| existing == pname) {
                    return Err(ApiError::invalid(format!("duplicate parameter {pname:?}")));
                }
                params.push((pname.clone(), v));
            }
            params.sort();
        }
        Ok(KernelSpec::Source {
            name,
            source: source.to_string(),
            params,
        })
    } else {
        Err(ApiError::invalid(
            "\"kernel\" needs either \"builtin\" or \"source\"",
        ))
    }
}

/// Validates a request body into an [`OptimizeRequest`].
///
/// # Errors
///
/// 400 when the body is not JSON at all, 422 for any schema or semantic
/// violation (unknown fields, wrong types, out-of-range values, unknown
/// builtin kernels).
pub fn parse_optimize_request(body: &str) -> Result<OptimizeRequest, ApiError> {
    let json = Json::parse(body)
        .map_err(|e| ApiError::new(400, format!("request is not valid JSON: {e}")))?;
    let Json::Obj(top) = &json else {
        return Err(ApiError::invalid("request must be a JSON object"));
    };
    check_keys(top, &["kernel", "platform", "options"], "the request")?;
    let kernel_value = json
        .get("kernel")
        .ok_or_else(|| ApiError::invalid("missing required field \"kernel\""))?;
    let kernel = parse_kernel_spec(kernel_value)?;
    let kernel_name = match &kernel {
        KernelSpec::Builtin { name, .. } => name.clone(),
        KernelSpec::Source { name, .. } => name.clone(),
    };

    let mut platform = Platform::default();
    if let Some(p) = json.get("platform") {
        let Json::Obj(pairs) = p else {
            return Err(ApiError::invalid("\"platform\" must be an object"));
        };
        check_keys(pairs, &["cores", "spm_kib", "bus_gbytes"], "\"platform\"")?;
        if let Some(v) = p.get("cores") {
            platform.cores = int_field(v, "\"cores\"", 1, 1024)? as usize;
        }
        if let Some(v) = p.get("spm_kib") {
            platform.spm_bytes = int_field(v, "\"spm_kib\"", 1, 1 << 20)? * 1024;
        }
        if let Some(v) = p.get("bus_gbytes") {
            let x = v
                .as_f64()
                .ok_or_else(|| ApiError::invalid("\"bus_gbytes\" must be a number"))?;
            if !x.is_finite() || x <= 0.0 || x > 1.0e6 {
                return Err(ApiError::invalid(
                    "\"bus_gbytes\" must be a positive number of at most 1e6",
                ));
            }
            platform.bus_bytes_per_sec = x * 1.0e9;
        }
    }

    let mut options = OptimizerOptions {
        adaptive: true,
        batched: true,
        ..OptimizerOptions::default()
    };
    if let Some(o) = json.get("options") {
        let Json::Obj(pairs) = o else {
            return Err(ApiError::invalid("\"options\" must be an object"));
        };
        check_keys(
            pairs,
            &["max_iter", "seed", "adaptive", "batched"],
            "\"options\"",
        )?;
        if let Some(v) = o.get("max_iter") {
            options.max_iter = int_field(v, "\"max_iter\"", 1, 64)? as usize;
        }
        if let Some(v) = o.get("seed") {
            options.seed = int_field(v, "\"seed\"", 0, 1 << 53)? as u64;
        }
        if let Some(v) = o.get("adaptive") {
            options.adaptive = v
                .as_bool()
                .ok_or_else(|| ApiError::invalid("\"adaptive\" must be a boolean"))?;
        }
        if let Some(v) = o.get("batched") {
            options.batched = v
                .as_bool()
                .ok_or_else(|| ApiError::invalid("\"batched\" must be a boolean"))?;
        }
    }

    let kernel_json = match &kernel {
        KernelSpec::Builtin { name, large } => Json::obj::<&str, Json>([
            ("builtin", Json::from(name.as_str())),
            ("size", Json::from(if *large { "large" } else { "small" })),
        ]),
        KernelSpec::Source {
            name,
            source,
            params,
        } => Json::obj::<&str, Json>([
            ("name", Json::from(name.as_str())),
            ("source", Json::from(source.as_str())),
            (
                "params",
                Json::Obj(
                    params
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(*v)))
                        .collect(),
                ),
            ),
        ]),
    };
    let canonical = Json::obj::<&str, Json>([
        ("kernel", kernel_json),
        (
            "platform",
            Json::obj::<&str, Json>([
                ("cores", Json::from(platform.cores)),
                ("spm_bytes", Json::from(platform.spm_bytes)),
                ("bus_bytes_per_sec", Json::from(platform.bus_bytes_per_sec)),
            ]),
        ),
        (
            "options",
            Json::obj::<&str, Json>([
                ("max_iter", Json::from(options.max_iter)),
                ("seed", Json::Num(options.seed as f64)),
                ("adaptive", Json::from(options.adaptive)),
                ("batched", Json::from(options.batched)),
            ]),
        ),
    ])
    .to_compact();

    Ok(OptimizeRequest {
        kernel,
        kernel_name,
        platform,
        options,
        canonical,
    })
}

/// Materializes the request's program: a bundled kernel, or the frontend
/// parse of the submitted source (panic-free — malformed source is a 422).
///
/// # Errors
///
/// 422 when the submitted source does not parse.
pub fn build_program(req: &OptimizeRequest) -> Result<Program, ApiError> {
    match &req.kernel {
        KernelSpec::Builtin { name, large } => {
            let set = if *large {
                prem_kernels::all_large()
            } else {
                prem_kernels::all_small()
            };
            set.into_iter()
                .find(|(n, _)| n == name)
                .map(|(_, program)| program)
                .ok_or_else(|| ApiError::invalid(format!("unknown builtin kernel {name:?}")))
        }
        KernelSpec::Source {
            name,
            source,
            params,
        } => {
            let params: Vec<(&str, i64)> = params.iter().map(|(k, v)| (k.as_str(), *v)).collect();
            prem_frontend::parse_kernel(name, source, &params)
                .map_err(|e| ApiError::invalid(format!("kernel does not parse: {e}")))
        }
    }
}

/// Builds the `/optimize` response body.
///
/// The `result` sub-object is fully deterministic for a given canonical
/// request (makespans are carried both as a number and as `makespan_bits`,
/// the hex of the f64 bit pattern, for exact comparison); `telemetry` carries
/// wall-clock and shared-cache counters and is *not* deterministic.
pub fn response_body(
    kernel: &str,
    outcome: &AppOutcome,
    generated_c: Option<String>,
    phases: &PhaseTimings,
) -> String {
    let components: Vec<Json> = outcome
        .components
        .iter()
        .map(|c| {
            Json::obj::<&str, Json>([
                (
                    "levels",
                    Json::Arr(
                        c.level_names
                            .iter()
                            .map(|n| Json::from(n.as_str()))
                            .collect(),
                    ),
                ),
                (
                    "k",
                    Json::Arr(c.solution.k.iter().copied().map(Json::from).collect()),
                ),
                (
                    "r",
                    Json::Arr(c.solution.r.iter().copied().map(Json::from).collect()),
                ),
                ("exec_count", Json::Num(c.exec_count as f64)),
                ("makespan_ns", Json::from(c.result.makespan_ns)),
                ("exec_ns", Json::from(c.result.exec_ns)),
                ("api_ns", Json::from(c.result.api_ns)),
                ("mem_ns", Json::from(c.result.mem_ns)),
                ("bytes", Json::from(c.result.bytes)),
                ("ops", Json::from(c.result.ops)),
                ("spm_bytes", Json::from(c.result.spm_bytes)),
            ])
        })
        .collect();
    let result = Json::obj::<&str, Json>([
        ("kernel", Json::from(kernel)),
        ("feasible", Json::from(outcome.makespan_ns.is_finite())),
        ("makespan_ns", Json::from(outcome.makespan_ns)),
        (
            "makespan_bits",
            Json::from(format!("{:016x}", outcome.makespan_ns.to_bits())),
        ),
        ("components", Json::Arr(components)),
        (
            "generated_c",
            generated_c.map(Json::Str).unwrap_or(Json::Null),
        ),
    ]);
    let telemetry = Json::obj::<&str, Json>([
        ("search", outcome.search_totals().to_json(false)),
        ("phases", phases.to_json()),
    ]);
    Json::obj::<&str, Json>([("result", result), ("telemetry", telemetry)]).to_compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_request_parses_and_canonicalizes() {
        let a = parse_optimize_request(r#"{"kernel":{"builtin":"cnn"}}"#).unwrap();
        // Same request with defaults spelled out and keys reordered.
        let b = parse_optimize_request(
            r#"{"options":{"batched":true,"adaptive":true,"seed":24301,"max_iter":3},
                "kernel":{"size":"small","builtin":"cnn"},
                "platform":{"cores":8,"spm_kib":128,"bus_gbytes":16}}"#,
        )
        .unwrap();
        assert_eq!(a.canonical, b.canonical);
        assert_eq!(a.kernel_name, "cnn");
        assert_eq!(a.platform.cores, 8);
        assert!(a.options.adaptive && a.options.batched);
    }

    #[test]
    fn unknown_fields_are_rejected() {
        for body in [
            r#"{"kernel":{"builtin":"cnn"},"junk":1}"#,
            r#"{"kernel":{"builtin":"cnn","oops":true}}"#,
            r#"{"kernel":{"builtin":"cnn"},"platform":{"cpus":4}}"#,
            r#"{"kernel":{"builtin":"cnn"},"options":{"iterations":9}}"#,
        ] {
            let e = parse_optimize_request(body).unwrap_err();
            assert_eq!(e.status, 422, "{body}");
            assert!(e.message.contains("unknown field"), "{}", e.message);
        }
    }

    #[test]
    fn bad_shapes_are_422_not_panics() {
        for body in [
            r#"[1,2,3]"#,
            r#"{"kernel":7}"#,
            r#"{"kernel":{"builtin":"no-such-kernel"}}"#,
            r#"{"kernel":{"builtin":"cnn","size":"huge"}}"#,
            r#"{"kernel":{"source":"...","name":"1bad"}}"#,
            r#"{"kernel":{"source":"...","params":{"n":1.5}}}"#,
            r#"{"kernel":{"builtin":"cnn"},"platform":{"cores":0}}"#,
            r#"{"kernel":{"builtin":"cnn"},"platform":{"bus_gbytes":-1}}"#,
            r#"{"kernel":{"builtin":"cnn"},"options":{"max_iter":1e9}}"#,
        ] {
            assert_eq!(
                parse_optimize_request(body).unwrap_err().status,
                422,
                "{body}"
            );
        }
        assert_eq!(parse_optimize_request("{nope").unwrap_err().status, 400);
    }

    #[test]
    fn source_params_sort_into_the_canonical_key() {
        let a = parse_optimize_request(
            r#"{"kernel":{"source":"for i in 0..N { }","params":{"N":4,"M":2}}}"#,
        )
        .unwrap();
        let b = parse_optimize_request(
            r#"{"kernel":{"source":"for i in 0..N { }","params":{"M":2,"N":4}}}"#,
        )
        .unwrap();
        assert_eq!(a.canonical, b.canonical);
    }

    #[test]
    fn error_body_is_structured_json() {
        let body = error_body(422, "nope");
        let json = Json::parse(&body).unwrap();
        let err = json.get("error").unwrap();
        assert_eq!(err.get("status").and_then(Json::as_f64), Some(422.0));
        assert_eq!(err.get("message").and_then(Json::as_str), Some("nope"));
    }

    #[test]
    fn overload_body_carries_retry_hint() {
        let json = Json::parse(&overload_body(1)).unwrap();
        let err = json.get("error").unwrap();
        assert_eq!(err.get("status").and_then(Json::as_f64), Some(503.0));
        assert_eq!(err.get("retry_after_s").and_then(Json::as_f64), Some(1.0));
        assert!(err.get("message").and_then(Json::as_str).is_some());
    }
}
