//! Minimal blocking HTTP/1.1 client — enough for the integration tests, the
//! load driver, and the binary's `--smoke` mode.
//!
//! [`Conn`] holds one keep-alive connection and serves sequential requests
//! over it; the free functions ([`request`], [`get`], [`post`]) are one-shot
//! `Connection: close` conveniences on top. Responses are parsed by framing
//! — exactly `Content-Length` body bytes are consumed — so the client works
//! identically against keep-alive and close connections, and surplus bytes
//! (the next pipelined response) stay buffered on the connection.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Lower-cased header names with trimmed values.
    pub headers: Vec<(String, String)>,
    /// Response body (the server always sends UTF-8 JSON).
    pub body: String,
}

impl Response {
    /// First header value matching `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the server will keep the connection open after this response.
    pub fn keep_alive(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"))
    }
}

fn bad(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// A persistent keep-alive connection to the server.
pub struct Conn {
    stream: TcpStream,
    /// Bytes read off the socket but not yet consumed (next response).
    carry: Vec<u8>,
    open: bool,
}

impl Conn {
    /// Connects with the default 120 s I/O timeouts.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        stream.set_write_timeout(Some(Duration::from_secs(120)))?;
        Ok(Conn {
            stream,
            carry: Vec::new(),
            open: true,
        })
    }

    /// Whether the connection is still usable (the server has not answered
    /// `Connection: close`).
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Sends one request on this connection and reads its response.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; malformed responses surface as
    /// `InvalidData`. After an error (or a `Connection: close` response) the
    /// connection is no longer usable — open a new one.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<Response> {
        self.send(method, path, body, true)
    }

    fn send(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        keep_alive: bool,
    ) -> std::io::Result<Response> {
        if !self.open {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "connection was closed by the server",
            ));
        }
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: prem-serve\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            body.len(),
            if keep_alive { "keep-alive" } else { "close" }
        );
        // Single write per request: split head/body writes on a keep-alive
        // socket trip over Nagle + delayed ACK.
        let mut frame = head.into_bytes();
        frame.extend_from_slice(body.as_bytes());
        let sent = self
            .stream
            .write_all(&frame)
            .and_then(|()| self.stream.flush());
        if let Err(e) = sent {
            self.open = false;
            return Err(e);
        }
        match read_response(&mut self.stream, &mut self.carry) {
            Ok(resp) => {
                if !resp.keep_alive() {
                    self.open = false;
                }
                Ok(resp)
            }
            Err(e) => {
                self.open = false;
                Err(e)
            }
        }
    }
}

/// Reads one framed response: headers, then exactly `Content-Length` body
/// bytes. Surplus bytes stay in `carry` for the next response.
fn read_response<R: Read>(stream: &mut R, carry: &mut Vec<u8>) -> std::io::Result<Response> {
    let mut chunk = [0u8; 4096];
    let head_len = loop {
        if let Some(pos) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed before response headers ended"));
        }
        carry.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&carry[..head_len])
        .map_err(|_| bad("response headers are not UTF-8"))?
        .to_string();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("bad status line {status_line:?}")))?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().ok();
            }
            headers.push((name, value));
        }
    }
    let content_length = content_length.ok_or_else(|| bad("response carries no Content-Length"))?;
    let body_end = head_len + 4 + content_length;
    while carry.len() < body_end {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed before the declared body arrived"));
        }
        carry.extend_from_slice(&chunk[..n]);
    }
    let surplus = carry.split_off(body_end);
    let mut consumed = std::mem::replace(carry, surplus);
    let body_bytes = consumed.split_off(head_len + 4);
    let body = String::from_utf8(body_bytes).map_err(|_| bad("response body is not UTF-8"))?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

/// Sends one `Connection: close` request on a fresh connection and reads
/// the full response.
///
/// # Errors
///
/// Propagates socket errors; malformed responses surface as `InvalidData`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<Response> {
    let mut conn = Conn::connect(addr)?;
    conn.send(method, path, body, false)
}

/// `POST path` with a JSON body.
///
/// # Errors
///
/// See [`request`].
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<Response> {
    request(addr, "POST", path, body)
}

/// `GET path`.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<Response> {
    request(addr, "GET", path, "")
}
