//! Minimal blocking HTTP/1.1 client — enough for the integration tests, the
//! load driver, and the binary's `--smoke` mode. One request per connection,
//! mirroring the server's `Connection: close` contract.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Lower-cased header names with trimmed values.
    pub headers: Vec<(String, String)>,
    /// Response body (the server always sends UTF-8 JSON).
    pub body: String,
}

impl Response {
    /// First header value matching `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn bad(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Sends one request and reads the full response.
///
/// # Errors
///
/// Propagates socket errors; malformed responses surface as `InvalidData`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.set_write_timeout(Some(Duration::from_secs(120)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: prem-serve\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw).map_err(|_| bad("response is not UTF-8"))?;
    let (head, rest) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("response has no header/body separator"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("bad status line {status_line:?}")))?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().ok();
            }
            headers.push((name, value));
        }
    }
    let body = match content_length {
        Some(n) if n <= rest.len() => rest[..n].to_string(),
        _ => rest.to_string(),
    };
    Ok(Response {
        status,
        headers,
        body,
    })
}

/// `POST path` with a JSON body.
///
/// # Errors
///
/// See [`request`].
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<Response> {
    request(addr, "POST", path, body)
}

/// `GET path`.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<Response> {
    request(addr, "GET", path, "")
}
