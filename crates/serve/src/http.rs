//! Minimal, bounded HTTP/1.1 message handling over `std` I/O.
//!
//! The server is hermetic (no registry dependencies), so the protocol layer
//! is hand-rolled — but deliberately tiny: one request per connection,
//! `Connection: close`, `Content-Length` bodies only. Everything is bounded:
//! header blocks are capped at [`MAX_HEAD_BYTES`], bodies at the limit the
//! caller passes, and malformed framing surfaces as a structured
//! [`HttpError`] rather than a panic or an unbounded read.

use std::io::Read;
use std::io::Write;

/// Hard cap on the request-line + headers block.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed (bounded) HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method, verbatim (`GET`, `POST`, …).
    pub method: String,
    /// Request target, verbatim (`/optimize`).
    pub target: String,
    /// Raw body bytes (exactly `Content-Length` of them).
    pub body: Vec<u8>,
}

/// A protocol-level failure with the status code it should be reported as.
#[derive(Debug)]
pub struct HttpError {
    /// HTTP status code (400, 413, 501, …).
    pub status: u16,
    /// Human-readable description, safe to echo back to the client.
    pub message: String,
}

impl HttpError {
    /// Builds an error with `status` and `message`.
    pub fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads one request from `stream`, enforcing the header and body caps.
///
/// # Errors
///
/// Returns an [`HttpError`] carrying the status the failure should be
/// reported as: 400 for framing/encoding problems, 413 when the declared
/// body exceeds `max_body`, 501 for `Transfer-Encoding` bodies.
pub fn read_request<R: Read>(stream: &mut R, max_body: usize) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_len = loop {
        if let Some(pos) = head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::new(
                431,
                format!("request headers exceed {MAX_HEAD_BYTES} bytes"),
            ));
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| HttpError::new(400, format!("read failed: {e}")))?;
        if n == 0 {
            return Err(HttpError::new(
                400,
                "connection closed before headers ended",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_len])
        .map_err(|_| HttpError::new(400, "headers are not valid UTF-8"))?
        .to_string();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "request line has no target"))?
        .to_string();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(
            400,
            format!("unsupported protocol version {version:?}"),
        ));
    }
    let mut content_length: usize = 0;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(
                400,
                format!("malformed header line {line:?}"),
            ));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "transfer-encoding" {
            return Err(HttpError::new(
                501,
                "Transfer-Encoding bodies are not supported; send Content-Length",
            ));
        }
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| HttpError::new(400, format!("bad Content-Length {value:?}")))?;
        }
    }
    if content_length > max_body {
        return Err(HttpError::new(
            413,
            format!("body of {content_length} bytes exceeds the {max_body}-byte limit"),
        ));
    }
    let mut body = buf.split_off(head_len + 4);
    if body.len() > content_length {
        return Err(HttpError::new(
            400,
            "request carries more bytes than Content-Length declares",
        ));
    }
    let remaining = content_length - body.len();
    stream
        .by_ref()
        .take(remaining as u64)
        .read_to_end(&mut body)
        .map_err(|e| HttpError::new(400, format!("read failed mid-body: {e}")))?;
    if body.len() != content_length {
        return Err(HttpError::new(
            400,
            "connection closed before the declared body arrived",
        ));
    }
    Ok(Request {
        method,
        target,
        body,
    })
}

/// Canonical reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        504 => "Gateway Timeout",
        _ => "Status",
    }
}

/// Writes a complete `Connection: close` JSON response.
///
/// # Errors
///
/// Propagates I/O errors from the underlying stream.
pub fn write_response<W: Write>(
    stream: &mut W,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()), 1 << 20)
    }

    #[test]
    fn parses_simple_post() {
        let r = parse("POST /optimize HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.target, "/optimize");
        assert_eq!(r.body, b"abcd");
    }

    #[test]
    fn get_without_body() {
        let r = parse("GET /health HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert!(r.body.is_empty());
    }

    #[test]
    fn truncated_body_is_400() {
        let e = parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nab").unwrap_err();
        assert_eq!(e.status, 400);
    }

    #[test]
    fn oversized_body_is_413() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n";
        let e = read_request(&mut Cursor::new(raw.as_bytes().to_vec()), 10).unwrap_err();
        assert_eq!(e.status, 413);
    }

    #[test]
    fn chunked_encoding_is_501() {
        let e = parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(e.status, 501);
    }

    #[test]
    fn unbounded_headers_are_431() {
        let raw = format!(
            "GET / HTTP/1.1\r\nX-Junk: {}\r\n\r\n",
            "a".repeat(64 * 1024)
        );
        let e = parse(&raw).unwrap_err();
        assert_eq!(e.status, 431);
    }

    #[test]
    fn garbage_request_line_is_400() {
        assert_eq!(parse("\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse("GET\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse("GET / SPDY/9\r\n\r\n").unwrap_err().status, 400);
    }
}
