//! Minimal, bounded HTTP/1.1 message handling over `std` I/O.
//!
//! The server is hermetic (no registry dependencies), so the protocol layer
//! is hand-rolled — but deliberately tiny: `Content-Length` bodies only,
//! HTTP/1.1 keep-alive with sequential (pipelined-input) requests per
//! connection. Everything is bounded: header blocks are capped at
//! [`MAX_HEAD_BYTES`], bodies at the limit the caller passes, and malformed
//! framing surfaces as a structured [`HttpError`] rather than a panic or an
//! unbounded read.
//!
//! Because a pipelining client may send the next request's bytes in the same
//! TCP segment as the current one's body, [`read_request`] works against a
//! caller-owned carry buffer: whatever arrives past the current request's
//! body stays in the buffer and seeds the next parse on the same connection.

use std::io::Read;
use std::io::Write;

/// Hard cap on the request-line + headers block.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed (bounded) HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method, verbatim (`GET`, `POST`, …).
    pub method: String,
    /// Request target, verbatim (`/optimize`).
    pub target: String,
    /// Raw body bytes (exactly `Content-Length` of them).
    pub body: Vec<u8>,
    /// Whether the client allows the connection to be reused: HTTP/1.1
    /// unless `Connection: close`, HTTP/1.0 only with
    /// `Connection: keep-alive`.
    pub keep_alive: bool,
}

/// A protocol-level failure with the status code it should be reported as.
#[derive(Debug)]
pub struct HttpError {
    /// HTTP status code (400, 413, 501, …).
    pub status: u16,
    /// Human-readable description, safe to echo back to the client.
    pub message: String,
}

impl HttpError {
    /// Builds an error with `status` and `message`.
    pub fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads one request from `stream`, enforcing the header and body caps.
///
/// `carry` holds bytes already read off this connection but not yet
/// consumed (a pipelining client may batch several requests into one
/// segment); on success the parsed request's bytes are drained from it and
/// any surplus is left for the next call. Returns `Ok(None)` on a clean
/// end-of-connection: EOF or an idle (read-timeout) expiry at a request
/// boundary, i.e. with no partial request buffered.
///
/// # Errors
///
/// Returns an [`HttpError`] carrying the status the failure should be
/// reported as: 400 for framing/encoding problems, 408 for a timeout
/// mid-request, 413 when the declared body exceeds `max_body`, 431 for
/// oversized headers, 501 for `Transfer-Encoding` bodies.
pub fn read_request<R: Read>(
    stream: &mut R,
    carry: &mut Vec<u8>,
    max_body: usize,
) -> Result<Option<Request>, HttpError> {
    let mut chunk = [0u8; 4096];
    let head_len = loop {
        if let Some(pos) = head_end(carry) {
            break pos;
        }
        if carry.len() > MAX_HEAD_BYTES {
            return Err(HttpError::new(
                431,
                format!("request headers exceed {MAX_HEAD_BYTES} bytes"),
            ));
        }
        let n = match stream.read(&mut chunk) {
            Ok(n) => n,
            Err(e) if is_timeout(&e) => {
                if carry.is_empty() {
                    return Ok(None); // idle keep-alive connection: close quietly
                }
                return Err(HttpError::new(408, "connection idled out mid-request"));
            }
            Err(e) => return Err(HttpError::new(400, format!("read failed: {e}"))),
        };
        if n == 0 {
            if carry.is_empty() {
                return Ok(None); // clean close between requests
            }
            return Err(HttpError::new(
                400,
                "connection closed before headers ended",
            ));
        }
        carry.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&carry[..head_len])
        .map_err(|_| HttpError::new(400, "headers are not valid UTF-8"))?
        .to_string();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "request line has no target"))?
        .to_string();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(
            400,
            format!("unsupported protocol version {version:?}"),
        ));
    }
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";
    let mut content_length: usize = 0;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(
                400,
                format!("malformed header line {line:?}"),
            ));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "transfer-encoding" {
            return Err(HttpError::new(
                501,
                "Transfer-Encoding bodies are not supported; send Content-Length",
            ));
        }
        if name == "connection" {
            for token in value.split(',') {
                match token.trim().to_ascii_lowercase().as_str() {
                    "close" => keep_alive = false,
                    "keep-alive" if version == "HTTP/1.0" => keep_alive = true,
                    _ => {}
                }
            }
        }
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| HttpError::new(400, format!("bad Content-Length {value:?}")))?;
        }
    }
    if content_length > max_body {
        return Err(HttpError::new(
            413,
            format!("body of {content_length} bytes exceeds the {max_body}-byte limit"),
        ));
    }
    let body_end = head_len + 4 + content_length;
    while carry.len() < body_end {
        let n = match stream.read(&mut chunk) {
            Ok(n) => n,
            Err(e) if is_timeout(&e) => {
                return Err(HttpError::new(408, "connection idled out mid-body"));
            }
            Err(e) => return Err(HttpError::new(400, format!("read failed mid-body: {e}"))),
        };
        if n == 0 {
            return Err(HttpError::new(
                400,
                "connection closed before the declared body arrived",
            ));
        }
        carry.extend_from_slice(&chunk[..n]);
    }
    // Surplus bytes past this request's body belong to the next pipelined
    // request: leave them in the carry buffer.
    let surplus = carry.split_off(body_end);
    let mut consumed = std::mem::replace(carry, surplus);
    let body = consumed.split_off(head_len + 4);
    Ok(Some(Request {
        method,
        target,
        body,
        keep_alive,
    }))
}

/// Canonical reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Status",
    }
}

/// Writes a complete JSON response. `keep_alive` selects the
/// `Connection: keep-alive` / `Connection: close` header; the server closes
/// the socket after a `close` response.
///
/// # Errors
///
/// Propagates I/O errors from the underlying stream.
pub fn write_response<W: Write>(
    stream: &mut W,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    // One write for head + body: on a keep-alive socket, two small writes
    // interact with Nagle + delayed ACK and stall the response by tens of
    // milliseconds.
    let mut frame = head.into_bytes();
    frame.extend_from_slice(body);
    stream.write_all(&frame)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        let mut carry = Vec::new();
        read_request(
            &mut Cursor::new(raw.as_bytes().to_vec()),
            &mut carry,
            1 << 20,
        )
    }

    fn parse_one(raw: &str) -> Result<Request, HttpError> {
        parse(raw).map(|r| r.expect("request expected"))
    }

    #[test]
    fn parses_simple_post() {
        let r = parse_one("POST /optimize HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.target, "/optimize");
        assert_eq!(r.body, b"abcd");
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn get_without_body() {
        let r = parse_one("GET /health HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert!(r.body.is_empty());
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let r = parse_one("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        let r = parse_one("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!r.keep_alive, "HTTP/1.0 defaults to close");
        let r = parse_one("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(r.keep_alive);
        let r = parse_one("GET / HTTP/1.1\r\nConnection: foo, Close\r\n\r\n").unwrap();
        assert!(!r.keep_alive, "close wins in a token list");
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let raw = "POST /optimize HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc\
                   GET /health HTTP/1.1\r\n\r\n";
        let mut carry = Vec::new();
        let mut cursor = Cursor::new(raw.as_bytes().to_vec());
        let a = read_request(&mut cursor, &mut carry, 1 << 20)
            .unwrap()
            .expect("first request");
        assert_eq!(a.body, b"abc");
        assert!(
            !carry.is_empty(),
            "second pipelined request stays in the carry buffer"
        );
        let b = read_request(&mut cursor, &mut carry, 1 << 20)
            .unwrap()
            .expect("second request");
        assert_eq!(b.method, "GET");
        assert_eq!(b.target, "/health");
        assert!(carry.is_empty());
        // A third read sees EOF at a request boundary: clean close.
        assert!(read_request(&mut cursor, &mut carry, 1 << 20)
            .unwrap()
            .is_none());
    }

    #[test]
    fn eof_at_request_boundary_is_clean_close() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn truncated_body_is_400() {
        let e = parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nab").unwrap_err();
        assert_eq!(e.status, 400);
    }

    #[test]
    fn oversized_body_is_413() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n";
        let mut carry = Vec::new();
        let e =
            read_request(&mut Cursor::new(raw.as_bytes().to_vec()), &mut carry, 10).unwrap_err();
        assert_eq!(e.status, 413);
    }

    #[test]
    fn chunked_encoding_is_501() {
        let e = parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(e.status, 501);
    }

    #[test]
    fn unbounded_headers_are_431() {
        let raw = format!(
            "GET / HTTP/1.1\r\nX-Junk: {}\r\n\r\n",
            "a".repeat(64 * 1024)
        );
        let e = parse(&raw).unwrap_err();
        assert_eq!(e.status, 431);
    }

    #[test]
    fn garbage_request_line_is_400() {
        assert_eq!(parse("\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse("GET\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse("GET / SPDY/9\r\n\r\n").unwrap_err().status, 400);
    }
}
