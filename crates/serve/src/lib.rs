//! Compilation-as-a-service: a long-lived PREM optimization server.
//!
//! [`Server`] listens on a TCP socket and serves the paper's optimizer
//! ([`prem_core::optimize_app`]) over a hand-rolled, bounded HTTP/1.1 layer
//! ([`http`]) — hermetic, `std`-only. The interesting parts live above the
//! protocol:
//!
//! - **Hardened boundary** — every request is validated by [`api`] into a
//!   structured error (400/413/422/…) instead of a panic; the per-connection
//!   handler and every compute thread additionally run under
//!   `catch_unwind`, so a pathological-but-parseable kernel that trips an
//!   internal invariant becomes a 500 response, never an abort.
//! - **Cross-request analysis cache** — one shared
//!   [`prem_core::AnalysisCache`] spans all requests and kernels, so sweeps
//!   that vary platform scalars hit the same structural memo the bench
//!   harness exploits in-process.
//! - **Request coalescing** — identical in-flight requests (by canonical
//!   key, see [`api::parse_optimize_request`]) share one computation: one
//!   leader computes, followers block on the result. Completed 200s land in
//!   a bounded response cache so immediate repeats are served from memory.
//! - **Bounded waits** — followers and leaders alike give up after the
//!   request timeout with a 504 (the computation keeps running and still
//!   populates the caches, so a retry picks the result up).
//!
//! Endpoints: `POST /optimize`, `GET /health`, `GET /stats`,
//! `POST /shutdown`. See README for the request/response schema.

#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod http;

use prem_core::{optimize_app_timed, AnalysisCache, LoopTree, OptimizerOptions};
use prem_sim::SimCost;
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server construction parameters. `Default` reads the `PREM_SERVE_THREADS`
/// and `PREM_SERVE_TIMEOUT_MS` environment overrides (via
/// [`prem_obs::env_u64`], which warns on malformed values).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// How long a request waits for its (possibly coalesced) computation
    /// before answering 504.
    pub request_timeout: Duration,
    /// Per-connection socket read/write timeout.
    pub io_timeout: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Completed-response cache capacity (entries, FIFO).
    pub response_cache_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: prem_obs::env_u64("PREM_SERVE_THREADS", 4).clamp(1, 64) as usize,
            request_timeout: Duration::from_millis(
                prem_obs::env_u64("PREM_SERVE_TIMEOUT_MS", 30_000).max(1),
            ),
            io_timeout: Duration::from_secs(10),
            max_body_bytes: 1 << 20,
            response_cache_cap: 256,
        }
    }
}

/// A finished computation: HTTP status plus response body.
#[derive(Debug)]
struct Outcome {
    status: u16,
    body: String,
}

/// One in-flight computation; followers wait on `cv` until `done` is filled.
struct InFlight {
    done: Mutex<Option<Arc<Outcome>>>,
    cv: Condvar,
}

impl InFlight {
    fn new() -> InFlight {
        InFlight {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }
}

/// Map plus FIFO insertion order backing [`ResponseCache`].
type ResponseStore = (HashMap<String, Arc<String>>, VecDeque<String>);

/// Bounded FIFO cache of completed 200 responses, keyed by canonical request.
struct ResponseCache {
    cap: usize,
    inner: Mutex<ResponseStore>,
}

impl ResponseCache {
    fn new(cap: usize) -> ResponseCache {
        ResponseCache {
            cap,
            inner: Mutex::new((HashMap::new(), VecDeque::new())),
        }
    }

    fn get(&self, key: &str) -> Option<Arc<String>> {
        self.inner.lock().unwrap().0.get(key).cloned()
    }

    fn put(&self, key: &str, body: Arc<String>) {
        if self.cap == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        let (map, order) = &mut *inner;
        if map.contains_key(key) {
            return;
        }
        map.insert(key.to_string(), body);
        order.push_back(key.to_string());
        while order.len() > self.cap {
            if let Some(old) = order.pop_front() {
                map.remove(&old);
            }
        }
    }
}

/// Monotone request counters, all readable through `GET /stats`.
#[derive(Default)]
pub struct Stats {
    /// Requests that parsed as HTTP (any endpoint).
    pub requests: AtomicU64,
    /// `/optimize` computations actually started (coalescing leaders).
    pub computed: AtomicU64,
    /// `/optimize` requests that joined an in-flight identical computation.
    pub coalesced: AtomicU64,
    /// `/optimize` requests served from the completed-response cache.
    pub response_cache_hits: AtomicU64,
    /// Non-200 responses (any endpoint, any cause).
    pub errors: AtomicU64,
    /// Requests that gave up waiting (504).
    pub timeouts: AtomicU64,
    /// Panics caught at the request/compute boundary (turned into 500s).
    pub panics: AtomicU64,
}

impl Stats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Shared server state: caches, coalescing table, counters, shutdown flag.
pub struct ServeState {
    cfg: ServerConfig,
    addr: SocketAddr,
    analysis_cache: Arc<AnalysisCache>,
    inflight: Mutex<HashMap<String, Arc<InFlight>>>,
    response_cache: ResponseCache,
    /// Request counters.
    pub stats: Stats,
    shutdown: AtomicBool,
}

impl ServeState {
    /// The shared cross-request analysis cache.
    pub fn analysis_cache(&self) -> &Arc<AnalysisCache> {
        &self.analysis_cache
    }

    /// Renders the `/stats` body.
    pub fn stats_body(&self) -> String {
        use prem_obs::Json;
        let s = &self.stats;
        let inflight = self.inflight.lock().unwrap().len();
        Json::obj::<&str, Json>([
            (
                "requests",
                Json::from(s.requests.load(Ordering::Relaxed) as f64),
            ),
            (
                "computed",
                Json::from(s.computed.load(Ordering::Relaxed) as f64),
            ),
            (
                "coalesced",
                Json::from(s.coalesced.load(Ordering::Relaxed) as f64),
            ),
            (
                "response_cache_hits",
                Json::from(s.response_cache_hits.load(Ordering::Relaxed) as f64),
            ),
            (
                "errors",
                Json::from(s.errors.load(Ordering::Relaxed) as f64),
            ),
            (
                "timeouts",
                Json::from(s.timeouts.load(Ordering::Relaxed) as f64),
            ),
            (
                "panics",
                Json::from(s.panics.load(Ordering::Relaxed) as f64),
            ),
            ("inflight", Json::from(inflight)),
            (
                "analysis_cache",
                Json::obj::<&str, Json>([
                    ("entries", Json::from(self.analysis_cache.len())),
                    ("weight", Json::from(self.analysis_cache.weight())),
                    ("evictions", Json::from(self.analysis_cache.evictions())),
                    (
                        "admission_rejects",
                        Json::from(self.analysis_cache.admission_rejects()),
                    ),
                ]),
            ),
        ])
        .to_compact()
    }
}

/// The computation a coalescing leader runs (off the worker thread).
fn compute(state: &ServeState, req: &api::OptimizeRequest) -> Outcome {
    let program = match api::build_program(req) {
        Ok(p) => p,
        Err(e) => {
            return Outcome {
                status: e.status,
                body: api::error_body(e.status, &e.message),
            }
        }
    };
    let tree = match LoopTree::build(&program) {
        Ok(t) => t,
        Err(e) => {
            return Outcome {
                status: 422,
                body: api::error_body(422, &format!("kernel does not lower: {e}")),
            }
        }
    };
    let cost = SimCost::new(&program);
    let opts = OptimizerOptions {
        analysis_cache: Some(state.analysis_cache.clone()),
        ..req.options.clone()
    };
    let (outcome, phases) = optimize_app_timed(&tree, &program, &req.platform, &cost, &opts);
    let generated = if outcome.makespan_ns.is_finite() && !outcome.components.is_empty() {
        let emit: Vec<prem_codegen::EmitComponent> = outcome
            .components
            .iter()
            .map(|c| prem_codegen::EmitComponent {
                component: c.component.clone(),
                solution: c.solution.clone(),
            })
            .collect();
        match prem_codegen::emit_prem_c(&program, &emit, &req.platform) {
            Ok(c) => Some(c),
            Err(e) => {
                return Outcome {
                    status: 500,
                    body: api::error_body(500, &format!("code generation failed: {e}")),
                }
            }
        }
    } else {
        None
    };
    Outcome {
        status: 200,
        body: api::response_body(&req.kernel_name, &outcome, generated, &phases),
    }
}

/// Handles `POST /optimize`: cache probe, coalesce, compute, bounded wait.
/// Returns `(status, body, cache_disposition)`; the disposition goes out in
/// the `X-Prem-Cache` header so response *bodies* stay byte-identical across
/// hit/miss/coalesced paths.
fn optimize(state: &Arc<ServeState>, body: &str) -> (u16, String, &'static str) {
    let req = match api::parse_optimize_request(body) {
        Ok(r) => r,
        Err(e) => return (e.status, api::error_body(e.status, &e.message), "reject"),
    };
    if let Some(hit) = state.response_cache.get(&req.canonical) {
        Stats::bump(&state.stats.response_cache_hits);
        return (200, hit.as_ref().clone(), "hit");
    }
    let (entry, leader) = {
        let mut inflight = state.inflight.lock().unwrap();
        match inflight.get(&req.canonical) {
            Some(e) => (e.clone(), false),
            None => {
                let e = Arc::new(InFlight::new());
                inflight.insert(req.canonical.clone(), e.clone());
                (e.clone(), true)
            }
        }
    };
    if leader {
        Stats::bump(&state.stats.computed);
        let state2 = state.clone();
        let entry2 = entry.clone();
        let canonical = req.canonical.clone();
        std::thread::spawn(move || {
            let out = match catch_unwind(AssertUnwindSafe(|| compute(&state2, &req))) {
                Ok(out) => out,
                Err(_) => {
                    Stats::bump(&state2.stats.panics);
                    Outcome {
                        status: 500,
                        body: api::error_body(500, "optimization panicked; this is a server bug"),
                    }
                }
            };
            let out = Arc::new(out);
            if out.status == 200 {
                state2
                    .response_cache
                    .put(&canonical, Arc::new(out.body.clone()));
            }
            *entry2.done.lock().unwrap() = Some(out);
            entry2.cv.notify_all();
            state2.inflight.lock().unwrap().remove(&canonical);
        });
    } else {
        Stats::bump(&state.stats.coalesced);
    }
    let deadline = Instant::now() + state.cfg.request_timeout;
    let mut done = entry.done.lock().unwrap();
    loop {
        if let Some(out) = done.as_ref() {
            let disposition = if leader { "miss" } else { "coalesced" };
            return (out.status, out.body.clone(), disposition);
        }
        let now = Instant::now();
        if now >= deadline {
            Stats::bump(&state.stats.timeouts);
            return (
                504,
                api::error_body(
                    504,
                    "optimization is still running; retry to pick up the cached result",
                ),
                "timeout",
            );
        }
        let (guard, _) = entry.cv.wait_timeout(done, deadline - now).unwrap();
        done = guard;
    }
}

fn respond(state: &Arc<ServeState>, stream: &mut TcpStream) {
    let request = match http::read_request(stream, state.cfg.max_body_bytes) {
        Ok(r) => r,
        Err(e) => {
            Stats::bump(&state.stats.errors);
            let body = api::error_body(e.status, &e.message);
            let _ = http::write_response(stream, e.status, &[], body.as_bytes());
            return;
        }
    };
    Stats::bump(&state.stats.requests);
    let (status, body, cache) = match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/health") => (200, "{\"ok\":true}".to_string(), None),
        ("GET", "/stats") => (200, state.stats_body(), None),
        ("POST", "/shutdown") => {
            if !state.shutdown.swap(true, Ordering::SeqCst) {
                // Self-connect to pop the blocking accept() out of its wait.
                let _ = TcpStream::connect(state.addr);
            }
            (200, "{\"ok\":true}".to_string(), None)
        }
        ("POST", "/optimize") => match String::from_utf8(request.body) {
            Ok(text) => {
                let (status, body, cache) = optimize(state, &text);
                (status, body, Some(cache))
            }
            Err(_) => (
                400,
                api::error_body(400, "request body is not valid UTF-8"),
                None,
            ),
        },
        (_, "/health" | "/stats" | "/shutdown" | "/optimize") => (
            405,
            api::error_body(405, "method not allowed on this endpoint"),
            None,
        ),
        (_, target) => (
            404,
            api::error_body(404, &format!("no such endpoint {target:?}")),
            None,
        ),
    };
    if status != 200 {
        Stats::bump(&state.stats.errors);
    }
    let mut headers: Vec<(&str, &str)> = Vec::new();
    if let Some(c) = cache {
        headers.push(("X-Prem-Cache", c));
    }
    let _ = http::write_response(stream, status, &headers, body.as_bytes());
}

fn handle_connection(state: &Arc<ServeState>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(state.cfg.io_timeout));
    let _ = stream.set_write_timeout(Some(state.cfg.io_timeout));
    if catch_unwind(AssertUnwindSafe(|| respond(state, &mut stream))).is_err() {
        Stats::bump(&state.stats.panics);
        let body = api::error_body(500, "request handling panicked; this is a server bug");
        let _ = http::write_response(&mut stream, 500, &[], body.as_bytes());
    }
}

/// A running optimization server. Dropping it shuts it down and joins every
/// thread; `POST /shutdown` ends it remotely (see [`Server::wait`]).
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServeState>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.addr` and starts the accept loop plus worker pool.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/inspect failures.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers = cfg.workers;
        let response_cache = ResponseCache::new(cfg.response_cache_cap);
        let state = Arc::new(ServeState {
            cfg,
            addr,
            analysis_cache: Arc::new(AnalysisCache::new()),
            inflight: Mutex::new(HashMap::new()),
            response_cache,
            stats: Stats::default(),
            shutdown: AtomicBool::new(false),
        });
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut worker_handles = Vec::new();
        for _ in 0..workers {
            let rx = rx.clone();
            let state = state.clone();
            worker_handles.push(std::thread::spawn(move || loop {
                let next = rx.lock().unwrap().recv();
                match next {
                    Ok(stream) => handle_connection(&state, stream),
                    Err(_) => break,
                }
            }));
        }
        let accept_state = state.clone();
        let accept = std::thread::spawn(move || {
            // `tx` lives here: when the loop ends the channel closes and the
            // workers drain what is queued, then exit.
            for conn in listener.incoming() {
                if accept_state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    let _ = tx.send(stream);
                }
            }
        });
        Ok(Server {
            addr,
            state,
            accept: Some(accept),
            workers: worker_handles,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state handle, for in-process inspection of stats and caches.
    pub fn state(&self) -> Arc<ServeState> {
        self.state.clone()
    }

    /// Blocks until the server is told to stop (`POST /shutdown`), then
    /// joins every thread.
    pub fn wait(mut self) {
        self.join_all();
    }

    /// Initiates shutdown and joins every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if !self.state.shutdown.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() || !self.workers.is_empty() {
            self.stop();
        }
    }
}
