//! Compilation-as-a-service: a long-lived PREM optimization server.
//!
//! [`Server`] listens on a TCP socket and serves the paper's optimizer
//! ([`prem_core::optimize_app`]) over a hand-rolled, bounded HTTP/1.1 layer
//! ([`http`]) — hermetic, `std`-only. The interesting parts live above the
//! protocol:
//!
//! - **Hardened boundary** — every request is validated by [`api`] into a
//!   structured error (400/413/422/…) instead of a panic; each request and
//!   every pooled computation additionally runs under `catch_unwind`, so a
//!   pathological-but-parseable kernel that trips an internal invariant
//!   becomes a 500 response, never an abort. Server-side locks recover from
//!   poisoning, so one caught panic cannot turn into permanent 500s.
//! - **Bounded compute pool with backpressure** — optimizations run on a
//!   fixed pool of compute threads (`pool_size`, default ≈ cores via
//!   `PREM_SERVE_POOL`) fed by a bounded submission queue
//!   (`PREM_SERVE_QUEUE`). When the queue is full, `POST /optimize` answers
//!   `503` with a `Retry-After` header instead of accepting unbounded work —
//!   a flood of distinct kernels can no longer spawn a thread per request.
//! - **Keep-alive connections** — HTTP/1.1 keep-alive with sequential
//!   handling of pipelined requests, bounded by `max_conn_requests` per
//!   connection and an idle timeout (`PREM_SERVE_IDLE_MS`);
//!   `Connection: close` is honored per request.
//! - **Cross-request analysis cache** — one shared
//!   [`prem_core::AnalysisCache`] spans all requests and kernels, so sweeps
//!   that vary platform scalars hit the same structural memo the bench
//!   harness exploits in-process.
//! - **Request coalescing** — identical in-flight requests (by canonical
//!   key, see [`api::parse_optimize_request`]) share one computation: one
//!   leader computes, followers block on the result. Completed 200s land in
//!   a bounded response cache so immediate repeats are served from memory.
//! - **Bounded waits, accounted orphans** — followers and leaders alike
//!   give up after the request timeout with a 504. The computation keeps
//!   running in the pool; if *every* waiter timed out by the time it
//!   finishes it is counted as `orphaned` (it still populates the response
//!   cache, so a retry picks the result up byte-identically).
//!
//! `GET /stats` exposes all the counters, which satisfy the conservation
//! invariant (whenever no `/optimize` request is in flight):
//!
//! ```text
//! computed + coalesced + response_cache_hits + rejected + invalid
//!     == ok + timeouts + errors
//! ```
//!
//! Endpoints: `POST /optimize`, `GET /health`, `GET /stats`,
//! `POST /shutdown`. See README for the request/response schema.

#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod http;

use prem_core::{optimize_app_timed, AnalysisCache, LoopTree, OptimizerOptions};
use prem_sim::SimCost;
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Seconds a `503 Service Unavailable` response suggests waiting before a
/// retry (the `Retry-After` header).
pub const RETRY_AFTER_SECS: u64 = 1;

/// Locks `m`, recovering the guard when a previous holder panicked.
///
/// Every server-side lock site goes through this (or
/// [`wait_timeout_unpoisoned`]): a panic caught at the request boundary must
/// not leave a poisoned mutex behind that turns all future requests into
/// 500s. The data under these locks stays consistent across a recovery —
/// each critical section either completes its map/queue mutation in one
/// step or is re-derivable (counters, caches).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// `Condvar::wait_timeout` with the same poison-recovery policy as
/// [`lock_unpoisoned`].
fn wait_timeout_unpoisoned<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> MutexGuard<'a, T> {
    match cv.wait_timeout(guard, dur) {
        Ok((g, _)) => g,
        Err(p) => p.into_inner().0,
    }
}

fn default_pool_size() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(4)
}

/// Server construction parameters. `Default` reads the `PREM_SERVE_THREADS`,
/// `PREM_SERVE_POOL`, `PREM_SERVE_QUEUE`, `PREM_SERVE_IDLE_MS` and
/// `PREM_SERVE_TIMEOUT_MS` environment overrides (via [`prem_obs::env_u64`],
/// which warns on malformed values and falls back to the default).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads serving connections (each owns one connection at a
    /// time for its keep-alive lifetime).
    pub workers: usize,
    /// Compute threads running optimizations (`PREM_SERVE_POOL`, default
    /// ≈ available cores).
    pub pool_size: usize,
    /// Bounded submission-queue capacity in pending computations
    /// (`PREM_SERVE_QUEUE`, default `2 × pool_size`). A full queue rejects
    /// new leaders with `503` + `Retry-After`.
    pub queue_cap: usize,
    /// How long a request waits for its (possibly coalesced) computation
    /// before answering 504.
    pub request_timeout: Duration,
    /// Per-connection socket write timeout (and mid-request read stall cap).
    pub io_timeout: Duration,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it (`PREM_SERVE_IDLE_MS`).
    pub idle_timeout: Duration,
    /// Requests served per connection before the server answers
    /// `Connection: close` (bounds per-connection state lifetime).
    pub max_conn_requests: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Completed-response cache capacity (entries, FIFO).
    pub response_cache_cap: usize,
    /// Artificial delay prepended to every computation. Zero in production;
    /// saturation tests and benches use it to hold pool slots busy for a
    /// deterministic window.
    pub compute_holdup: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let pool_size = prem_obs::env_u64("PREM_SERVE_POOL", default_pool_size()).clamp(1, 256);
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: prem_obs::env_u64("PREM_SERVE_THREADS", 4).clamp(1, 64) as usize,
            pool_size: pool_size as usize,
            queue_cap: prem_obs::env_u64("PREM_SERVE_QUEUE", pool_size * 2).clamp(1, 4096) as usize,
            request_timeout: Duration::from_millis(
                prem_obs::env_u64("PREM_SERVE_TIMEOUT_MS", 30_000).max(1),
            ),
            io_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_millis(
                prem_obs::env_u64("PREM_SERVE_IDLE_MS", 10_000).max(1),
            ),
            max_conn_requests: 1024,
            max_body_bytes: 1 << 20,
            response_cache_cap: 256,
            compute_holdup: Duration::ZERO,
        }
    }
}

/// A finished computation: HTTP status plus response body.
#[derive(Debug)]
struct Outcome {
    status: u16,
    body: String,
}

/// Waiter-visible state of one in-flight computation.
struct InFlightState {
    result: Option<Arc<Outcome>>,
    /// Requests currently blocked on this computation (the leader counts
    /// from birth). When it hits zero before `result` is published, the
    /// computation finishes as an *orphan*: still cached, but nobody was
    /// left to receive it.
    waiters: u64,
}

/// One in-flight computation; waiters block on `cv` until `result` fills.
struct InFlight {
    done: Mutex<InFlightState>,
    cv: Condvar,
}

impl InFlight {
    /// A fresh entry with the leader pre-registered as its first waiter
    /// (registration happens before the job is submitted, so a computation
    /// can never observe `waiters == 0` just because the leader has not
    /// reached its wait loop yet).
    fn new() -> InFlight {
        InFlight {
            done: Mutex::new(InFlightState {
                result: None,
                waiters: 1,
            }),
            cv: Condvar::new(),
        }
    }
}

/// A queued computation.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared half of the bounded compute pool: the submission queue plus its
/// shutdown flag. Worker join handles live on [`Server`] (keeping them here
/// would create an `Arc` cycle through the jobs' captured state).
struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    cap: usize,
    shutdown: AtomicBool,
}

impl PoolShared {
    fn new(cap: usize) -> PoolShared {
        PoolShared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            cap,
            shutdown: AtomicBool::new(false),
        }
    }

    /// Enqueues `job` unless the queue is at capacity (→ `Err(job)`), which
    /// is the backpressure signal the caller turns into a 503.
    fn try_submit(&self, job: Job) -> Result<(), Job> {
        let mut queue = lock_unpoisoned(&self.queue);
        if queue.len() >= self.cap || self.shutdown.load(Ordering::SeqCst) {
            return Err(job);
        }
        queue.push_back(job);
        self.cv.notify_one();
        Ok(())
    }

    fn depth(&self) -> usize {
        lock_unpoisoned(&self.queue).len()
    }

    /// Worker loop: run queued jobs until shutdown *and* the queue drains —
    /// accepted work is never dropped, so no waiter is left to hit its full
    /// timeout during a graceful stop.
    fn work(&self) {
        loop {
            let job = {
                let mut queue = lock_unpoisoned(&self.queue);
                loop {
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    queue = wait_timeout_unpoisoned(&self.cv, queue, Duration::from_millis(100));
                }
            };
            // Jobs carry their own catch_unwind; this one keeps the worker
            // alive even if that inner guard is ever bypassed.
            let _ = catch_unwind(AssertUnwindSafe(job));
        }
    }

    fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }
}

/// Map plus FIFO insertion order backing [`ResponseCache`].
type ResponseStore = (HashMap<String, Arc<String>>, VecDeque<String>);

/// Bounded FIFO cache of completed 200 responses, keyed by canonical request.
struct ResponseCache {
    cap: usize,
    inner: Mutex<ResponseStore>,
}

impl ResponseCache {
    fn new(cap: usize) -> ResponseCache {
        ResponseCache {
            cap,
            inner: Mutex::new((HashMap::new(), VecDeque::new())),
        }
    }

    fn get(&self, key: &str) -> Option<Arc<String>> {
        lock_unpoisoned(&self.inner).0.get(key).cloned()
    }

    fn put(&self, key: &str, body: Arc<String>) {
        if self.cap == 0 {
            return;
        }
        let mut inner = lock_unpoisoned(&self.inner);
        let (map, order) = &mut *inner;
        if map.contains_key(key) {
            return;
        }
        map.insert(key.to_string(), body);
        order.push_back(key.to_string());
        while order.len() > self.cap {
            if let Some(old) = order.pop_front() {
                map.remove(&old);
            }
        }
    }
}

/// Monotone request counters, all readable through `GET /stats`.
///
/// The `/optimize` counters form a conservation law. Every `/optimize`
/// request is classified exactly once on admission (`computed` leader,
/// `coalesced` follower, `response_cache_hits`, `rejected` on a full queue,
/// `invalid` on a validation failure) and exactly once on completion (`ok`,
/// `timeouts`, `errors`), so with no request in flight:
///
/// ```text
/// computed + coalesced + response_cache_hits + rejected + invalid
///     == ok + timeouts + errors
/// ```
#[derive(Default)]
pub struct Stats {
    /// Requests that parsed as HTTP (any endpoint).
    pub requests: AtomicU64,
    /// `/optimize` computations actually started (coalescing leaders whose
    /// job was accepted by the pool).
    pub computed: AtomicU64,
    /// `/optimize` requests that joined an in-flight identical computation.
    pub coalesced: AtomicU64,
    /// `/optimize` requests served from the completed-response cache.
    pub response_cache_hits: AtomicU64,
    /// `/optimize` leaders turned away with 503 because the compute queue
    /// was full (backpressure).
    pub rejected: AtomicU64,
    /// `/optimize` requests rejected before admission (non-JSON, schema
    /// violations, non-UTF-8 bodies: 400/413/422).
    pub invalid: AtomicU64,
    /// Computations that finished after every waiter had timed out. The
    /// result still lands in the response cache; this counter is how such
    /// work stays visible instead of vanishing.
    pub orphaned: AtomicU64,
    /// `/optimize` requests answered 200.
    pub ok: AtomicU64,
    /// `/optimize` requests that gave up waiting (504).
    pub timeouts: AtomicU64,
    /// `/optimize` requests answered any other non-200 (validation, 503
    /// backpressure, compute-level 422/500).
    pub errors: AtomicU64,
    /// Panics caught at the request/compute boundary (turned into 500s).
    pub panics: AtomicU64,
}

impl Stats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Shared server state: caches, coalescing table, compute pool, counters,
/// shutdown flag.
pub struct ServeState {
    cfg: ServerConfig,
    addr: SocketAddr,
    analysis_cache: Arc<AnalysisCache>,
    inflight: Mutex<HashMap<String, Arc<InFlight>>>,
    response_cache: ResponseCache,
    pool: Arc<PoolShared>,
    /// Request counters.
    pub stats: Stats,
    shutdown: AtomicBool,
}

impl ServeState {
    /// The shared cross-request analysis cache.
    pub fn analysis_cache(&self) -> &Arc<AnalysisCache> {
        &self.analysis_cache
    }

    /// Pending computations in the bounded submission queue.
    pub fn queue_depth(&self) -> usize {
        self.pool.depth()
    }

    /// Poisons every server-side mutex by panicking while holding it, then
    /// catching the panic. Test hook for the lock-recovery path: after this,
    /// requests must still succeed.
    #[doc(hidden)]
    pub fn poison_locks_for_test(&self) {
        fn poison<T>(m: &Mutex<T>) {
            let _ = catch_unwind(AssertUnwindSafe(|| {
                let _guard = lock_unpoisoned(m);
                panic!("deliberate poison (test)");
            }));
        }
        poison(&self.inflight);
        poison(&self.response_cache.inner);
        poison(&self.pool.queue);
    }

    /// Renders the `/stats` body.
    pub fn stats_body(&self) -> String {
        use prem_obs::Json;
        let s = &self.stats;
        let inflight = lock_unpoisoned(&self.inflight).len();
        let load = |c: &AtomicU64| Json::from(c.load(Ordering::Relaxed) as f64);
        Json::obj::<&str, Json>([
            ("requests", load(&s.requests)),
            ("computed", load(&s.computed)),
            ("coalesced", load(&s.coalesced)),
            ("response_cache_hits", load(&s.response_cache_hits)),
            ("rejected", load(&s.rejected)),
            ("invalid", load(&s.invalid)),
            ("orphaned", load(&s.orphaned)),
            ("ok", load(&s.ok)),
            ("errors", load(&s.errors)),
            ("timeouts", load(&s.timeouts)),
            ("panics", load(&s.panics)),
            ("inflight", Json::from(inflight)),
            ("queue_depth", Json::from(self.pool.depth())),
            (
                "pool",
                Json::obj::<&str, Json>([
                    ("size", Json::from(self.cfg.pool_size)),
                    ("queue_cap", Json::from(self.cfg.queue_cap)),
                ]),
            ),
            (
                "analysis_cache",
                Json::obj::<&str, Json>([
                    ("entries", Json::from(self.analysis_cache.len())),
                    ("weight", Json::from(self.analysis_cache.weight())),
                    ("evictions", Json::from(self.analysis_cache.evictions())),
                    (
                        "admission_rejects",
                        Json::from(self.analysis_cache.admission_rejects()),
                    ),
                ]),
            ),
        ])
        .to_compact()
    }
}

/// The computation a coalescing leader runs (on a pool thread).
fn compute(state: &ServeState, req: &api::OptimizeRequest) -> Outcome {
    let program = match api::build_program(req) {
        Ok(p) => p,
        Err(e) => {
            return Outcome {
                status: e.status,
                body: api::error_body(e.status, &e.message),
            }
        }
    };
    let tree = match LoopTree::build(&program) {
        Ok(t) => t,
        Err(e) => {
            return Outcome {
                status: 422,
                body: api::error_body(422, &format!("kernel does not lower: {e}")),
            }
        }
    };
    let cost = SimCost::new(&program);
    let opts = OptimizerOptions {
        analysis_cache: Some(state.analysis_cache.clone()),
        ..req.options.clone()
    };
    let (outcome, phases) = optimize_app_timed(&tree, &program, &req.platform, &cost, &opts);
    let generated = if outcome.makespan_ns.is_finite() && !outcome.components.is_empty() {
        let emit: Vec<prem_codegen::EmitComponent> = outcome
            .components
            .iter()
            .map(|c| prem_codegen::EmitComponent {
                component: c.component.clone(),
                solution: c.solution.clone(),
            })
            .collect();
        match prem_codegen::emit_prem_c(&program, &emit, &req.platform) {
            Ok(c) => Some(c),
            Err(e) => {
                return Outcome {
                    status: 500,
                    body: api::error_body(500, &format!("code generation failed: {e}")),
                }
            }
        }
    } else {
        None
    };
    Outcome {
        status: 200,
        body: api::response_body(&req.kernel_name, &outcome, generated, &phases),
    }
}

/// The pool job a coalescing leader submits: compute (panic-guarded),
/// publish to cache + waiters, account orphans, retire the in-flight entry.
fn run_leader_job(state: &Arc<ServeState>, entry: &Arc<InFlight>, req: &api::OptimizeRequest) {
    if !state.cfg.compute_holdup.is_zero() {
        std::thread::sleep(state.cfg.compute_holdup);
    }
    let out = match catch_unwind(AssertUnwindSafe(|| compute(state, req))) {
        Ok(out) => out,
        Err(_) => {
            Stats::bump(&state.stats.panics);
            Outcome {
                status: 500,
                body: api::error_body(500, "optimization panicked; this is a server bug"),
            }
        }
    };
    let out = Arc::new(out);
    // Cache put and in-flight retirement happen under the in-flight lock so
    // they are atomic with respect to admission: a request that misses the
    // response cache while holding that lock and finds no in-flight entry
    // can only mean the work truly has not started — never that it
    // completed in the gap (which would recompute a cached request).
    let orphaned = {
        let mut inflight = lock_unpoisoned(&state.inflight);
        if out.status == 200 {
            state
                .response_cache
                .put(&req.canonical, Arc::new(out.body.clone()));
        }
        let orphaned = {
            let mut done = lock_unpoisoned(&entry.done);
            done.result = Some(out);
            entry.cv.notify_all();
            done.waiters == 0
        };
        inflight.remove(&req.canonical);
        orphaned
    };
    if orphaned {
        Stats::bump(&state.stats.orphaned);
    }
}

/// Blocks on `entry` until the computation publishes or `deadline` passes.
/// `registered` says whether this waiter is already counted (the leader is,
/// from [`InFlight::new`]).
fn await_outcome(entry: &InFlight, deadline: Instant, registered: bool) -> Option<(u16, String)> {
    let mut done = lock_unpoisoned(&entry.done);
    if !registered {
        done.waiters += 1;
    }
    loop {
        if let Some(out) = done.result.clone() {
            done.waiters = done.waiters.saturating_sub(1);
            return Some((out.status, out.body.clone()));
        }
        let now = Instant::now();
        if now >= deadline {
            done.waiters = done.waiters.saturating_sub(1);
            return None;
        }
        done = wait_timeout_unpoisoned(&entry.cv, done, deadline - now);
    }
}

/// Handles `POST /optimize`: cache probe, coalesce-or-submit (bounded),
/// bounded wait. Returns `(status, body, cache_disposition)`; the
/// disposition goes out in the `X-Prem-Cache` header so response *bodies*
/// stay byte-identical across hit/miss/coalesced paths.
fn optimize(state: &Arc<ServeState>, body: &str) -> (u16, String, &'static str) {
    let (status, body, disposition) = optimize_classified(state, body);
    // Completion-side accounting: every /optimize request lands in exactly
    // one of ok / timeouts / errors, balancing the admission-side counter
    // it bumped above (see the Stats invariant).
    match status {
        200 => Stats::bump(&state.stats.ok),
        504 => Stats::bump(&state.stats.timeouts),
        _ => Stats::bump(&state.stats.errors),
    }
    (status, body, disposition)
}

fn optimize_classified(state: &Arc<ServeState>, body: &str) -> (u16, String, &'static str) {
    let req = match api::parse_optimize_request(body) {
        Ok(r) => r,
        Err(e) => {
            Stats::bump(&state.stats.invalid);
            return (e.status, api::error_body(e.status, &e.message), "reject");
        }
    };
    if let Some(hit) = state.response_cache.get(&req.canonical) {
        Stats::bump(&state.stats.response_cache_hits);
        return (200, hit.as_ref().clone(), "hit");
    }
    let (entry, leader) = {
        // Leadership and submission are decided under the in-flight lock:
        // an entry only becomes joinable if its job was accepted by the
        // bounded queue, so followers can never attach to rejected work.
        let mut inflight = lock_unpoisoned(&state.inflight);
        // Re-probe the cache under the lock: a leader may have published
        // and retired between the unlocked probe above and acquiring this
        // lock, and completion holds this lock across put + retire.
        if let Some(hit) = state.response_cache.get(&req.canonical) {
            Stats::bump(&state.stats.response_cache_hits);
            return (200, hit.as_ref().clone(), "hit");
        }
        match inflight.get(&req.canonical) {
            Some(e) => (e.clone(), false),
            None => {
                let entry = Arc::new(InFlight::new());
                let canonical = req.canonical.clone();
                let state2 = state.clone();
                let entry2 = entry.clone();
                let job: Job = Box::new(move || run_leader_job(&state2, &entry2, &req));
                if state.pool.try_submit(job).is_err() {
                    Stats::bump(&state.stats.rejected);
                    return (503, api::overload_body(RETRY_AFTER_SECS), "rejected");
                }
                inflight.insert(canonical, entry.clone());
                (entry, true)
            }
        }
    };
    if leader {
        Stats::bump(&state.stats.computed);
    } else {
        Stats::bump(&state.stats.coalesced);
    }
    let deadline = Instant::now() + state.cfg.request_timeout;
    match await_outcome(&entry, deadline, leader) {
        Some((status, body)) => {
            let disposition = if leader { "miss" } else { "coalesced" };
            (status, body, disposition)
        }
        None => (
            504,
            api::error_body(
                504,
                "optimization is still running; retry to pick up the cached result",
            ),
            "timeout",
        ),
    }
}

/// Dispatches one parsed request. Returns status, body, and the extra
/// response headers (`X-Prem-Cache`, `Retry-After`).
fn handle_request(
    state: &Arc<ServeState>,
    request: &http::Request,
) -> (u16, String, Vec<(&'static str, String)>) {
    Stats::bump(&state.stats.requests);
    let mut headers: Vec<(&'static str, String)> = Vec::new();
    let (status, body) = match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/health") => (200, "{\"ok\":true}".to_string()),
        ("GET", "/stats") => (200, state.stats_body()),
        ("POST", "/shutdown") => {
            if !state.shutdown.swap(true, Ordering::SeqCst) {
                // Self-connect to pop the blocking accept() out of its wait.
                let _ = TcpStream::connect(state.addr);
            }
            (200, "{\"ok\":true}".to_string())
        }
        ("POST", "/optimize") => match std::str::from_utf8(&request.body) {
            Ok(text) => {
                let (status, body, cache) = optimize(state, text);
                headers.push(("X-Prem-Cache", cache.to_string()));
                if status == 503 {
                    headers.push(("Retry-After", RETRY_AFTER_SECS.to_string()));
                }
                (status, body)
            }
            Err(_) => {
                Stats::bump(&state.stats.invalid);
                Stats::bump(&state.stats.errors);
                (400, api::error_body(400, "request body is not valid UTF-8"))
            }
        },
        (_, "/health" | "/stats" | "/shutdown" | "/optimize") => (
            405,
            api::error_body(405, "method not allowed on this endpoint"),
        ),
        (_, target) => (
            404,
            api::error_body(404, &format!("no such endpoint {target:?}")),
        ),
    };
    (status, body, headers)
}

/// Serves one connection: sequential keep-alive requests until the client
/// closes, asks for `Connection: close`, idles out, or the per-connection
/// request bound is reached.
fn handle_connection(state: &Arc<ServeState>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(state.cfg.idle_timeout));
    let _ = stream.set_write_timeout(Some(state.cfg.io_timeout));
    let mut carry: Vec<u8> = Vec::new();
    let mut served = 0usize;
    loop {
        let request = match http::read_request(&mut stream, &mut carry, state.cfg.max_body_bytes) {
            Ok(Some(r)) => r,
            Ok(None) => break, // clean close or idle expiry between requests
            Err(e) => {
                let body = api::error_body(e.status, &e.message);
                let _ = http::write_response(&mut stream, e.status, &[], body.as_bytes(), false);
                break;
            }
        };
        served += 1;
        let keep_alive = request.keep_alive
            && served < state.cfg.max_conn_requests
            && !state.shutdown.load(Ordering::SeqCst);
        match catch_unwind(AssertUnwindSafe(|| handle_request(state, &request))) {
            Ok((status, body, extra)) => {
                let extra: Vec<(&str, &str)> =
                    extra.iter().map(|(n, v)| (*n, v.as_str())).collect();
                if http::write_response(&mut stream, status, &extra, body.as_bytes(), keep_alive)
                    .is_err()
                {
                    break;
                }
            }
            Err(_) => {
                Stats::bump(&state.stats.panics);
                let body = api::error_body(500, "request handling panicked; this is a server bug");
                let _ = http::write_response(&mut stream, 500, &[], body.as_bytes(), false);
                break;
            }
        }
        if !keep_alive {
            break;
        }
    }
}

/// A running optimization server. Dropping it shuts it down and joins every
/// thread; `POST /shutdown` ends it remotely (see [`Server::wait`]).
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServeState>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    pool_workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.addr` and starts the accept loop, the connection workers
    /// and the bounded compute pool.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/inspect failures.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers = cfg.workers;
        let pool = Arc::new(PoolShared::new(cfg.queue_cap));
        let response_cache = ResponseCache::new(cfg.response_cache_cap);
        let mut pool_workers = Vec::new();
        for _ in 0..cfg.pool_size {
            let pool = pool.clone();
            pool_workers.push(std::thread::spawn(move || pool.work()));
        }
        let state = Arc::new(ServeState {
            cfg,
            addr,
            analysis_cache: Arc::new(AnalysisCache::new()),
            inflight: Mutex::new(HashMap::new()),
            response_cache,
            pool,
            stats: Stats::default(),
            shutdown: AtomicBool::new(false),
        });
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut worker_handles = Vec::new();
        for _ in 0..workers {
            let rx = rx.clone();
            let state = state.clone();
            worker_handles.push(std::thread::spawn(move || loop {
                let next = lock_unpoisoned(&rx).recv();
                match next {
                    Ok(stream) => handle_connection(&state, stream),
                    Err(_) => break,
                }
            }));
        }
        let accept_state = state.clone();
        let accept = std::thread::spawn(move || {
            // `tx` lives here: when the loop ends the channel closes and the
            // workers drain what is queued, then exit.
            for conn in listener.incoming() {
                if accept_state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    let _ = tx.send(stream);
                }
            }
        });
        Ok(Server {
            addr,
            state,
            accept: Some(accept),
            workers: worker_handles,
            pool_workers,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state handle, for in-process inspection of stats and caches.
    pub fn state(&self) -> Arc<ServeState> {
        self.state.clone()
    }

    /// Blocks until the server is told to stop (`POST /shutdown`), then
    /// joins every thread.
    pub fn wait(mut self) {
        self.join_all();
    }

    /// Initiates shutdown and joins every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if !self.state.shutdown.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
        self.join_all();
    }

    fn join_all(&mut self) {
        // Order matters: the accept loop releases the connection channel,
        // connection workers drain it (their in-flight waits are served by
        // the still-running pool), and only then does the pool stop — after
        // draining its own queue, so accepted computations always finish.
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.state.pool.stop();
        for h in self.pool_workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() || !self.workers.is_empty() || !self.pool_workers.is_empty() {
            self.stop();
        }
    }
}
