//! `prem-serve`: the long-lived PREM optimization server.
//!
//! ```text
//! prem-serve [--addr HOST:PORT] [--threads N]   # serve until POST /shutdown
//! prem-serve --smoke                            # self-test: one request per
//!                                               # bundled kernel, then exit
//! ```

use prem_serve::{client, Server, ServerConfig};

fn run_smoke() -> Result<(), String> {
    let cfg = ServerConfig::default();
    let server = Server::start(cfg).map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.addr();
    for name in prem_serve::api::builtin_names() {
        let body = format!("{{\"kernel\":{{\"builtin\":\"{name}\"}}}}");
        let resp = client::post(addr, "/optimize", &body)
            .map_err(|e| format!("{name}: request failed: {e}"))?;
        if resp.status != 200 {
            return Err(format!("{name}: status {} body {}", resp.status, resp.body));
        }
        if !resp.body.contains("\"feasible\":true") {
            return Err(format!("{name}: not feasible: {}", resp.body));
        }
        println!("smoke {name}: ok ({} bytes)", resp.body.len());
    }
    let health = client::get(addr, "/health").map_err(|e| format!("health: {e}"))?;
    if health.status != 200 {
        return Err(format!("health check failed: {}", health.status));
    }
    let stats = client::get(addr, "/stats").map_err(|e| format!("stats: {e}"))?;
    println!("smoke stats: {}", stats.body);
    let bye = client::post(addr, "/shutdown", "").map_err(|e| format!("shutdown: {e}"))?;
    if bye.status != 200 {
        return Err(format!("shutdown failed: {}", bye.status));
    }
    server.wait();
    println!("serve smoke OK");
    Ok(())
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut cfg = ServerConfig::default();
    let mut smoke = false;
    let mut addr_set = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--addr" => match args.next() {
                Some(a) => {
                    cfg.addr = a;
                    addr_set = true;
                }
                None => {
                    eprintln!("--addr needs a HOST:PORT argument");
                    std::process::exit(2);
                }
            },
            "--threads" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => cfg.workers = n.min(64),
                _ => {
                    eprintln!("--threads needs a positive integer");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: prem-serve [--addr HOST:PORT] [--threads N] [--smoke]");
                std::process::exit(2);
            }
        }
    }
    if smoke {
        if let Err(e) = run_smoke() {
            eprintln!("serve smoke FAILED: {e}");
            std::process::exit(1);
        }
        return;
    }
    if !addr_set {
        cfg.addr = "127.0.0.1:7878".to_string();
    }
    match Server::start(cfg) {
        Ok(server) => {
            println!("prem-serve listening on {}", server.addr());
            println!("endpoints: POST /optimize, GET /health, GET /stats, POST /shutdown");
            server.wait();
            println!("prem-serve stopped");
        }
        Err(e) => {
            eprintln!("failed to start: {e}");
            std::process::exit(1);
        }
    }
}
