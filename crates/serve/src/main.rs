//! `prem-serve`: the long-lived PREM optimization server.
//!
//! ```text
//! prem-serve [--addr HOST:PORT] [--threads N] [--pool N] [--queue N]
//!                                               # serve until POST /shutdown
//! prem-serve --smoke                            # self-test: one request per
//!                                               # bundled kernel, keep-alive
//!                                               # reuse, and the 503
//!                                               # overload path, then exit
//! ```

use prem_serve::{client, Server, ServerConfig};
use std::time::Duration;

/// One request per bundled kernel over a single keep-alive connection.
fn smoke_kernels(addr: std::net::SocketAddr) -> Result<(), String> {
    let mut conn = client::Conn::connect(addr).map_err(|e| format!("connect failed: {e}"))?;
    for name in prem_serve::api::builtin_names() {
        let body = format!("{{\"kernel\":{{\"builtin\":\"{name}\"}}}}");
        let resp = conn
            .request("POST", "/optimize", &body)
            .map_err(|e| format!("{name}: request failed: {e}"))?;
        if resp.status != 200 {
            return Err(format!("{name}: status {} body {}", resp.status, resp.body));
        }
        if !resp.body.contains("\"feasible\":true") {
            return Err(format!("{name}: not feasible: {}", resp.body));
        }
        if !conn.is_open() {
            return Err(format!("{name}: server closed a keep-alive connection"));
        }
        println!("smoke {name}: ok ({} bytes, keep-alive)", resp.body.len());
    }
    Ok(())
}

/// Saturates a deliberately tiny pool (1 thread, 1 queue slot) with
/// concurrent distinct kernels: at least one request must get a structured
/// 503 + Retry-After, and retrying rejected bodies must eventually succeed.
fn smoke_overload() -> Result<(), String> {
    let cfg = ServerConfig {
        workers: 8,
        pool_size: 1,
        queue_cap: 1,
        compute_holdup: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let server = Server::start(cfg).map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.addr();
    let bodies: Vec<String> = (0..4)
        .map(|i| {
            format!(
                "{{\"kernel\":{{\"source\":\"double a[{n}]; for (int i = 0; i < {n}; i++) a[i] = 0.0;\",\"name\":\"fill{i}\"}}}}",
                n = 16 + i
            )
        })
        .collect();
    let barrier = std::sync::Barrier::new(bodies.len());
    let results: Vec<(u16, Option<String>)> = std::thread::scope(|s| {
        let handles: Vec<_> = bodies
            .iter()
            .map(|body| {
                s.spawn(|| {
                    barrier.wait();
                    let resp = client::post(addr, "/optimize", body).expect("overload request");
                    (resp.status, resp.header("Retry-After").map(String::from))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let rejected = results.iter().filter(|(s, _)| *s == 503).count();
    for (status, retry_after) in &results {
        match status {
            200 => {}
            503 => {
                if retry_after.is_none() {
                    return Err("503 without a Retry-After header".to_string());
                }
            }
            other => return Err(format!("unexpected overload status {other}")),
        }
    }
    if rejected == 0 {
        return Err("saturated pool rejected nothing".to_string());
    }
    // Retrying a rejected body after the suggested backoff must succeed.
    for (body, (status, _)) in bodies.iter().zip(&results) {
        if *status != 503 {
            continue;
        }
        let mut ok = false;
        for _ in 0..50 {
            std::thread::sleep(Duration::from_millis(100));
            let resp = client::post(addr, "/optimize", body).map_err(|e| format!("retry: {e}"))?;
            if resp.status == 200 {
                ok = true;
                break;
            }
            if resp.status != 503 {
                return Err(format!("retry got status {}", resp.status));
            }
        }
        if !ok {
            return Err("rejected request never succeeded on retry".to_string());
        }
    }
    let stats = client::get(addr, "/stats").map_err(|e| format!("stats: {e}"))?;
    println!(
        "smoke overload: {rejected}/{} rejected, stats: {}",
        results.len(),
        stats.body
    );
    server.shutdown();
    Ok(())
}

fn run_smoke() -> Result<(), String> {
    let cfg = ServerConfig::default();
    let server = Server::start(cfg).map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.addr();
    smoke_kernels(addr)?;
    let health = client::get(addr, "/health").map_err(|e| format!("health: {e}"))?;
    if health.status != 200 {
        return Err(format!("health check failed: {}", health.status));
    }
    let stats = client::get(addr, "/stats").map_err(|e| format!("stats: {e}"))?;
    println!("smoke stats: {}", stats.body);
    let bye = client::post(addr, "/shutdown", "").map_err(|e| format!("shutdown: {e}"))?;
    if bye.status != 200 {
        return Err(format!("shutdown failed: {}", bye.status));
    }
    server.wait();
    smoke_overload()?;
    println!("serve smoke OK");
    Ok(())
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut cfg = ServerConfig::default();
    let mut smoke = false;
    let mut addr_set = false;
    let usage =
        "usage: prem-serve [--addr HOST:PORT] [--threads N] [--pool N] [--queue N] [--smoke]";
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--addr" => match args.next() {
                Some(a) => {
                    cfg.addr = a;
                    addr_set = true;
                }
                None => {
                    eprintln!("--addr needs a HOST:PORT argument");
                    std::process::exit(2);
                }
            },
            "--threads" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => cfg.workers = n.min(64),
                _ => {
                    eprintln!("--threads needs a positive integer");
                    std::process::exit(2);
                }
            },
            "--pool" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => cfg.pool_size = n.min(256),
                _ => {
                    eprintln!("--pool needs a positive integer");
                    std::process::exit(2);
                }
            },
            "--queue" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => cfg.queue_cap = n.min(4096),
                _ => {
                    eprintln!("--queue needs a positive integer");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("{usage}");
                std::process::exit(2);
            }
        }
    }
    if smoke {
        if let Err(e) = run_smoke() {
            eprintln!("serve smoke FAILED: {e}");
            std::process::exit(1);
        }
        return;
    }
    if !addr_set {
        cfg.addr = "127.0.0.1:7878".to_string();
    }
    let (pool, queue) = (cfg.pool_size, cfg.queue_cap);
    match Server::start(cfg) {
        Ok(server) => {
            println!("prem-serve listening on {}", server.addr());
            println!(
                "endpoints: POST /optimize, GET /health, GET /stats, POST /shutdown \
                 (compute pool {pool}, queue {queue})"
            );
            server.wait();
            println!("prem-serve stopped");
        }
        Err(e) => {
            eprintln!("failed to start: {e}");
            std::process::exit(1);
        }
    }
}
